//! Offline stand-in for `criterion`, implementing the subset of its API
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `measurement_time`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simple but honest): each sample times a batch of
//! iterations sized so one batch takes ≳1ms, samples repeat until
//! `measurement_time` is spent or `sample_size` samples are taken, and
//! the report prints the median, min, and max per-iteration time plus
//! derived throughput. No statistics beyond that — this exists so
//! `cargo bench` runs without a crates registry, with stable output
//! good enough for spotting multi-percent regressions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Top-level bench context (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Run registered groups; accepts and ignores criterion CLI args.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget; this shim does not warm up, so it is ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batch: 1,
            ns_per_iter: Vec::new(),
        };
        // Calibrate the batch so one sample takes at least ~1ms.
        loop {
            b.ns_per_iter.clear();
            f(&mut b);
            let ns = b.ns_per_iter.last().copied().unwrap_or(0.0);
            if ns * b.batch as f64 >= 1.0e6 || b.batch >= 1 << 20 {
                break;
            }
            b.batch *= 8;
        }
        b.ns_per_iter.clear();
        let start = Instant::now();
        while b.ns_per_iter.len() < self.sample_size && start.elapsed() < self.measurement_time {
            f(&mut b);
        }
        let mut samples = b.ns_per_iter;
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>12.3e} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:>12.3e} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<28} time: [{:.1} ns  median {:.1} ns  {:.1} ns] n={}{}",
            self.name,
            samples[0],
            median,
            samples[samples.len() - 1],
            samples.len(),
            rate,
        );
        self
    }

    /// End the group (report spacing only).
    pub fn finish(self) {
        println!();
    }
}

/// Times closures; handed to `bench_function` callbacks.
pub struct Bencher {
    batch: u64,
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `f`, recording one sample of `batch` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.batch as f64;
        self.ns_per_iter.push(ns);
    }
}

/// Collect bench functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
