//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), integer-range and `any::<T>()`
//! strategies, strategy tuples, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, on purpose:
//! - no shrinking — a failing case prints its seed and case index via the
//!   normal assert panic message instead;
//! - inputs are drawn from a SplitMix64 stream seeded by a stable hash of
//!   the test's name, so every run and every machine sees the same cases;
//! - `prop_assume!` skips the current case rather than tracking a
//!   rejection budget.

use std::ops::Range;

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Per-property configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from a test's name — stable across runs and targets.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Something that can draw a value from the generator.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::prelude::any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// `assert!` inside a property (no shrinking; panics with the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test declaration macro. Each declared fn becomes a
/// `#[test]` that replays `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    // `fn f(x: u64, ...)` form — every argument drawn via `Arbitrary`.
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident : $ty:ty),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::__proptest_impl! {
            ($cfg)
            $(
                $(#[$meta])*
                fn $name( $($arg in $crate::any::<$ty>()),+ ) $body
            )*
        }
    };
    // `fn f(x in strategy, ...)` form.
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}
