//! Offline stand-in for the `loom` model checker.
//!
//! This build environment has no crates-registry access, so the real
//! `loom` cannot be pulled in. This shim keeps the same API surface —
//! `loom::model`, `loom::thread`, `loom::sync::Arc`,
//! `loom::sync::atomic::*` — so the `cfg(loom)` tests in `uat-deque`
//! compile unchanged against either implementation. Restore the
//! registry version in the workspace manifest to get real exhaustive
//! exploration.
//!
//! # What this shim actually does (and does not)
//!
//! The real loom runs the closure under a cooperative scheduler and
//! exhaustively enumerates every interleaving (bounded by preemption
//! count), checking the C11 memory model as it goes. This shim is
//! **seeded-schedule stress, not exhaustive exploration**: `model(f)`
//! runs `f` many times on real OS threads, and every shimmed atomic
//! access runs through a deterministic per-iteration schedule
//! perturbation (yield / spin / pass, chosen by a splitmix64 stream) so
//! successive iterations push the race windows around. It can therefore
//! *find* interleaving bugs with useful probability — the perturbation
//! reliably reproduces the known last-entry double-claim when the
//! protocol is broken — but a clean run proves nothing exhaustively.
//! Exhaustive coverage of this deque lives in `uat-check` (which
//! explores the protocol model, SC and release/acquire, completely);
//! the loom harness exists so the *real* loom can be dropped in with a
//! one-line manifest change, and meanwhile adds schedule-stress on the
//! real atomics as a cheap extra net. ThreadSanitizer (CI `tsan` job)
//! covers the data-race side on real code.
//!
//! Iteration count: `LOOM_SHIM_ITERS` (default 1000).

use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;

/// Global schedule-perturbation state: a per-`model` seed and a global
/// access counter. Both are plain atomics — the *stream* each access
/// draws from is deterministic given the seed, while the interleaving
/// of draws is exactly the nondeterminism under test.
static SEED: StdAtomicU64 = StdAtomicU64::new(0);
static TICK: StdAtomicU64 = StdAtomicU64::new(0);

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The yield point injected before every shimmed atomic access.
fn pause() {
    let n = TICK.fetch_add(1, StdOrdering::Relaxed);
    let h = splitmix64(SEED.load(StdOrdering::Relaxed) ^ n);
    match h % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            for _ in 0..(h >> 3) % 64 {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// Run `f` under the stress scheduler (see the module docs for how this
/// differs from the real loom's exhaustive exploration).
pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    let iters: u64 = std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    for i in 0..iters {
        SEED.store(splitmix64(i), StdOrdering::Relaxed);
        f();
    }
}

pub mod thread {
    //! Mirrors `loom::thread` on real OS threads.
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod sync {
    //! Mirrors `loom::sync`.
    pub use std::sync::Arc;

    pub mod atomic {
        //! Atomics that inject a schedule-perturbation point before
        //! every access, then defer to the real `std` atomic with the
        //! caller's ordering (so TSan and the hardware still see the
        //! declared orderings, unchanged).
        pub use std::sync::atomic::{fence, Ordering};

        macro_rules! shim_atomic {
            ($name:ident, $std:path, $ty:ty) => {
                /// Schedule-perturbing wrapper around the std atomic.
                /// `repr(transparent)` so `repr(C)` layouts built from
                /// it (the THE deque header) keep their offsets.
                #[repr(transparent)]
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub fn new(v: $ty) -> Self {
                        Self(<$std>::new(v))
                    }
                    pub fn load(&self, o: Ordering) -> $ty {
                        crate::pause();
                        self.0.load(o)
                    }
                    pub fn store(&self, v: $ty, o: Ordering) {
                        crate::pause();
                        self.0.store(v, o);
                    }
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        succ: Ordering,
                        fail: Ordering,
                    ) -> Result<$ty, $ty> {
                        crate::pause();
                        self.0.compare_exchange(cur, new, succ, fail)
                    }
                    pub fn fetch_add(&self, v: $ty, o: Ordering) -> $ty {
                        crate::pause();
                        self.0.fetch_add(v, o)
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Schedule-perturbing `AtomicBool` (separate from the macro:
        /// no `fetch_add`).
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }
            pub fn load(&self, o: Ordering) -> bool {
                crate::pause();
                self.0.load(o)
            }
            pub fn store(&self, v: bool, o: Ordering) {
                crate::pause();
                self.0.store(v, o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn model_runs_and_atomics_work() {
        std::env::set_var("LOOM_SHIM_ITERS", "4");
        static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        super::model(|| {
            let a = AtomicU64::new(1);
            a.store(2, Ordering::Release);
            assert_eq!(a.load(Ordering::Acquire), 2);
            a.fetch_add(3, Ordering::SeqCst);
            assert_eq!(
                a.compare_exchange(5, 9, Ordering::AcqRel, Ordering::Relaxed),
                Ok(5)
            );
            HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(HITS.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn splitmix_streams_differ_by_seed() {
        assert_ne!(super::splitmix64(1), super::splitmix64(2));
    }
}
