//! Offline stand-in for `serde`.
//!
//! This container has no access to a crates registry, so the workspace
//! carries a minimal local `serde` that keeps the existing
//! `#[derive(Serialize, Deserialize)]` annotations compiling. The traits
//! are blanket-implemented markers; nothing in the workspace relies on
//! serde's data model. Machine-readable output (the `uat-trace` JSONL and
//! Chrome-trace exporters) is produced by `uat_base::json`, which has
//! explicit, round-trip-tested encoders per type.
//!
//! If the real `serde` becomes available, delete `shims/serde*` and point
//! the `[workspace.dependencies]` entry back at the registry — no source
//! changes needed.

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
