//! No-op stand-in for `serde_derive`, used because this workspace must
//! build without network access to a crates registry.
//!
//! The real derive generates `Serialize`/`Deserialize` impls; here the
//! traits (in the sibling `serde` shim) are blanket-implemented for every
//! type, so the derive has nothing to emit. It still has to *exist* so
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper
//! attributes parse. Actual serialization in this workspace goes through
//! `uat_base::json` (see crates/base/src/json.rs), which is explicit and
//! covered by round-trip tests.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
