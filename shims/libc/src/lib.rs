//! Offline stand-in for the `libc` crate, declaring only what `uat-fiber`
//! uses: anonymous/stack/shared mappings, page protection, fork/waitpid,
//! `memfd_create` via `syscall`, and `process_vm_readv`. Values are the
//! x86-64 Linux ABI constants (the only target `uat-fiber` supports —
//! its context switch is x86-64 assembly).

#![allow(non_camel_case_types, non_upper_case_globals, non_snake_case)]
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

pub use std::ffi::c_void;

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long`.
pub type c_long = i64;
/// C `unsigned long`.
pub type c_ulong = u64;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t`.
pub type ssize_t = isize;
/// POSIX process id.
pub type pid_t = i32;
/// POSIX file offset.
pub type off_t = i64;

/// Scatter/gather element for `process_vm_readv`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct iovec {
    /// Base address of the buffer.
    pub iov_base: *mut c_void,
    /// Length of the buffer in bytes.
    pub iov_len: size_t,
}

/// Pages may not be accessed.
pub const PROT_NONE: c_int = 0;
/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 2;

/// Share the mapping with other processes.
pub const MAP_SHARED: c_int = 0x01;
/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// Place exactly at the hint or fail (never clobber an existing mapping).
pub const MAP_FIXED_NOREPLACE: c_int = 0x100000;
/// Not backed by a file.
pub const MAP_ANONYMOUS: c_int = 0x20;
/// Mapping used as a thread stack.
pub const MAP_STACK: c_int = 0x20000;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// `memfd_create` syscall number (x86-64).
pub const SYS_memfd_create: c_long = 319;

/// `waitpid`: return immediately when no child has changed state.
pub const WNOHANG: c_int = 1;
/// Uncatchable termination signal.
pub const SIGKILL: c_int = 9;

/// Did the child terminate normally (via `exit`/`_exit`)?
pub fn WIFEXITED(status: c_int) -> bool {
    (status & 0x7f) == 0
}

/// The child's exit status (meaningful only when [`WIFEXITED`]).
pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

extern "C" {
    /// Map pages into the address space.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmap pages.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Change page protection.
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    /// Close a file descriptor.
    pub fn close(fd: c_int) -> c_int;
    /// Create a child process.
    pub fn fork() -> pid_t;
    /// Wait for a child process.
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    /// Send a signal to a process.
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// Set a file's length.
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    /// Write bytes to a file descriptor (async-signal-safe).
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Terminate immediately without running atexit handlers.
    pub fn _exit(status: c_int) -> !;
    /// Raw syscall entry (used for `memfd_create`).
    pub fn syscall(num: c_long, ...) -> c_long;
    /// Read another process's memory (one-sided, like an RDMA READ).
    pub fn process_vm_readv(
        pid: pid_t,
        local_iov: *const iovec,
        liovcnt: c_ulong,
        remote_iov: *const iovec,
        riovcnt: c_ulong,
        flags: c_ulong,
    ) -> ssize_t;
}
