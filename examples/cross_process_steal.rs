//! The paper's mechanism, for real, on this machine: steal a *started*
//! native thread from another process.
//!
//! - two processes (fork) = two address spaces, each with the
//!   uni-address region at the same fixed virtual address;
//! - the victim starts a thread on its region, builds pointer-bearing
//!   stack state, spawns a child, and its continuation becomes
//!   stealable through a shared-memory task-queue slot;
//! - this process locks the slot, copies the victim's live frames with
//!   `process_vm_readv` (one-sided: the victim's code is not involved —
//!   the RDMA READ of Figure 6), and `resume_context`s the thread at
//!   its original addresses;
//! - the thread keeps running here, dereferencing the intra-stack
//!   pointer it created in the other process.
//!
//! Run: `cargo run --release --example cross_process_steal`

use uni_address_threads::fiber::ipc;

fn main() {
    println!(
        "uni-address region: {:#x} (+{} KiB), same VA in both processes",
        ipc::UNI_BASE,
        ipc::UNI_SIZE >> 10
    );
    match ipc::steal_between_processes() {
        Ok(out) => {
            println!(
                "stole a running thread: transferred {} bytes of live frames \
                 via process_vm_readv, resumed it here",
                out.frames_bytes
            );
            println!(
                "migrated thread computed {} from its pre-migration stack state \
                 (expected {})",
                out.result,
                ipc::expected_result()
            );
            assert_eq!(out.result, ipc::expected_result());
            println!(
                "native timings: transfer {:?}, lock-to-resumed {:?}",
                out.transfer, out.steal_to_resume
            );
            println!("intra-stack pointers survived the migration. QED.");
        }
        Err(e) => {
            eprintln!("environment does not permit the demonstration: {e}");
            std::process::exit(1);
        }
    }
}
