//! NQueens on the *native* fiber runtime, through the shared task model.
//!
//! This runs the exact `uat-workloads` NQueens workload the cluster
//! simulator runs — the same `Action` program, expanded by the native
//! interpreter into real spawn/join lightweight threads (the paper's
//! Figure 2 API) with real calibrated `Work` spinning — and cross-checks
//! the expansion against the sequential ground truth. One workload
//! definition, two backends.
//!
//! Run: `cargo run --release --example nqueens_native -- [N] [workers]`

use uni_address_threads::fiber::NativeRunner;
use uni_address_threads::model::sequential_profile;
use uni_address_threads::workloads::NQueens;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let w = NQueens::new(n);
    let stats = NativeRunner::new(workers).run(w.clone());
    println!("{}", stats.summary_line());

    // The native expansion must match the sequential ground truth —
    // the same invariant the simulator is held to.
    let p = sequential_profile(&w);
    assert_eq!(stats.total_tasks, p.tasks, "task count diverged");
    assert_eq!(stats.total_units, p.units, "unit count diverged");
    assert_eq!(
        stats.join_fingerprint, p.join_fingerprint,
        "join-tree shape diverged"
    );
    println!(
        "verified against the sequential profile: {} tasks, {} units \
         (legal positions), join tree intact.",
        p.tasks, p.units
    );
}
