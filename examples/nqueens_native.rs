//! NQueens on the *native* fiber runtime — a real parallel solver using
//! spawn/join lightweight threads (the paper's Figure 2 API), not the
//! simulator.
//!
//! Run: `cargo run --release --example nqueens_native -- [N] [workers]`

use uni_address_threads::fiber::{self, Runtime};
use uni_address_threads::workloads::nqueens::Board;

/// Count solutions below `board`, spawning a thread per safe column
/// while at least `par_rows` rows remain (below that, plain recursion —
/// the granularity-control idiom every task-parallel program uses).
fn solve(board: Board, n: u32, par_rows: u32) -> u64 {
    if board.row == n {
        return 1;
    }
    let mut mask = board.safe_columns(n);
    if n - board.row <= par_rows {
        // Sequential tail.
        let mut total = 0;
        while mask != 0 {
            let col = mask.trailing_zeros();
            mask &= mask - 1;
            total += solve(board.place(col), n, par_rows);
        }
        return total;
    }
    let mut handles = Vec::new();
    while mask != 0 {
        let col = mask.trailing_zeros();
        mask &= mask - 1;
        let child = board.place(col);
        handles.push(fiber::spawn(move || solve(child, n, par_rows)));
    }
    handles.into_iter().map(|h| h.join()).sum()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let rt = Runtime::new(workers);
    let t0 = std::time::Instant::now();
    let solutions = rt.run(move || solve(Board::empty(), n, n.saturating_sub(4)));
    let dt = t0.elapsed();

    println!("NQueens N={n}: {solutions} solutions on {workers} workers in {dt:?}");

    // Cross-check against the sequential solver.
    let expected = uni_address_threads::workloads::NQueens::new(n).solutions();
    assert_eq!(solutions, expected, "parallel result must match sequential");
    println!("verified against the sequential solver.");
}
