//! NQueens on the *native* fiber runtime, through the shared task model.
//!
//! This runs the exact `uat-workloads` NQueens workload the cluster
//! simulator runs — the same `Action` program, expanded by the native
//! interpreter into real spawn/join lightweight threads (the paper's
//! Figure 2 API) with real calibrated `Work` spinning — and cross-checks
//! the expansion against the sequential ground truth. One workload
//! definition, two backends.
//!
//! Run: `cargo run --release --example nqueens_native -- [N] [workers]
//! [--trace <path>]`. `--trace` re-runs with per-worker event rings on
//! and writes the flow-annotated Chrome/Perfetto trace (steal arrows
//! across worker tracks) — open it at `ui.perfetto.dev`.

use uni_address_threads::fiber::NativeRunner;
use uni_address_threads::model::sequential_profile;
use uni_address_threads::workloads::NQueens;

fn main() {
    let mut positional = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("error: --trace requires a path");
                std::process::exit(2);
            }));
        } else {
            positional.push(arg);
        }
    }
    let n: u32 = positional.first().and_then(|a| a.parse().ok()).unwrap_or(9);
    let workers: usize = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);

    let w = NQueens::new(n);
    let runner = NativeRunner::new(workers);
    let stats = match &trace_path {
        None => runner.run(w.clone()),
        Some(path) => run_traced(&runner, &w, path),
    };
    println!("{}", stats.summary_line());

    // The native expansion must match the sequential ground truth —
    // the same invariant the simulator is held to.
    let p = sequential_profile(&w);
    assert_eq!(stats.total_tasks, p.tasks, "task count diverged");
    assert_eq!(stats.total_units, p.units, "unit count diverged");
    assert_eq!(
        stats.join_fingerprint, p.join_fingerprint,
        "join-tree shape diverged"
    );
    println!(
        "verified against the sequential profile: {} tasks, {} units \
         (legal positions), join tree intact.",
        p.tasks, p.units
    );
}

#[cfg(feature = "trace")]
fn run_traced(
    runner: &NativeRunner,
    w: &NQueens,
    path: &str,
) -> uni_address_threads::fiber::NativeRunStats {
    use uni_address_threads::trace::chrome_trace_json;

    let (stats, trace) = runner.run_traced(w.clone());
    assert!(
        trace.data.workers.iter().any(|r| !r.is_empty()),
        "traced run produced empty event rings"
    );
    std::fs::write(path, chrome_trace_json(&trace.data)).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote Chrome trace to {path} ({} clock @ {:.3e} Hz, makespan {} cycles)",
        trace.data.clock_source.name(),
        trace.data.clock_hz,
        trace.data.makespan.get()
    );
    stats
}

#[cfg(not(feature = "trace"))]
fn run_traced(
    _runner: &NativeRunner,
    _w: &NQueens,
    _path: &str,
) -> uni_address_threads::fiber::NativeRunStats {
    eprintln!("error: --trace requires the `trace` feature; rebuild without --no-default-features");
    std::process::exit(2);
}
