//! Quickstart: the two halves of the library in one file.
//!
//! 1. The *native* runtime: real lightweight threads on x86-64 with the
//!    paper's Appendix A context switch, spawned child-first and stolen
//!    between OS-thread workers.
//! 2. The *simulated cluster*: the same scheduling algorithm over
//!    simulated RDMA on an FX10-style machine, with the paper's cycle
//!    costs.
//!
//! Run: `cargo run --release --example quickstart`

use uni_address_threads::cluster::{Engine, SimConfig};
use uni_address_threads::fiber::{self, Runtime};
use uni_address_threads::workloads::Fib;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // Child-first: `fib(n-1)` starts executing immediately on this
    // worker; our own continuation becomes stealable (Figure 4).
    let a = fiber::spawn(move || fib(n - 1));
    let b = fib(n - 2);
    a.join() + b
}

fn main() {
    // --- native ---
    let workers = 4;
    let rt = Runtime::new(workers);
    let t0 = std::time::Instant::now();
    let value = rt.run(|| fib(24));
    println!(
        "native   : fib(24) = {value} on {workers} workers in {:?}",
        t0.elapsed()
    );
    assert_eq!(value, 46_368);

    // --- simulated ---
    let w = Fib::new(24);
    let stats = Engine::new(SimConfig::fx10(2), w.clone()).run();
    println!(
        "simulated: fib(24) task tree = {} tasks on {} FX10 cores, \
         {:.3} ms simulated, {} steals, peak stack {} B",
        stats.total_tasks,
        stats.workers,
        stats.seconds() * 1e3,
        stats.steals_completed,
        stats.peak_stack_usage,
    );
    assert_eq!(stats.total_tasks, w.expected_tasks());
}
