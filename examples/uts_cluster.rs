//! Unbalanced Tree Search on the simulated cluster.
//!
//! The paper's flagship load-balancing benchmark: an unpredictable
//! geometric tree (SHA-1-derived node identities) traversed with
//! divide-and-conquer loop splitting, on an FX10-style machine. Prints a
//! small scaling table like Figure 11(c).
//!
//! Run: `cargo run --release --example uts_cluster -- [cutoff-depth] [max-nodes]`

use uni_address_threads::cluster::sweep::{render, sweep};
use uni_address_threads::cluster::SimConfig;
use uni_address_threads::workloads::Uts;

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let max_nodes: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let mut node_counts = vec![1u32];
    while *node_counts.last().unwrap() < max_nodes {
        node_counts.push(node_counts.last().unwrap() * 2);
    }

    let mut base = SimConfig::fx10(1);
    base.core.uni_region_size = 256 << 10;
    base.core.rdma_heap_size = 1 << 20;

    println!("UTS geometric tree, cutoff depth {depth} (15 workers/node):\n");
    let points = sweep(&base, &node_counts, || Uts::geometric(depth));
    print!("{}", render(&points, "nodes"));

    let last = points.last().unwrap();
    println!(
        "\ntree: {} nodes / {} tasks; peak stack {} B (paper bound: 144 KiB); \
         {} steals at the largest machine",
        last.stats.total_units,
        last.stats.total_tasks,
        last.stats.peak_stack_usage,
        last.stats.steals_completed,
    );
}
