//! Run the same benchmark under both thread-management schemes and
//! compare what the paper's Section 4 is about: virtual memory, page
//! faults, and steal cost.
//!
//! Run: `cargo run --release --example iso_vs_uni_demo`

use uni_address_threads::cluster::{Engine, SimConfig};
use uni_address_threads::core::SchemeKind;
use uni_address_threads::workloads::Btc;

fn main() {
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>10} {:>12}",
        "scheme", "time (s)", "steals", "reserved VA/w", "faults", "stack peak"
    );
    for scheme in [SchemeKind::Uni, SchemeKind::Iso] {
        let mut cfg = SimConfig::fx10(2).with_scheme(scheme);
        cfg.core.iso_stacks_per_worker = 256;
        let stats = Engine::new(cfg, Btc::new(16, 1)).run();
        println!(
            "{:<6} {:>10.4} {:>12} {:>11} MiB {:>10} {:>10} B",
            format!("{scheme:?}"),
            stats.seconds(),
            stats.steals_completed,
            stats.reserved_va_per_worker >> 20,
            stats.page_faults,
            stats.peak_stack_usage,
        );
    }
    println!(
        "\nSame scheduler, same deques, same fabric — only the thread-management\n\
         scheme differs. Iso reserves the whole machine's stack addresses in\n\
         every process and faults on migration; uni reserves a constant few MiB,\n\
         pins them, and steals one-sidedly. Scale the machine up and the iso\n\
         column is what outgrows x86-64 (see `cargo run -p uat-bench --bin iso_vs_uni`)."
    );
}
