//! Naive Fibonacci — the paper's Figure 1 fork-join example.
//!
//! Used by the quickstart example and as a second fine-grained stressor
//! (its task tree is the classic Cilk microbenchmark shape).

use uat_model::{Action, Workload};

/// The `fib(n)` workload of Figure 1 (fork-join form).
#[derive(Clone, Debug)]
pub struct Fib {
    /// Argument to `fib`.
    pub n: u32,
    /// Cycles of work per task (the add + call glue).
    pub work: u64,
    /// Frame bytes per task.
    pub frame: u64,
}

impl Fib {
    /// `fib(n)` with small default frames.
    pub fn new(n: u32) -> Self {
        Fib {
            n,
            work: 20,
            frame: 320,
        }
    }

    /// The Fibonacci number itself (for result checks).
    pub fn value(&self) -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..self.n {
            let c = a + b;
            a = b;
            b = c;
        }
        a
    }

    /// Number of tasks the naive recursion spawns: `2·fib(n+1) - 1`.
    pub fn expected_tasks(&self) -> u64 {
        2 * Fib::new(self.n + 1).value() - 1
    }
}

impl Workload for Fib {
    type Desc = u32;

    fn root(&self) -> u32 {
        self.n
    }

    fn program(&self, d: &u32, out: &mut Vec<Action<u32>>) {
        out.push(Action::Work(self.work));
        if *d >= 2 {
            out.push(Action::Spawn(*d - 1));
            out.push(Action::Spawn(*d - 2));
            out.push(Action::JoinAll);
        }
    }

    fn frame_size(&self, _d: &u32) -> u64 {
        self.frame
    }

    fn name(&self) -> String {
        format!("fib({})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::sequential_profile;

    #[test]
    fn values() {
        assert_eq!(Fib::new(0).value(), 0);
        assert_eq!(Fib::new(1).value(), 1);
        assert_eq!(Fib::new(10).value(), 55);
        assert_eq!(Fib::new(30).value(), 832_040);
    }

    #[test]
    fn task_count_formula() {
        for n in 0..12 {
            let w = Fib::new(n);
            let p = sequential_profile(&w);
            assert_eq!(p.tasks, w.expected_tasks(), "n={n}");
        }
    }
}
