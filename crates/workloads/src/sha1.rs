//! SHA-1, from scratch.
//!
//! The UTS benchmark derives every tree node's identity by hashing its
//! parent's 20-byte descriptor with the child index — that is what makes
//! the tree shape deterministic, machine-independent, and impossible to
//! predict without traversal [Olivier et al., LCPC'06]. SHA-1 is broken
//! for cryptography but that is irrelevant here; it is a high-quality
//! splittable hash, and implementing it keeps the workload dependency-free.

/// A 20-byte SHA-1 digest.
pub type Digest = [u8; 20];

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// UTS child derivation: hash of (parent digest ‖ child index, big-endian).
pub fn uts_child(parent: &Digest, index: u32) -> Digest {
    let mut buf = [0u8; 24];
    buf[..20].copy_from_slice(parent);
    buf[20..].copy_from_slice(&index.to_be_bytes());
    sha1(&buf)
}

/// UTS root descriptor from a seed (`-r` on the UTS command line).
pub fn uts_root(seed: u32) -> Digest {
    sha1(&seed.to_be_bytes())
}

/// Interpret the first 8 digest bytes as a big-endian u64 — the uniform
/// variate UTS draws its branching decisions from.
pub fn digest_u64(d: &Digest) -> u64 {
    u64::from_be_bytes(d[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        // FIPS 180-1 / RFC 3174 reference vectors.
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let m = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&m)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn multi_block_boundaries() {
        // 55/56/63/64/65 bytes cross the padding boundary cases.
        for n in [55usize, 56, 63, 64, 65, 119, 120] {
            let data = vec![0x5a; n];
            let d1 = sha1(&data);
            let d2 = sha1(&data);
            assert_eq!(d1, d2);
            // Flipping one byte changes the digest.
            let mut other = data.clone();
            other[n / 2] ^= 1;
            assert_ne!(sha1(&other), d1, "n={n}");
        }
    }

    #[test]
    fn child_derivation_is_splittable() {
        let root = uts_root(0);
        let c0 = uts_child(&root, 0);
        let c1 = uts_child(&root, 1);
        assert_ne!(c0, c1);
        // Grandchildren from different parents differ.
        assert_ne!(uts_child(&c0, 0), uts_child(&c1, 0));
        // And the derivation is deterministic.
        assert_eq!(uts_child(&root, 0), c0);
    }

    #[test]
    fn digest_u64_spreads() {
        let root = uts_root(0);
        let a = digest_u64(&uts_child(&root, 0));
        let b = digest_u64(&uts_child(&root, 1));
        assert_ne!(a, b);
        assert!(a > 0 && b > 0);
    }
}
