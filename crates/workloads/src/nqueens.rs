//! NQueens (BOTS-style) — count placements of N queens on an N×N board.
//!
//! The task tree explores partial placements row by row; a task's
//! children are the safe columns of the next row. As in the paper
//! (Section 6.1), the per-row child loop is converted to binary
//! divide-and-conquer so each task spawns zero or two subtasks. Solutions
//! are *counted* structurally (leaf tasks at row N); the engine's unit
//! accounting reports explored positions, the paper's "nodes".
//!
//! Frame calibration (Table 4): one board row adds ≈4,848 bytes of
//! uni-address region (74,272 → 79,120 bytes for N=17 → 18), split as
//! one node frame plus ≈3 split frames per row.

use uat_model::{Action, Workload};

/// Frame bytes of a placement task.
pub const NQ_NODE_FRAME: u64 = 1_968;
/// Frame bytes of a split task.
pub const NQ_SPLIT_FRAME: u64 = 960;

/// A partial placement: `row` queens placed, attack sets as bitmasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Board {
    /// Rows filled so far.
    pub row: u32,
    /// Columns already used.
    pub cols: u32,
    /// "/" diagonals under attack (shifted left per row).
    pub diag1: u64,
    /// "\" diagonals under attack (shifted right per row).
    pub diag2: u64,
}

impl Board {
    /// The empty board.
    pub fn empty() -> Self {
        Board {
            row: 0,
            cols: 0,
            diag1: 0,
            diag2: 0,
        }
    }

    /// Bitmask of safe columns for the next row on an `n`-wide board.
    pub fn safe_columns(&self, n: u32) -> u32 {
        let all = (1u32 << n) - 1;
        all & !(self.cols | (self.diag1 as u32) | (self.diag2 as u32))
    }

    /// The board after placing a queen at `col` of the next row.
    pub fn place(&self, col: u32) -> Board {
        let bit = 1u64 << col;
        Board {
            row: self.row + 1,
            cols: self.cols | bit as u32,
            diag1: ((self.diag1 | bit) << 1) & 0xffff_ffff,
            diag2: (self.diag2 | bit) >> 1,
        }
    }
}

/// A task: expand a placement, or split a candidate-column set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NqDesc {
    /// Expand the placement `board`.
    Node(Board),
    /// Spawn placements of `board` for the candidate columns in `mask`.
    Split {
        /// The placement being extended.
        board: Board,
        /// Remaining candidate columns.
        mask: u32,
    },
}

/// The NQueens workload.
#[derive(Clone, Debug)]
pub struct NQueens {
    /// Board size.
    pub n: u32,
    /// Cycles per node expansion (the real benchmark's per-position
    /// work; calibrated so cycles/node lands near the paper's ≈38K).
    pub work_per_node: u64,
}

impl NQueens {
    /// Standard configuration for board size `n`.
    pub fn new(n: u32) -> Self {
        assert!((1..=28).contains(&n), "board size out of range");
        NQueens {
            n,
            work_per_node: 35_000,
        }
    }

    /// Sequentially count solutions (ground truth for tests).
    pub fn solutions(&self) -> u64 {
        fn go(b: Board, n: u32) -> u64 {
            if b.row == n {
                return 1;
            }
            let mut mask = b.safe_columns(n);
            let mut total = 0;
            while mask != 0 {
                let col = mask.trailing_zeros();
                mask &= mask - 1;
                total += go(b.place(col), n);
            }
            total
        }
        go(Board::empty(), self.n)
    }
}

impl Workload for NQueens {
    type Desc = NqDesc;

    fn root(&self) -> NqDesc {
        NqDesc::Node(Board::empty())
    }

    fn program(&self, d: &NqDesc, out: &mut Vec<Action<NqDesc>>) {
        match *d {
            NqDesc::Node(board) => {
                out.push(Action::Work(self.work_per_node));
                if board.row == self.n {
                    return; // a solution; leaf
                }
                let mask = board.safe_columns(self.n);
                match mask.count_ones() {
                    0 => {}
                    1 => {
                        out.push(Action::Spawn(NqDesc::Node(
                            board.place(mask.trailing_zeros()),
                        )));
                        out.push(Action::JoinAll);
                    }
                    _ => {
                        let (a, b) = split_mask(mask);
                        out.push(Action::Spawn(NqDesc::Split { board, mask: a }));
                        out.push(Action::Spawn(NqDesc::Split { board, mask: b }));
                        out.push(Action::JoinAll);
                    }
                }
            }
            NqDesc::Split { board, mask } => {
                debug_assert!(mask != 0);
                if mask.count_ones() == 1 {
                    out.push(Action::Spawn(NqDesc::Node(
                        board.place(mask.trailing_zeros()),
                    )));
                } else {
                    let (a, b) = split_mask(mask);
                    out.push(Action::Spawn(NqDesc::Split { board, mask: a }));
                    out.push(Action::Spawn(NqDesc::Split { board, mask: b }));
                }
                out.push(Action::JoinAll);
            }
        }
    }

    fn frame_size(&self, d: &NqDesc) -> u64 {
        match d {
            NqDesc::Node(_) => NQ_NODE_FRAME,
            NqDesc::Split { .. } => NQ_SPLIT_FRAME,
        }
    }

    fn units(&self, d: &NqDesc) -> u64 {
        match d {
            NqDesc::Node(_) => 1,
            NqDesc::Split { .. } => 0,
        }
    }

    fn name(&self) -> String {
        format!("NQueens(N={})", self.n)
    }
}

/// Split a bitmask into two halves of (nearly) equal popcount.
fn split_mask(mask: u32) -> (u32, u32) {
    let half = mask.count_ones() / 2;
    let mut a = 0u32;
    let mut rest = mask;
    for _ in 0..half {
        let bit = 1 << rest.trailing_zeros();
        a |= bit;
        rest &= !bit;
    }
    (a, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::sequential_profile;

    #[test]
    fn known_solution_counts() {
        // OEIS A000170.
        assert_eq!(NQueens::new(1).solutions(), 1);
        assert_eq!(NQueens::new(4).solutions(), 2);
        assert_eq!(NQueens::new(6).solutions(), 4);
        assert_eq!(NQueens::new(8).solutions(), 92);
        assert_eq!(NQueens::new(10).solutions(), 724);
    }

    #[test]
    fn task_tree_explores_all_positions() {
        // Units = explored placements (internal + leaves). For N=6 the
        // tree has a known node count: count them independently.
        fn count(b: Board, n: u32) -> u64 {
            let mut total = 1;
            if b.row < n {
                let mut mask = b.safe_columns(n);
                while mask != 0 {
                    let col = mask.trailing_zeros();
                    mask &= mask - 1;
                    total += count(b.place(col), n);
                }
            }
            total
        }
        let w = NQueens::new(6);
        let p = sequential_profile(&w);
        assert_eq!(p.units, count(Board::empty(), 6));
        assert!(p.tasks > p.units, "split helpers exist");
    }

    #[test]
    fn split_mask_partitions() {
        for mask in [0b1u32, 0b11, 0b1011, 0b1111_0101, u32::MAX] {
            let (a, b) = split_mask(mask);
            assert_eq!(a | b, mask);
            assert_eq!(a & b, 0);
            if mask.count_ones() >= 2 {
                assert!(a != 0 && b != 0);
                let diff = (a.count_ones() as i64 - b.count_ones() as i64).unsigned_abs();
                assert!(diff <= 1);
            }
        }
    }

    #[test]
    fn board_mechanics() {
        let b = Board::empty().place(0);
        assert_eq!(b.row, 1);
        // Column 0 and both its diagonals are now blocked in row 1.
        let safe = b.safe_columns(4);
        assert_eq!(safe & 0b0011, 0, "col 0 and diag col 1 blocked");
        assert_ne!(safe & 0b0100, 0, "col 2 free");
    }

    #[test]
    fn tasks_spawn_at_most_two() {
        let w = NQueens::new(8);
        let mut prog = Vec::new();
        w.program(&w.root(), &mut prog);
        let spawns = prog
            .iter()
            .filter(|a| matches!(a, Action::Spawn(_)))
            .count();
        assert!(spawns <= 2, "divide-and-conquer caps fanout at two");
    }

    #[test]
    fn row_frame_delta_matches_table4() {
        // One row ≈ node + 3 splits (≈8 candidates → split depth 3).
        let per_row = NQ_NODE_FRAME + 3 * NQ_SPLIT_FRAME;
        assert!((per_row as f64 / 4_848.0 - 1.0).abs() < 0.01);
    }
}
