//! The Figure 10 ping-pong: one thread stolen back and forth.
//!
//! Section 6.3's microbenchmark has "two workers steal a single thread
//! from each other", stolen stack = 3,055 bytes. [`Chain`] reproduces the
//! dynamics with one *iterating* root thread: each round it spawns a leaf
//! child (child-first: the leaf runs, the root's continuation becomes
//! stealable) whose work outlasts a steal, so the idle worker steals the
//! root, resumes it, hits the join, suspends it (the 3,055-byte suspend
//! of Figure 10), and later resumes it from the wait queue to start the
//! next round — at which point the roles of the two workers have
//! swapped. Steady state is exactly one steal and one suspend/resume of
//! a 3,055-byte thread per round.

use uat_model::{Action, Workload};

/// Task descriptor: the iterating root or a leaf child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainDesc {
    /// The single long-lived thread that gets stolen.
    Root,
    /// One round's child.
    Leaf,
}

/// The ping-pong workload.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Rounds (≈ steals, once the ping-pong locks in).
    pub rounds: u32,
    /// Frame bytes of the stolen thread — 3,055 in the paper.
    pub frame: u64,
    /// Leaf work in cycles; must exceed a steal (~42K) so the thief
    /// always wins the root before the leaf finishes.
    pub leaf_work: u64,
}

impl Chain {
    /// The paper's Section 6.3 configuration.
    pub fn fig10(rounds: u32) -> Self {
        Chain {
            rounds,
            frame: 3_055,
            leaf_work: 120_000,
        }
    }
}

impl Workload for Chain {
    type Desc = ChainDesc;

    fn root(&self) -> ChainDesc {
        ChainDesc::Root
    }

    fn program(&self, d: &ChainDesc, out: &mut Vec<Action<ChainDesc>>) {
        match d {
            ChainDesc::Root => {
                for _ in 0..self.rounds {
                    out.push(Action::Spawn(ChainDesc::Leaf));
                    out.push(Action::JoinAll);
                }
            }
            ChainDesc::Leaf => out.push(Action::Work(self.leaf_work)),
        }
    }

    fn frame_size(&self, d: &ChainDesc) -> u64 {
        match d {
            ChainDesc::Root => self.frame,
            ChainDesc::Leaf => 256,
        }
    }

    fn units(&self, d: &ChainDesc) -> u64 {
        match d {
            ChainDesc::Root => 0,
            ChainDesc::Leaf => 1,
        }
    }

    fn name(&self) -> String {
        format!("chain({} rounds)", self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::sequential_profile;

    #[test]
    fn chain_counts() {
        let p = sequential_profile(&Chain::fig10(10));
        assert_eq!(p.tasks, 11, "one root + one leaf per round");
        assert_eq!(p.joins, 10);
        assert_eq!(p.units, 10);
    }

    // The two-worker ping-pong test (which needs the simulator's Engine)
    // lives in `uat-cluster/tests/chain_pingpong.rs`: this crate is
    // backend-neutral and must not depend on the sim engine.
}
