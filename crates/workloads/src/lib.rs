//! The paper's benchmark workloads (Section 6.1).
//!
//! - [`Btc`] — Binary Task Creation: each task repeats `iter` times:
//!   spawn two children, join them. Pure task-management stress; the
//!   paper's Figure 11(a,b) and Table 4 rows 1-4.
//! - [`Uts`] — Unbalanced Tree Search: traversal of an unpredictable
//!   geometric tree whose node identities derive from a from-scratch
//!   [`sha1`] implementation (the UTS splittable RNG). Figure 11(c).
//! - [`NQueens`] — BOTS-style N-queens enumeration. Figure 11(d).
//! - [`Fib`] — the didactic Figure 1 example, used by the quickstart.
//!
//! UTS and NQueens use the binary divide-and-conquer loop splitting the
//! paper describes ("we modified them to an efficient divide-and-conquer
//! traversal over loops in which each task generates zero or two
//! subtasks", Section 6.1): tasks over a range of children split in two
//! until singletons. Helper (split) tasks report zero [`units`] so
//! throughput counts tree *nodes*, as the paper plots.
//!
//! Frame sizes are calibrated to Table 4's per-level stack growth (see
//! each type's docs); EXPERIMENTS.md records the paper-vs-measured
//! comparison.
//!
//! [`units`]: uat_model::Workload::units

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btc;
pub mod chain;
pub mod fib;
pub mod nqueens;
pub mod sha1;
pub mod uts;

pub use btc::Btc;
pub use chain::Chain;
pub use fib::Fib;
pub use nqueens::NQueens;
pub use uts::Uts;
