//! Binary Task Creation (BTC).
//!
//! "BTC generates tasks recursively. It has two parameters depth and
//! iter. Depth means the depth of a generated task tree, and each task
//! repeats, iter times, spawning two child tasks and waiting for their
//! completions. When iter ≥ 2, parallelism rapidly grows and shrinks
//! during execution; therefore, it requires high load balancing
//! performance." (Section 6.1)
//!
//! Tasks carry no work — the benchmark measures pure task-management
//! throughput, which is why the paper's 16.7 G tasks/s on 3840 cores
//! works out to ≈ 425 cycles/task ≈ the 413-cycle creation cost of
//! Table 2.
//!
//! The frame size is calibrated to Table 4: consecutive depths differ by
//! 1,120 bytes (43,568 → 44,688 for depths 38 → 39; 22,288 → 23,408 for
//! 19 → 20), i.e. ≈1,120 bytes of frames per tree level.

use uat_model::{Action, Workload};

/// Frame bytes per BTC task (Table 4's per-level stack growth).
pub const BTC_FRAME: u64 = 1_120;

/// The BTC workload.
#[derive(Clone, Debug)]
pub struct Btc {
    /// Depth of the task tree.
    pub depth: u32,
    /// Spawn-two-join rounds per task.
    pub iter: u32,
    /// Extra compute per task in cycles (0 in the paper).
    pub work: u64,
}

impl Btc {
    /// BTC with the paper's pure-overhead setting (no per-task work).
    pub fn new(depth: u32, iter: u32) -> Self {
        assert!(iter >= 1, "iter must be at least 1");
        Btc {
            depth,
            iter,
            work: 0,
        }
    }

    /// Exact task count: every non-leaf spawns `2·iter` children.
    pub fn expected_tasks(&self) -> u64 {
        // sum_{l=0}^{depth} (2·iter)^l
        let b = 2 * self.iter as u64;
        let mut total = 0u64;
        let mut level = 1u64;
        for _ in 0..=self.depth {
            total = total.saturating_add(level);
            level = level.saturating_mul(b);
        }
        total
    }
}

impl Workload for Btc {
    type Desc = u32; // remaining depth

    fn root(&self) -> u32 {
        self.depth
    }

    fn program(&self, d: &u32, out: &mut Vec<Action<u32>>) {
        if self.work > 0 {
            out.push(Action::Work(self.work));
        }
        if *d > 0 {
            for _ in 0..self.iter {
                out.push(Action::Spawn(*d - 1));
                out.push(Action::Spawn(*d - 1));
                out.push(Action::JoinAll);
            }
        }
    }

    fn frame_size(&self, _d: &u32) -> u64 {
        BTC_FRAME
    }

    fn name(&self) -> String {
        format!("BTC(iter={}, depth={})", self.iter, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::sequential_profile;

    #[test]
    fn iter1_is_a_binary_tree() {
        let w = Btc::new(4, 1);
        let p = sequential_profile(&w);
        assert_eq!(p.tasks, 31);
        assert_eq!(p.tasks, w.expected_tasks());
        assert_eq!(p.joins, 15);
    }

    #[test]
    fn iter2_branches_by_four() {
        let w = Btc::new(3, 2);
        let p = sequential_profile(&w);
        // 1 + 4 + 16 + 64
        assert_eq!(p.tasks, 85);
        assert_eq!(p.tasks, w.expected_tasks());
        // Two join points per internal task.
        assert_eq!(p.joins, 2 * (1 + 4 + 16));
    }

    #[test]
    fn paper_scale_task_counts() {
        // Table 4: depth=38 → 550 billion, depth=39 → 1,099 billion.
        let d38 = Btc::new(38, 1).expected_tasks() as f64;
        assert!((d38 / 5.5e11 - 1.0).abs() < 0.01, "{d38}");
        // iter=2, depth=19 → 367 billion.
        let d19 = Btc::new(19, 2).expected_tasks() as f64;
        assert!((d19 / 3.67e11 - 1.0).abs() < 0.01, "{d19}");
    }

    #[test]
    fn paper_scale_stack_usage() {
        // Table 4: ~43.6 KB of uni-address region at depth 38. Lineage
        // depth is depth+1 tasks.
        let usage = 39 * BTC_FRAME;
        assert!((usage as f64 / 43_568.0 - 1.0).abs() < 0.02, "{usage}");
    }

    #[test]
    fn leaves_spawn_nothing() {
        let w = Btc::new(3, 2);
        let mut prog = Vec::new();
        w.program(&0, &mut prog);
        assert!(prog.is_empty(), "leaf with work=0 has an empty program");
    }
}
