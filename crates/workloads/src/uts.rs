//! Unbalanced Tree Search (UTS) [Olivier et al., LCPC'06].
//!
//! A node's identity is its SHA-1 descriptor; its child count is drawn
//! from a geometric distribution keyed by that descriptor, so the tree is
//! deterministic yet unpredictable and *highly* unbalanced — the
//! benchmark for dynamic load balancing. The paper runs the geometric
//! tree `-t 1 -r 0 -b 4 -a 3 -d {17,18}`: branching factor 4, fixed
//! shape, cutoff depth 17/18 (nodes at the cutoff are leaves).
//!
//! Like the paper (Section 6.1) we convert the child loop into a binary
//! divide-and-conquer: a node task with `k ≥ 2` children spawns two
//! *split* tasks over the child-index range, which split recursively
//! until singletons — "each task generates zero or two subtasks". Split
//! tasks report zero units so throughput counts tree nodes.
//!
//! Child counts follow a geometric distribution conditioned to `0..=4`
//! (P(k) ∝ q^k) with `q` chosen so the expected branching stays near the
//! paper's b=4 regime while keeping scaled trees finite below the
//! cutoff; the exact UTS constant differs (documented in EXPERIMENTS.md)
//! but the unbalance structure — the property under test — is the same.
//!
//! Frame sizes are calibrated to Table 4: one tree level adds ≈7,856
//! bytes of uni-address region (139,536 → 147,392 bytes for d=17 → 18),
//! split as one node frame plus two split frames per level.

use crate::sha1::{digest_u64, uts_child, uts_root, Digest};
use uat_model::{Action, Workload};

/// Frame bytes of a node task (Table 4 calibration).
pub const UTS_NODE_FRAME: u64 = 3_928;
/// Frame bytes of a split task.
pub const UTS_SPLIT_FRAME: u64 = 1_964;

/// A UTS task: a tree node or a split over a node's child range.
/// `Copy` plain data ([`Digest`] is `[u8; 20]`), so descriptors cross
/// process boundaries byte-for-byte on the multiprocess backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtsDesc {
    /// Evaluate a tree node.
    Node {
        /// SHA-1 descriptor of the node.
        digest: Digest,
        /// Depth below the root.
        depth: u32,
    },
    /// Spawn children `lo..hi` of the node with `digest`.
    Split {
        /// Parent node descriptor.
        digest: Digest,
        /// Parent depth.
        depth: u32,
        /// First child index.
        lo: u32,
        /// One past the last child index.
        hi: u32,
    },
}

/// The UTS workload (geometric tree, fixed shape).
#[derive(Clone, Debug)]
pub struct Uts {
    /// Root seed (`-r`).
    pub seed: u32,
    /// Cutoff depth (`-d`): nodes at this depth are leaves.
    pub cutoff: u32,
    /// Maximum children per node (`-b`).
    pub max_children: u32,
    /// Geometric ratio numerator/2^16: P(k) ∝ (q/65536)^k.
    pub q16: u32,
    /// Cycles of work per node evaluation (the SHA-1 + bookkeeping of
    /// the real benchmark; calibrated so cycles/node lands near the
    /// paper's ≈4.6K).
    pub work_per_node: u64,
}

impl Uts {
    /// The paper's configuration shape at a given cutoff depth:
    /// `-t 1 -r 0 -b 4 -a 3 -d cutoff`.
    pub fn geometric(cutoff: u32) -> Self {
        Uts {
            seed: 0,
            cutoff,
            max_children: 4,
            // q = 2.0 in fixed point: truncated-geometric mean ≈ 3.16,
            // giving ~3x growth per level.
            q16: 2 << 16,
            work_per_node: 3_000,
        }
    }

    /// Child count of the node with this digest: truncated geometric
    /// P(k) ∝ q^k over `0..=max_children`, keyed by the digest.
    pub fn num_children(&self, digest: &Digest, depth: u32) -> u32 {
        if depth >= self.cutoff {
            return 0;
        }
        let q = self.q16 as f64 / 65536.0;
        // Cumulative weights of q^k, k = 0..=m.
        let m = self.max_children;
        let mut total = 0.0;
        let mut wk = 1.0;
        for _ in 0..=m {
            total += wk;
            wk *= q;
        }
        let u = (digest_u64(digest) >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut wk = 1.0;
        for k in 0..=m {
            acc += wk;
            if u < acc {
                return k;
            }
            wk *= q;
        }
        m
    }
}

impl Workload for Uts {
    type Desc = UtsDesc;

    fn root(&self) -> UtsDesc {
        UtsDesc::Node {
            digest: uts_root(self.seed),
            depth: 0,
        }
    }

    fn program(&self, d: &UtsDesc, out: &mut Vec<Action<UtsDesc>>) {
        match d {
            UtsDesc::Node { digest, depth } => {
                out.push(Action::Work(self.work_per_node));
                let k = self.num_children(digest, *depth);
                match k {
                    0 => {}
                    1 => {
                        out.push(Action::Spawn(UtsDesc::Node {
                            digest: uts_child(digest, 0),
                            depth: depth + 1,
                        }));
                        out.push(Action::JoinAll);
                    }
                    _ => {
                        let mid = k / 2;
                        out.push(Action::Spawn(UtsDesc::Split {
                            digest: *digest,
                            depth: *depth,
                            lo: 0,
                            hi: mid,
                        }));
                        out.push(Action::Spawn(UtsDesc::Split {
                            digest: *digest,
                            depth: *depth,
                            lo: mid,
                            hi: k,
                        }));
                        out.push(Action::JoinAll);
                    }
                }
            }
            UtsDesc::Split {
                digest,
                depth,
                lo,
                hi,
            } => {
                debug_assert!(lo < hi);
                if hi - lo == 1 {
                    // Singleton: become the child node's spawner.
                    out.push(Action::Spawn(UtsDesc::Node {
                        digest: uts_child(digest, *lo),
                        depth: depth + 1,
                    }));
                } else {
                    let mid = lo + (hi - lo) / 2;
                    out.push(Action::Spawn(UtsDesc::Split {
                        digest: *digest,
                        depth: *depth,
                        lo: *lo,
                        hi: mid,
                    }));
                    out.push(Action::Spawn(UtsDesc::Split {
                        digest: *digest,
                        depth: *depth,
                        lo: mid,
                        hi: *hi,
                    }));
                }
                out.push(Action::JoinAll);
            }
        }
    }

    fn frame_size(&self, d: &UtsDesc) -> u64 {
        match d {
            UtsDesc::Node { .. } => UTS_NODE_FRAME,
            UtsDesc::Split { .. } => UTS_SPLIT_FRAME,
        }
    }

    fn units(&self, d: &UtsDesc) -> u64 {
        match d {
            UtsDesc::Node { .. } => 1,
            UtsDesc::Split { .. } => 0,
        }
    }

    fn name(&self) -> String {
        format!("UTS(geo, d={})", self.cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::sequential_profile;

    #[test]
    fn tree_is_deterministic() {
        let a = sequential_profile(&Uts::geometric(6));
        let b = sequential_profile(&Uts::geometric(6));
        assert_eq!(a, b);
        // A different seed gives a different tree.
        let mut w = Uts::geometric(6);
        w.seed = 1;
        assert_ne!(sequential_profile(&w).units, a.units);
    }

    #[test]
    fn tree_grows_roughly_geometrically() {
        let d5 = sequential_profile(&Uts::geometric(5)).units as f64;
        let d8 = sequential_profile(&Uts::geometric(8)).units as f64;
        let growth = (d8 / d5).powf(1.0 / 3.0);
        assert!(
            growth > 2.0 && growth < 4.5,
            "per-level growth {growth} should sit near the b=4 regime"
        );
    }

    #[test]
    fn tree_is_unbalanced() {
        // Subtree sizes under the root's children should differ a lot —
        // that is the point of UTS.
        let w = Uts::geometric(8);
        let root = uts_root(0);
        let k = w.num_children(&root, 0);
        assert!(k >= 2, "root should branch (got {k})");
        let mut sizes = Vec::new();
        for c in 0..k {
            let mut sub = w.clone();
            sub.seed = 0;
            // Count the subtree by walking from the child.
            let mut stack = vec![(uts_child(&root, c), 1u32)];
            let mut count = 0u64;
            while let Some((d, depth)) = stack.pop() {
                count += 1;
                for i in 0..sub.num_children(&d, depth) {
                    stack.push((uts_child(&d, i), depth + 1));
                }
            }
            sizes.push(count);
        }
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / min > 1.5, "subtree sizes {sizes:?} look too balanced");
    }

    #[test]
    fn units_count_nodes_not_splits() {
        let w = Uts::geometric(4);
        let p = sequential_profile(&w);
        assert!(p.tasks > p.units, "split tasks exist but do not count");
        assert!(p.units > 10);
    }

    #[test]
    fn split_tasks_spawn_at_most_two() {
        let w = Uts::geometric(4);
        let mut prog = Vec::new();
        w.program(
            &UtsDesc::Split {
                digest: uts_root(0),
                depth: 0,
                lo: 0,
                hi: 4,
            },
            &mut prog,
        );
        let spawns = prog
            .iter()
            .filter(|a| matches!(a, Action::Spawn(_)))
            .count();
        assert_eq!(spawns, 2);
    }

    #[test]
    fn cutoff_caps_depth() {
        let w = Uts::geometric(3);
        let d = uts_root(0);
        assert_eq!(w.num_children(&d, 3), 0);
        assert_eq!(w.num_children(&d, 99), 0);
    }

    #[test]
    fn per_level_frames_match_table4_delta() {
        // One tree level ≈ node + 2 splits (b=4 → split depth 2).
        let per_level = UTS_NODE_FRAME + 2 * UTS_SPLIT_FRAME;
        assert!((per_level as f64 / 7_856.0 - 1.0).abs() < 0.01);
    }
}
