//! Release-mode smoke: a mid-size machine finishes quickly and scales.

use uat_cluster::{Engine, SimConfig};
use uat_workloads::Btc;

#[test]
#[cfg_attr(
    feature = "audit",
    ignore = "120-worker probe: a full-machine audit per event is O(workers x events); \
              the auditor's protocol coverage comes from the contended small-machine suites"
)]
fn btc_scales_to_120_workers() {
    let base = SimConfig::fx10(8); // 8 nodes x 15 = 120 workers
    let s = Engine::new(base, Btc::new(16, 1)).run();
    assert_eq!(s.total_tasks, Btc::new(16, 1).expected_tasks());
    assert!(s.steals_completed > 100);
    eprintln!(
        "120w BTC(16): tasks={} time={:.4}s thr={:.2e}/s events={} cpt={:.0}",
        s.total_tasks,
        s.seconds(),
        s.throughput(),
        s.events,
        s.cycles_per_task()
    );
}

#[test]
#[ignore] // calibration probe; run explicitly
fn btc_480_workers_probe() {
    let mut base = SimConfig::fx10(32); // 480 workers
    base.core.uni_region_size = 256 << 10;
    base.core.rdma_heap_size = 512 << 10;
    base.core.deque_capacity = 1024;
    let s = Engine::new(base, Btc::new(22, 1)).run();
    eprintln!(
        "480w BTC(22): tasks={} time={:.4}s thr={:.3e}/s events={} cpt={:.0} eff_vs_ideal={:.3}",
        s.total_tasks,
        s.seconds(),
        s.throughput(),
        s.events,
        s.cycles_per_task(),
        413.0 / s.cycles_per_task(),
    );
}

#[test]
#[ignore] // calibration probe
fn btc_relative_efficiency_probe() {
    let mut pts = Vec::new();
    for nodes in [32u32, 64, 128] {
        let mut base = SimConfig::fx10(nodes);
        base.core.uni_region_size = 256 << 10;
        base.core.rdma_heap_size = 512 << 10;
        base.core.deque_capacity = 1024;
        let s = Engine::new(base, Btc::new(23, 1)).run();
        eprintln!(
            "{}w: time={:.4}s cpt={:.0} steals={} events={}",
            s.workers,
            s.seconds(),
            s.cycles_per_task(),
            s.steals_completed,
            s.events
        );
        pts.push(s);
    }
    for p in &pts[1..] {
        eprintln!(
            "eff({} vs {}) = {:.3}",
            p.workers,
            pts[0].workers,
            p.efficiency_vs(&pts[0])
        );
    }
}
