//! The engine's ablation knobs behave directionally as the paper argues.

use uat_base::Topology;
use uat_cluster::{Engine, SimConfig};
use uat_core::StealPhase;
use uat_workloads::{Btc, Chain};

#[test]
fn crude_scheme_is_slower() {
    // Section 5.2: the crude swap-on-every-switch scheme pays two stack
    // copies per spawn; BTC (pure creation) shows it directly.
    let mk = |crude: bool| {
        let mut cfg = SimConfig::tiny(4);
        cfg.crude_switch = crude;
        Engine::new(cfg, Btc::new(12, 1)).run()
    };
    let optimized = mk(false);
    let crude = mk(true);
    assert_eq!(optimized.total_tasks, crude.total_tasks);
    let slowdown = crude.makespan.get() as f64 / optimized.makespan.get() as f64;
    assert!(
        slowdown > 1.4,
        "crude should be much slower, got {slowdown:.2}x"
    );
}

#[test]
fn hardware_faa_shrinks_the_lock_phase() {
    let mk = |hw: bool| {
        let mut cfg = SimConfig::fx10(2);
        cfg.topo = Topology::new(2, 1);
        cfg.cost.hardware_faa = hw;
        Engine::new(cfg, Chain::fig10(300)).run()
    };
    let sw = mk(false);
    let hw = mk(true);
    assert!(sw.breakdown.phase(StealPhase::Lock).mean >= 9_799.0);
    assert!(hw.breakdown.phase(StealPhase::Lock).mean <= 3_001.0);
    // The whole steal gets cheaper by the lock difference. (The chain's
    // *makespan* is leaf-work-bound, so it is not asserted here.)
    assert!(
        hw.breakdown.total_mean() + 6_000.0 < sw.breakdown.total_mean(),
        "hw {:.0} vs sw {:.0}",
        hw.breakdown.total_mean(),
        sw.breakdown.total_mean()
    );
    // No software comm server -> no queueing.
    assert_eq!(hw.fabric.faa_queue_cycles, 0);
}

#[test]
fn intra_node_steals_are_cheaper_than_inter_node() {
    // Same two workers, same workload; co-located vs across nodes.
    let mk = |topo: Topology| {
        let mut cfg = SimConfig::fx10(2);
        cfg.topo = topo;
        Engine::new(cfg, Chain::fig10(300)).run()
    };
    let intra = mk(Topology::new(1, 2));
    let inter = mk(Topology::new(2, 1));
    let t_intra = intra.breakdown.phase(StealPhase::StackTransfer).mean;
    let t_inter = inter.breakdown.phase(StealPhase::StackTransfer).mean;
    assert!(
        t_intra < t_inter,
        "intra {t_intra:.0} should beat inter {t_inter:.0}"
    );
}

#[test]
fn xeon_profile_runs_faster_per_task() {
    use uat_base::CostModel;
    let mk = |cost: CostModel| {
        let mut cfg = SimConfig::tiny(1);
        cfg.cost = cost;
        Engine::new(cfg, Btc::new(12, 1)).run()
    };
    let sparc = mk(CostModel::fx10());
    let xeon = mk(CostModel::xeon());
    // Table 2: 413 vs ~100 cycles of creation dominate BTC.
    assert!(
        sparc.cycles_per_task() > 2.0 * xeon.cycles_per_task(),
        "sparc {:.0} vs xeon {:.0}",
        sparc.cycles_per_task(),
        xeon.cycles_per_task()
    );
}
