//! Property-based tests: the engine must execute *any* fork-join task
//! tree correctly — exact task/work conservation, byte-verified stack
//! copies, deterministic replay — across machine shapes and both
//! thread-management schemes.

use proptest::prelude::*;
use uat_cluster::workload::sequential_profile;
use uat_cluster::{Action, Engine, SimConfig, Workload};
use uat_core::SchemeKind;

/// A randomized fork-join workload: the tree shape, per-task work, and
/// frame sizes are all derived deterministically from a seed, so the
/// sequential profile is the ground truth for any parallel run.
#[derive(Clone, Debug)]
struct RandomTree {
    seed: u64,
    max_depth: u32,
    max_children: u32,
}

/// Descriptor: (depth, path-hash).
type Desc = (u32, u64);

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Workload for RandomTree {
    type Desc = Desc;

    fn root(&self) -> Desc {
        (0, self.seed)
    }

    fn program(&self, &(depth, h): &Desc, out: &mut Vec<Action<Desc>>) {
        // Work: 0..2000 cycles, from the hash.
        let work = mix(h, 1) % 2_000;
        if work > 0 {
            out.push(Action::Work(work));
        }
        if depth >= self.max_depth {
            return;
        }
        // Children: 0..=max_children; sometimes multiple join phases.
        let n = (mix(h, 2) % (self.max_children as u64 + 1)) as u32;
        let phases = 1 + (mix(h, 3) % 2) as u32;
        let mut spawned = 0;
        for p in 0..phases {
            let in_phase = if p + 1 == phases { n - spawned } else { n / 2 };
            for i in 0..in_phase {
                out.push(Action::Spawn((
                    depth + 1,
                    mix(h, 100 + u64::from(spawned + i)),
                )));
            }
            spawned += in_phase;
            if in_phase > 0 {
                out.push(Action::JoinAll);
            }
        }
    }

    fn frame_size(&self, &(_, h): &Desc) -> u64 {
        64 + mix(h, 4) % 3_000
    }

    fn name(&self) -> String {
        format!("random-tree({:#x})", self.seed)
    }
}

fn cfg(workers: u32, scheme: SchemeKind, seed: u64) -> SimConfig {
    let mut c = SimConfig::tiny(workers).with_scheme(scheme).with_seed(seed);
    c.core.verify_stack_bytes = true;
    c.core.iso_stacks_per_worker = 2048;
    c.core.iso_stack_size = 4096;
    c.max_events = 200_000_000;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random tree on any small machine under either scheme executes
    /// exactly the sequential task set, with every frame byte verified.
    #[test]
    fn conservation_everywhere(
        seed in any::<u64>(),
        workers in 1u32..9,
        scheme_iso in any::<bool>(),
        sim_seed in any::<u64>(),
    ) {
        let tree = RandomTree { seed, max_depth: 7, max_children: 3 };
        let profile = sequential_profile(&tree);
        prop_assume!(profile.tasks < 40_000);
        let scheme = if scheme_iso { SchemeKind::Iso } else { SchemeKind::Uni };
        let stats = Engine::new(cfg(workers, scheme, sim_seed), tree).run();
        prop_assert_eq!(stats.total_tasks, profile.tasks);
        prop_assert_eq!(stats.total_work_cycles, profile.work_cycles);
        prop_assert_eq!(stats.total_units, profile.units);
        // Makespan is bounded below by the critical path's work and above
        // by everything run serially plus overheads.
        prop_assert!(stats.makespan.get() >= profile.work_cycles / (stats.workers as u64).max(1) / 4);
    }

    /// Replaying the identical configuration is bit-identical.
    #[test]
    fn deterministic_replay(seed in any::<u64>(), workers in 2u32..6) {
        let tree = RandomTree { seed, max_depth: 6, max_children: 3 };
        prop_assume!(sequential_profile(&tree).tasks < 20_000);
        let a = Engine::new(cfg(workers, SchemeKind::Uni, 7), tree.clone()).run();
        let b = Engine::new(cfg(workers, SchemeKind::Uni, 7), tree).run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.steals_completed, b.steals_completed);
        prop_assert_eq!(a.peak_stack_usage, b.peak_stack_usage);
        prop_assert_eq!(a.fabric.reads, b.fabric.reads);
    }

    /// More workers never changes the result, only the schedule; and the
    /// peak region usage respects the lineage bound (sum of the deepest
    /// chain's frames, which the random generator caps).
    #[test]
    fn stack_usage_bounded_by_lineage(seed in any::<u64>()) {
        let tree = RandomTree { seed, max_depth: 6, max_children: 3 };
        prop_assume!(sequential_profile(&tree).tasks < 20_000);
        let stats = Engine::new(cfg(4, SchemeKind::Uni, 1), tree).run();
        // Max frame 3064, depth ≤ 7 levels → worst lineage < 7 * 3064.
        prop_assert!(stats.peak_stack_usage <= 7 * 3_064);
    }
}
