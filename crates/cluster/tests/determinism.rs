//! Determinism guarantees of the engine and the run harness.
//!
//! Two layers:
//!
//! 1. **Golden snapshots** — six pinned `(config, workload)` cases whose
//!    full counter set must never drift. Any change to event ordering,
//!    cost accounting, or RNG consumption shows up here as an exact-value
//!    failure. These were captured from the seed engine (global
//!    `BinaryHeap` scheduler) and must survive every scheduler and
//!    hot-path rewrite bit for bit.
//! 2. **Harness independence** — the parallel sweep harness must produce
//!    results bit-identical to the serial loop at *any* thread count:
//!    every run is seeded deterministically from its own parameters, so
//!    execution order across runs cannot matter.

use uat_base::json::ToJson;
use uat_base::Topology;
use uat_cluster::{sweep_with_threads, Engine, RunStats, SimConfig};
use uat_core::SchemeKind;
use uat_workloads::{Btc, Chain, NQueens, Uts};

/// The counters a golden pins: every scheduler-visible effect of a run.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    makespan: u64,
    events: u64,
    tasks: u64,
    steals: u64,
    attempts: u64,
    faults: u64,
    reads: u64,
    writes: u64,
    faas: u64,
}

fn golden(s: &RunStats) -> Golden {
    Golden {
        makespan: s.makespan.get(),
        events: s.events,
        tasks: s.total_tasks,
        steals: s.steals_completed,
        attempts: s.steal_attempts,
        faults: s.page_faults,
        reads: s.fabric.reads,
        writes: s.fabric.writes,
        faas: s.fabric.faas,
    }
}

macro_rules! pin {
    ($name:ident, $run:expr, $want:expr) => {
        #[test]
        fn $name() {
            let s: RunStats = $run;
            assert_eq!(golden(&s), $want, "golden snapshot drifted");
        }
    };
    // Variant for cases too big to audit: a full-machine audit after
    // every event is O(workers x events), so multi-million-event goldens
    // are intractable in a debug build with `--features audit`. The
    // auditor's protocol coverage comes from the contended small-machine
    // suites; goldens only pin determinism, which audit cannot affect
    // (it is read-only).
    ($name:ident, skip_audit, $run:expr, $want:expr) => {
        #[test]
        #[cfg_attr(
            feature = "audit",
            ignore = "too many events for the per-event full-machine auditor"
        )]
        fn $name() {
            let s: RunStats = $run;
            assert_eq!(golden(&s), $want, "golden snapshot drifted");
        }
    };
}

pin!(
    golden_btc10_uni_4w,
    Engine::new(SimConfig::tiny(4).with_seed(42), Btc::new(10, 1)).run(),
    Golden {
        makespan: 465_759,
        events: 4512,
        tasks: 2047,
        steals: 16,
        attempts: 87,
        faults: 0,
        reads: 138,
        writes: 35,
        faas: 29,
    }
);

pin!(
    golden_btc10_iso_8w,
    skip_audit,
    Engine::new(
        SimConfig::tiny(8).with_scheme(SchemeKind::Iso).with_seed(4),
        Btc::new(10, 2),
    )
    .run(),
    Golden {
        makespan: 104_134_145,
        events: 2_895_579,
        tasks: 1_398_101,
        steals: 4279,
        attempts: 11_917,
        faults: 930,
        reads: 20_795,
        writes: 8878,
        faas: 6677,
    }
);

pin!(
    golden_btc14_fx10_4n,
    Engine::new(SimConfig::fx10(4), Btc::new(14, 1)).run(),
    Golden {
        makespan: 1_019_346,
        events: 74_533,
        tasks: 32_767,
        steals: 225,
        attempts: 2857,
        faults: 0,
        reads: 3548,
        writes: 466,
        faas: 466,
    }
);

pin!(
    golden_uts9_fx10_2n,
    skip_audit,
    Engine::new(SimConfig::fx10(2), Uts::geometric(9)).run(),
    Golden {
        makespan: 12_928_036,
        events: 497_678,
        tasks: 200_315,
        steals: 574,
        attempts: 3862,
        faults: 0,
        reads: 5600,
        writes: 1164,
        faas: 793,
    }
);

pin!(
    golden_nqueens8_uni_15w,
    Engine::new(SimConfig::tiny(15).with_seed(7), NQueens::new(8)).run(),
    Golden {
        makespan: 5_895_554,
        events: 13_690,
        tasks: 3527,
        steals: 227,
        attempts: 1326,
        faults: 0,
        reads: 2011,
        writes: 458,
        faas: 324,
    }
);

pin!(
    golden_chain200_2n,
    {
        let mut cfg = SimConfig::fx10(2);
        cfg.topo = Topology::new(2, 1);
        Engine::new(cfg, Chain::fig10(200)).run()
    },
    Golden {
        makespan: 24_415_500,
        events: 8602,
        tasks: 201,
        steals: 200,
        attempts: 3401,
        faults: 0,
        reads: 4001,
        writes: 400,
        faas: 200,
    }
);

/// Two identical invocations of the engine are bit-identical: nothing in
/// the process (allocator addresses, globals) leaks into the simulation.
#[test]
fn rerun_in_same_process_is_identical() {
    let run = || Engine::new(SimConfig::tiny(4).with_seed(42), Btc::new(10, 1)).run();
    let (a, b) = (run(), run());
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
}

/// The parallel harness must be a pure scheduling change: for every
/// thread count the per-point results are bit-identical to the serial
/// loop (compared via full serialized stats, not just the headline
/// numbers).
#[test]
#[cfg_attr(
    feature = "audit",
    ignore = "sweeps up to 120 workers; too many worker-audits per event"
)]
fn sweep_is_bit_identical_at_any_thread_count() {
    let mut base = SimConfig::fx10(2);
    base.core.uni_region_size = 192 << 10;
    base.core.rdma_heap_size = 768 << 10;
    base.core.deque_capacity = 1024;
    base.core.iso_stacks_per_worker = 128;
    let nodes = [2u32, 4, 8];
    let serial = sweep_with_threads(&base, &nodes, 1, || Btc::new(12, 1));
    for threads in [2usize, 3, 8] {
        let parallel = sweep_with_threads(&base, &nodes, threads, || Btc::new(12, 1));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.workers, b.workers);
            assert_eq!(a.efficiency, b.efficiency);
            assert_eq!(
                a.stats.to_json().to_string(),
                b.stats.to_json().to_string(),
                "sweep point workers={} diverged at {threads} harness threads",
                a.workers
            );
        }
    }
}
