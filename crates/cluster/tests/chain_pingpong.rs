//! The Figure 10 ping-pong workload on the sim engine. (Moved out of
//! `uat-workloads`, which is backend-neutral and no longer depends on
//! the simulator.)

use uat_cluster::{Engine, SimConfig};
use uat_workloads::Chain;

#[test]
fn two_workers_ping_pong() {
    let mut cfg = SimConfig::tiny(2);
    cfg.core.verify_stack_bytes = true;
    let rounds = 200;
    let s = Engine::new(cfg, Chain::fig10(rounds)).run();
    // Nearly every round steals the root once.
    assert!(
        s.steals_completed as f64 > 0.8 * rounds as f64,
        "only {} steals in {rounds} rounds",
        s.steals_completed
    );
    // The region never holds more than the root + one leaf.
    assert!(s.peak_stack_usage <= 3_055 + 256 + 64);
}
