//! Registry wiring vs. ground truth: the engine streams steal results
//! into a `uat_metrics::Registry` while (independently) emitting exact
//! `StealResult` trace events. The log-bucketed histogram must agree
//! with the exact latency distribution to within its documented bucket
//! resolution — the acceptance bar for the sim side of the live-metrics
//! layer, checked at the paper's 64-worker UTS point.

#![cfg(all(feature = "metrics", feature = "trace"))]

use std::sync::Arc;
use uat_base::Topology;
use uat_cluster::{Engine, SimConfig};
use uat_metrics::{bucket_index, bucket_upper, names, Registry};
use uat_trace::EventKind;
use uat_workloads::Uts;

#[test]
fn steal_latency_quantiles_match_exact_trace_within_one_bucket() {
    let cfg = SimConfig {
        topo: Topology::new(4, 16), // 64 workers across 4 nodes
        ..SimConfig::fx10(4)
    };
    let workers = cfg.topo.total_workers() as usize;
    assert_eq!(workers, 64);
    let registry = Arc::new(Registry::new(workers));
    let (stats, data) = Engine::new(cfg, Uts::geometric(11))
        .with_metrics(&registry)
        .with_tracing(1 << 20) // rings big enough that nothing drops
        .run_traced();

    // Ground truth: the exact latency of every steal attempt, from the
    // structured trace. Rings must not have dropped events, or the
    // "same sample set" premise below is void.
    for (w, ring) in data.workers.iter().enumerate() {
        assert_eq!(ring.dropped(), 0, "worker {w} ring dropped events");
    }
    let mut exact: Vec<u64> = data
        .events()
        .filter_map(|e| match e.kind {
            EventKind::StealResult { latency, .. } => Some(latency.get()),
            _ => None,
        })
        .collect();
    exact.sort_unstable();
    assert!(
        exact.len() as u64 >= stats.steals_completed,
        "trace saw fewer steal results than completed steals"
    );
    assert!(!exact.is_empty(), "64-worker uts11 run must steal");

    let snap = registry.snapshot();
    let hist = snap
        .histogram(names::STEAL_LATENCY)
        .expect("steal-latency histogram registered");
    assert_eq!(
        hist.count(),
        exact.len() as u64,
        "one histogram sample per StealResult event"
    );
    let completed = snap.total(names::STEALS_COMPLETED);
    let failed = snap.total(names::STEALS_FAILED);
    assert_eq!(completed, stats.steals_completed);
    assert_eq!(completed + failed, exact.len() as u64);

    for q in [0.50, 0.90, 0.99, 0.999] {
        // The histogram reports the upper bound of the bucket holding
        // the ceil(q*n)-th smallest sample; with identical sample sets
        // that is exactly the bucket of the exact quantile. Allow one
        // bucket of slack per the acceptance criterion.
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let exact_q = exact[rank - 1];
        let hist_q = hist.quantile(q);
        let eb = bucket_index(exact_q);
        let hb = bucket_index(hist_q);
        assert!(
            eb.abs_diff(hb) <= 1,
            "q={q}: exact {exact_q} (bucket {eb}) vs histogram {hist_q} (bucket {hb})"
        );
        // And the reported value really is that bucket's upper bound.
        assert_eq!(hist_q, bucket_upper(hb));
        assert!(
            hist_q >= exact_q,
            "upper bound must dominate the exact value"
        );
    }
}

#[test]
fn task_counters_match_run_stats() {
    let cfg = SimConfig::fx10(1);
    let workers = cfg.topo.total_workers() as usize;
    let registry = Arc::new(Registry::new(workers));
    let stats = Engine::new(cfg, Uts::geometric(9))
        .with_metrics(&registry)
        .run();
    let snap = registry.snapshot();
    assert_eq!(snap.total(names::TASKS), stats.total_tasks);
    let run_hist = snap
        .histogram(names::TASK_RUN)
        .expect("task-run histogram registered");
    assert_eq!(run_hist.count(), stats.total_tasks);
    assert!(run_hist.quantile(0.5) > 0, "tasks take simulated time");
}
