//! The discrete-event engine: child-first work stealing over uni-address
//! (or iso-address) thread management, end to end.
//!
//! # How execution is modelled
//!
//! Each worker is a sequential automaton with exactly one outstanding
//! event. When its event fires, the worker performs protocol work
//! *instantaneously* (pushing deque entries, moving bytes, mutating task
//! records — all through the real `uat-core`/`uat-deque`/`uat-rdma` code)
//! and schedules the completion of exactly one *timed* operation: a
//! compute segment, a spawn, a suspend, one RDMA phase of a steal, or an
//! idle poll. One-sided operations linearize at their issue instant and
//! complete at the instant the fabric's cost model dictates, so thief
//! critical sections genuinely overlap victim activity across events —
//! which is what exercises the THE protocol's contended paths.
//!
//! # The scheduler being reproduced
//!
//! - **Spawn** (Figure 4): push the parent's continuation, run the child
//!   immediately on the stack just below (child-first).
//! - **Task exit** (Figure 4, lines 13-15): pop the own queue; on success
//!   resume the parent in place; on failure every ancestor was stolen —
//!   drain the region and go to the scheduler.
//! - **Join** (Figure 7): if the children are done, fall through; else
//!   suspend to the wait queue and run the scheduler loop: local pop →
//!   random steal → wait-queue resume → idle poll.
//! - **Steal** (Figure 6 / Table 3): empty check, lock (remote FAA),
//!   entry steal, stack transfer into the uni-address region at the same
//!   virtual address, unlock (after the transfer — that ordering is what
//!   keeps the victim out of the frames), resume.

use crate::config::SimConfig;
use crate::event_heap::EventHeap;
use crate::metrics::RunStats;
use crate::task::{TaskId64, TaskTable, TaskWhere};
use crate::tracing::TraceCtl;
use crate::workload::{Action, Workload};
use uat_base::{CostModel, Cycles, SplitMix64, WorkerId};
use uat_core::{transfer_stolen, StackMgr, StealBreakdown, StealPhase};
use uat_deque::{PopOutcome, StealOutcome, TaskqEntry};
use uat_rdma::Fabric;
use uat_trace::{Bucket, StealOutcome as StealEnd, StealPhaseId};

/// What a worker's next event means.
#[derive(Clone, Copy, Debug)]
enum Pending {
    /// Run the scheduler loop from the top (local pop first).
    Sched,
    /// The current task's in-flight action completes.
    TaskStep(TaskId64),
    /// Retry the post-completion pop (the deque was contended).
    PostComplete,
    /// Steal phase completions.
    StealEmpty {
        victim: WorkerId,
        ok: bool,
    },
    StealLock {
        victim: WorkerId,
        ok: bool,
    },
    StealEntry {
        victim: WorkerId,
        entry: Option<TaskqEntry>,
    },
    /// Unlock after a raced-empty steal; then back to the scheduler.
    StealAbortUnlock,
    /// Stolen frames have arrived; unlock next.
    StealTransfer {
        victim: WorkerId,
        entry: TaskqEntry,
    },
    /// Unlock done; resume the stolen thread.
    StealUnlock {
        victim: WorkerId,
        entry: TaskqEntry,
    },
}

/// The scalar cycle costs the event loop touches on *every* event,
/// copied out of the [`CostModel`] once at [`Engine::new`]. The hot
/// handlers used to `clone()` the whole ~200-byte cost model (floats,
/// fabric parameters, ablation flags and all) per event just to read a
/// handful of `u64`s; this is the same data, one cache line, no copy.
#[derive(Clone, Copy)]
struct HotCosts {
    ctx_save: u64,
    deque_push: u64,
    deque_pop: u64,
    ctx_restore: u64,
    try_join: u64,
    idle_poll: u64,
    resume_base: u64,
    page_fault: u64,
    /// Call glue of the Figure 4 fast path (see [`CostModel::spawn_cost`]).
    call_glue: u64,
    /// Retry delay after losing a deque race to a mid-steal thief.
    contended_retry: u64,
}

impl HotCosts {
    fn new(cost: &CostModel) -> Self {
        HotCosts {
            ctx_save: cost.ctx_save,
            deque_push: cost.deque_push,
            deque_pop: cost.deque_pop,
            ctx_restore: cost.ctx_restore,
            try_join: cost.try_join,
            idle_poll: cost.idle_poll,
            resume_base: cost.resume_base,
            page_fault: cost.page_fault,
            call_glue: cost.call_glue,
            contended_retry: cost.contended_retry,
        }
    }
}

struct WorkerCtl {
    rng: SplitMix64,
    pending: Pending,
    current: Option<TaskId64>,
    /// Consecutive fruitless scheduler iterations (for idle backoff).
    fails: u32,
    /// When the current steal attempt started (for breakdown totals).
    attempt_start: Cycles,
    /// When the current steal phase started.
    phase_start: Cycles,
    /// A task sitting in the region at an unsatisfied join (Figure 7's
    /// `while (!try_join)` loop keeps it in place; it is suspended — with
    /// the copy-out — only when the worker switches to other work).
    blocked: Option<TaskId64>,
    tasks_run: u64,
}

/// The simulation engine for one run.
pub struct Engine<W: Workload> {
    cfg: SimConfig,
    workload: W,
    fabric: Fabric,
    mgrs: Vec<StackMgr>,
    tasks: TaskTable<W::Desc>,
    workers: Vec<WorkerCtl>,
    queue: EventHeap,
    hot: HotCosts,
    /// Recycled `program` vectors from completed tasks: a spawn reuses a
    /// freed allocation instead of hitting the allocator per task.
    program_pool: Vec<Vec<Action<W::Desc>>>,
    events: u64,
    finished_at: Option<Cycles>,
    root: Option<TaskId64>,
    // accumulators
    total_work: u64,
    total_units: u64,
    steals_completed: u64,
    steal_attempts: u64,
    breakdown: StealBreakdown,
    page_faults: u64,
    trace: TraceCtl,
    /// Live-metrics registry wiring (inert unless
    /// [`with_metrics`](Engine::with_metrics) attached a registry).
    metrics: crate::smetrics::SimMetrics,
    /// Tests only: after this many events, deliberately corrupt one
    /// task-table record so the auditor trips (exercises the flight
    /// recorder end to end). See [`Engine::seed_audit_violation`].
    #[cfg(feature = "audit")]
    sabotage_after: Option<u64>,
}

impl<W: Workload> Engine<W> {
    /// Build a machine per `cfg` and place `workload`'s root task on
    /// worker 0.
    pub fn new(cfg: SimConfig, workload: W) -> Self {
        let topo = cfg.topo;
        let mut fabric = Fabric::new(topo, cfg.cost.clone());
        let total = topo.total_workers() as u64;
        let mgrs: Vec<StackMgr> = topo
            .workers()
            .map(|w| StackMgr::new(cfg.scheme, &mut fabric, w, &cfg.core, total))
            .collect();
        let root_rng = SplitMix64::new(cfg.seed);
        let workers = topo
            .workers()
            .map(|w| WorkerCtl {
                rng: root_rng.split(w.0 as u64),
                pending: Pending::Sched,
                current: None,
                fails: 0,
                attempt_start: Cycles::ZERO,
                phase_start: Cycles::ZERO,
                blocked: None,
                tasks_run: 0,
            })
            .collect();
        let hot = HotCosts::new(&cfg.cost);
        Engine {
            cfg,
            workload,
            fabric,
            mgrs,
            tasks: TaskTable::new(),
            workers,
            queue: EventHeap::new(total as usize),
            hot,
            program_pool: Vec::new(),
            events: 0,
            finished_at: None,
            root: None,
            total_work: 0,
            total_units: 0,
            steals_completed: 0,
            steal_attempts: 0,
            breakdown: StealBreakdown::new(),
            page_faults: 0,
            trace: TraceCtl::new(topo.total_workers() as usize),
            metrics: crate::smetrics::SimMetrics::default(),
            #[cfg(feature = "audit")]
            sabotage_after: None,
        }
    }

    /// Stream this run's scheduler-health metrics (steal outcomes and
    /// latency, task counts and run lengths) into `registry`, under the
    /// same metric names ([`uat_metrics::names`]) the native runtime
    /// exports. The registry must be built for at least this machine's
    /// worker count; snapshot it after [`run`](Engine::run).
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, registry: &std::sync::Arc<uat_metrics::Registry>) -> Self {
        self.metrics =
            crate::smetrics::SimMetrics::attach(registry, self.cfg.topo.total_workers() as usize);
        self
    }

    /// Run to completion of the root task; returns the measurements.
    pub fn run(mut self) -> RunStats {
        let makespan = self.run_loop();
        self.collect(makespan)
    }

    /// Drive the event loop until the root completes; returns the
    /// makespan with tracing accounts finalized against it.
    fn run_loop(&mut self) -> Cycles {
        // Flight recorder: under audit, make sure a bounded ring is
        // recording so an invariant violation has a post-mortem to dump
        // (runs that already installed a sink keep their capacity).
        #[cfg(all(feature = "audit", feature = "trace"))]
        if !self.trace.has_sink() {
            let workers = self.cfg.topo.total_workers() as usize;
            self.trace.install_sink(workers, Self::FLIGHT_RING_CAPACITY);
            self.fabric.enable_trace(Self::FLIGHT_RING_CAPACITY);
        }
        // Materialize and start the root on worker 0.
        let w0 = WorkerId(0);
        let root = self.spawn_task(w0, &self.workload.root(), None);
        self.root = Some(root);
        self.metrics.on_task_begin(root, Cycles::ZERO);
        self.trace.task_begin(w0, root, Cycles::ZERO, None);
        self.workers[0].current = Some(root);
        self.workers[0].pending = Pending::TaskStep(root);
        self.trace.set_bucket(w0, Bucket::Work);
        self.schedule(w0, Cycles::ZERO);
        // Everyone else starts looking for work.
        for w in self.cfg.topo.workers().skip(1) {
            self.workers[w.index()].pending = Pending::Sched;
            self.trace.set_bucket(w, Bucket::Idle);
            self.schedule(w, Cycles::ZERO);
        }

        while let Some((t, w)) = self.queue.pop() {
            if self.finished_at.is_some() {
                break;
            }
            self.events += 1;
            if self.cfg.max_events > 0 && self.events > self.cfg.max_events {
                panic!(
                    "simulation exceeded max_events={} (possible livelock)",
                    self.cfg.max_events
                );
            }
            self.fire(WorkerId(w), Cycles(t));
            // Seeded corruption for flight-recorder tests: mislabel a
            // running task's location so the next audit pass trips.
            #[cfg(feature = "audit")]
            if self.sabotage_after.is_some_and(|n| self.events >= n) {
                if let Some(task) = self.workers.iter().find_map(|c| c.current) {
                    self.sabotage_after = None;
                    self.tasks.get_mut(task).at = TaskWhere::InFlight;
                }
            }
            // Under the audit feature, re-validate every global invariant
            // after every event (skipped once the root has completed:
            // in-flight state is abandoned wherever it stands). With
            // tracing compiled in, a violation first dumps the flight
            // recording, then resumes the panic.
            #[cfg(feature = "audit")]
            if self.finished_at.is_none() {
                #[cfg(feature = "trace")]
                {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.audit_invariants()
                    }));
                    if let Err(payload) = caught {
                        self.dump_flight_recording(Cycles(t), payload.as_ref());
                        std::panic::resume_unwind(payload);
                    }
                }
                #[cfg(not(feature = "trace"))]
                self.audit_invariants();
            }
        }

        let makespan = self
            .finished_at
            .expect("root task never completed — scheduler bug");
        self.trace.finalize(makespan);
        makespan
    }

    // ------------------------------------------------------------------
    // Event plumbing
    // ------------------------------------------------------------------

    fn schedule(&mut self, w: WorkerId, t: Cycles) {
        self.queue.push(w.0, t.get());
    }

    fn fire(&mut self, w: WorkerId, t: Cycles) {
        self.trace.charge(w, t);
        let pending = self.workers[w.index()].pending;
        match pending {
            Pending::Sched => self.sched_step(w, t),
            Pending::TaskStep(task) => self.advance_task(w, task, t),
            Pending::PostComplete => self.post_complete(w, t),
            Pending::StealEmpty { victim, ok } => self.steal_after_empty(w, victim, ok, t),
            Pending::StealLock { victim, ok } => self.steal_after_lock(w, victim, ok, t),
            Pending::StealEntry { victim, entry } => self.steal_after_entry(w, victim, entry, t),
            Pending::StealAbortUnlock => {
                // Lock released after a raced-empty steal.
                self.sched_wait_step(w, t)
            }
            Pending::StealTransfer { victim, entry } => {
                self.steal_after_transfer(w, victim, entry, t)
            }
            Pending::StealUnlock { victim, entry } => self.steal_after_unlock(w, victim, entry, t),
        }
    }

    /// Schedule `w`'s next event; `bucket` is where the span between now
    /// and that event will be charged in the worker's time account.
    fn set(&mut self, w: WorkerId, pending: Pending, at: Cycles, bucket: Bucket) {
        self.trace.set_bucket(w, bucket);
        self.workers[w.index()].pending = pending;
        self.schedule(w, at);
    }

    // ------------------------------------------------------------------
    // Task execution
    // ------------------------------------------------------------------

    /// Create a task record + stack frames for `desc` on worker `w`.
    /// Returns the id. (Page-fault cost, nonzero only under iso, is
    /// returned through `self.page_faults` and the spawn path's timing.)
    fn spawn_task(&mut self, w: WorkerId, desc: &W::Desc, parent: Option<TaskId64>) -> TaskId64 {
        let mut program = self.program_pool.pop().unwrap_or_default();
        self.workload.program(desc, &mut program);
        self.total_units += self.workload.units(desc);
        let frame = self.workload.frame_size(desc).max(16);
        let id = self
            .tasks
            .spawn(program, parent, TaskWhere::Running(w), frame);
        let (_base, faults) = self.mgrs[w.index()].spawn_frame(&mut self.fabric, id, frame);
        self.page_faults += faults;
        id
    }

    /// Interpret the current task's program from `pc`, accumulating
    /// zero-event costs, until exactly one timed operation is scheduled.
    fn advance_task(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        // Fire time of this event: zero-event costs accumulate into the
        // local `t` below, but state changes (e.g. the join-counter
        // decrement in `complete_task`) become visible to other workers
        // from this instant on.
        let now = t;
        let mut t = t;
        let cost = self.hot;
        loop {
            let (pc, len) = {
                let rec = self.tasks.get(task);
                (rec.pc as usize, rec.program.len())
            };
            if pc >= len {
                self.complete_task(w, task, t, now);
                return;
            }
            // Clone the action out to keep borrows simple; actions are
            // small (Desc is typically a few words).
            let action = self.tasks.get(task).program[pc].clone();
            match action {
                Action::Work(c) => {
                    self.tasks.get_mut(task).pc += 1;
                    self.total_work += c;
                    self.set(w, Pending::TaskStep(task), t + Cycles(c), Bucket::Work);
                    return;
                }
                Action::Spawn(desc) => {
                    // Figure 4: push the parent continuation (resume point
                    // = next action), then start the child immediately.
                    let (frame_base, frame_size) = {
                        let mgr = &self.mgrs[w.index()];
                        match mgr {
                            StackMgr::Uni(u) => {
                                let seg = u
                                    .region
                                    .segment_of(task)
                                    .expect("running task owns a segment");
                                (seg.base, seg.size)
                            }
                            StackMgr::Iso(_) => {
                                let rec = self.tasks.get(task);
                                (0, rec.frame_size) // iso carries no shared region address
                            }
                        }
                    };
                    {
                        let rec = self.tasks.get_mut(task);
                        rec.pc += 1;
                        rec.at = TaskWhere::InDeque(w);
                        rec.outstanding += 1;
                    }
                    let entry = TaskqEntry {
                        task,
                        ctx: self.tasks.get(task).pc as u64,
                        frame_base,
                        frame_size,
                    };
                    self.mgrs[w.index()]
                        .deque()
                        .push(&mut self.fabric, entry)
                        .expect("deque push");
                    // The parent's continuation is stealable from this
                    // instant: the victim side of a potential steal edge.
                    self.trace.deque_publish(w, task, t);
                    let faults_before = self.page_faults;
                    let child = self.spawn_task(w, &desc, Some(task));
                    self.metrics.on_task_begin(child, t);
                    self.trace.task_begin(w, child, t, Some(task));
                    let fault_cost = Cycles((self.page_faults - faults_before) * cost.page_fault);
                    self.workers[w.index()].current = Some(child);
                    self.workers[w.index()].tasks_run += 1;
                    // Half of the Figure 4 creation overhead: the context
                    // save and queue push. The pop half is charged when
                    // the child returns (post_complete), so a full
                    // create/return cycle costs spawn_cost() total.
                    let mut create = Cycles(cost.ctx_save + cost.deque_push);
                    if self.cfg.crude_switch {
                        // Section 5.1's unoptimized scheme: swap the
                        // parent out now and back in when the child
                        // returns — two copies of the parent's frames
                        // plus the suspend/resume bookkeeping.
                        create += self.cfg.cost.suspend_cost(frame_size as usize)
                            + self.cfg.cost.resume_cost(frame_size as usize);
                    }
                    self.set(
                        w,
                        Pending::TaskStep(child),
                        t + create + fault_cost,
                        Bucket::Spawn,
                    );
                    return;
                }
                Action::JoinAll => {
                    t += Cycles(cost.try_join);
                    if self.tasks.get(task).outstanding == 0 {
                        self.tasks.get_mut(task).pc += 1;
                        continue;
                    }
                    // Children still running elsewhere. Figure 7: the
                    // joining thread stays in the region while the
                    // scheduler loop polls try_join around other work;
                    // the copy-out happens only if the worker actually
                    // switches (see `park_blocked`). `pc` stays AT the
                    // JoinAll so the check reruns on resume.
                    let ctl = &mut self.workers[w.index()];
                    ctl.current = None;
                    ctl.blocked = Some(task);
                    self.set(w, Pending::Sched, t, Bucket::Idle);
                    return;
                }
            }
        }
    }

    /// The running task's program ended (thread exit).
    /// `t` is the task's nominal end (fire time plus zero-event costs
    /// accumulated by `advance_task`); `noticed` is the fire time, from
    /// which the parent's decremented join counter is already observable
    /// by other workers — causality instants must carry that stamp, or a
    /// polling joiner could record its resume *before* the ready.
    fn complete_task(&mut self, w: WorkerId, task: TaskId64, t: Cycles, noticed: Cycles) {
        self.metrics.on_task_end(w.index(), task, t);
        self.trace.task_end(w, task, t);
        let mut rec = self.tasks.free(task);
        debug_assert!(
            rec.outstanding == 0,
            "a task cannot exit with live children"
        );
        let mut program = std::mem::take(&mut rec.program);
        program.clear();
        self.program_pool.push(program);
        if let Some((owner, slot)) = self.mgrs[w.index()].complete(task, &self.cfg.core) {
            self.mgrs[owner.index()].reclaim_slot(slot);
        }
        if let Some(parent) = rec.parent {
            // Completion notification: the done-flag write is a posted
            // one-sided RDMA WRITE when the parent is remote; it does not
            // block the child, so the decrement is applied immediately.
            let outstanding = {
                let p = self.tasks.get_mut(parent);
                p.outstanding -= 1;
                p.outstanding
            };
            if outstanding == 0 {
                // This completion made the parent's join ready — the
                // child side of a potential join edge. Stamped at the
                // fire time (`noticed`), not the nominal task end: the
                // decrement above is observable from this event on.
                self.trace.join_ready(w, parent, task, noticed);
            }
        } else {
            // The root finished: the program is done.
            self.finished_at = Some(t);
            return;
        }
        self.workers[w.index()].current = None;
        self.post_complete(w, t);
    }

    /// Figure 4 lines 13-15: pop the own queue; resume the parent in
    /// place, or conclude it was stolen.
    fn post_complete(&mut self, w: WorkerId, t: Cycles) {
        let cost = self.hot;
        let deque = self.mgrs[w.index()].deque();
        match deque.pop(&mut self.fabric).expect("own deque") {
            PopOutcome::Entry(e) => {
                // The direct parent: resume it where it sits.
                let rec = self.tasks.get_mut(e.task);
                debug_assert_eq!(rec.at, TaskWhere::InDeque(w));
                rec.at = TaskWhere::Running(w);
                rec.pc = e.ctx as u32;
                self.workers[w.index()].current = Some(e.task);
                self.workers[w.index()].fails = 0;
                // The pop half of the Figure 4 fast path; the parent
                // continues by an ordinary return, not a context restore.
                self.set(
                    w,
                    Pending::TaskStep(e.task),
                    t + Cycles(cost.deque_pop + cost.call_glue),
                    Bucket::Spawn,
                );
            }
            PopOutcome::Empty => {
                // Every ancestor was stolen; the remaining frames here are
                // dead copies. Drain and go looking for work.
                self.mgrs[w.index()].on_pop_empty();
                self.set(w, Pending::Sched, t + Cycles(cost.deque_pop), Bucket::Idle);
            }
            PopOutcome::Contended => {
                // A thief holds our lock mid-transfer; retry shortly.
                self.set(
                    w,
                    Pending::PostComplete,
                    t + Cycles(cost.deque_pop + cost.contended_retry),
                    Bucket::Idle,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // The Figure 7 scheduler loop
    // ------------------------------------------------------------------

    /// Park the blocked (in-region, join-waiting) thread, if any: the
    /// Figure 8 suspend — copy the frames out to the RDMA region and
    /// queue the saved context on the wait queue. Returns the cost, and
    /// records it in the Figure 10 "suspend" bar when `for_steal`.
    fn park_blocked(&mut self, w: WorkerId, for_steal: bool, now: Cycles) -> Cycles {
        let cost = self.cfg.cost.clone();
        let Some(task) = self.workers[w.index()].blocked.take() else {
            if for_steal {
                self.breakdown.record(StealPhase::Suspend, Cycles::ZERO);
            }
            return Cycles::ZERO;
        };
        self.trace.task_suspend(w, task, now);
        let pc = self.tasks.get(task).pc as u64;
        let (h, c) = self.mgrs[w.index()].suspend_current(&mut self.fabric, task, pc, &cost);
        self.mgrs[w.index()].wait_push(h);
        self.tasks.get_mut(task).at = TaskWhere::Waiting(w);
        if for_steal {
            self.breakdown.record(StealPhase::Suspend, c);
        }
        c
    }

    /// Step 1 of Figure 7: poll try_join for the blocked thread, then try
    /// the local queue, else start a steal.
    fn sched_step(&mut self, w: WorkerId, t: Cycles) {
        let cost = self.hot;
        let t0 = t;
        // `while (!try_join)`: the blocked thread resumes in place — the
        // paper's "typical case" where join only confirms termination.
        if let Some(task) = self.workers[w.index()].blocked {
            let t = t + Cycles(cost.try_join);
            if self.tasks.get(task).outstanding == 0 {
                let ctl = &mut self.workers[w.index()];
                ctl.blocked = None;
                ctl.current = Some(task);
                ctl.fails = 0;
                self.trace.task_resume(w, task, t);
                self.trace.join_resume(w, task, t);
                self.set(w, Pending::TaskStep(task), t, Bucket::SuspendResume);
                return;
            }
        }
        let deque = self.mgrs[w.index()].deque();
        match deque.pop(&mut self.fabric).expect("own deque") {
            PopOutcome::Entry(e) => {
                // A ready ancestor. Vacate the blocked joiner below it
                // (Figure 7 line 22: suspend current, resume popped),
                // then resume the ancestor in place: it is the bottom
                // live segment now.
                let parked = self.park_blocked(w, false, t);
                let rec = self.tasks.get_mut(e.task);
                debug_assert_eq!(rec.at, TaskWhere::InDeque(w));
                rec.at = TaskWhere::Running(w);
                rec.pc = e.ctx as u32;
                self.workers[w.index()].current = Some(e.task);
                self.workers[w.index()].fails = 0;
                self.trace.task_resume(w, e.task, t + parked);
                self.trace.carry(w, Bucket::SuspendResume, parked);
                self.set(
                    w,
                    Pending::TaskStep(e.task),
                    t + parked + Cycles(cost.deque_pop + cost.ctx_restore),
                    Bucket::Spawn,
                );
                return;
            }
            PopOutcome::Empty => {
                if self.workers[w.index()].blocked.is_none() {
                    // Only dead (stolen) frames remain: drain so a steal
                    // can install at any address.
                    self.mgrs[w.index()].on_pop_empty();
                }
            }
            PopOutcome::Contended => {
                self.set(
                    w,
                    Pending::Sched,
                    t + Cycles(cost.deque_pop + cost.contended_retry),
                    Bucket::Idle,
                );
                return;
            }
        }
        let t = t + Cycles(cost.deque_pop);
        // Step 2: steal from a random victim (single-worker machines have
        // nobody to rob).
        let total = self.cfg.topo.total_workers();
        if total <= 1 {
            self.sched_wait_step(w, t);
            return;
        }
        let mut v = self.workers[w.index()].rng.below(total as u64 - 1) as u32;
        if v >= w.0 {
            v += 1;
        }
        let victim = WorkerId(v);
        self.steal_attempts += 1;
        self.trace.steal_attempt(w);
        // The local pop that came up empty is scheduler overhead, not
        // part of the empty-check phase.
        self.trace.carry(w, Bucket::Idle, t.since(t0));
        let ctl = &mut self.workers[w.index()];
        ctl.attempt_start = t;
        ctl.phase_start = t;
        let vdeque = self.mgrs[victim.index()].deque();
        match vdeque
            .remote_empty_check(&mut self.fabric, t, w)
            .expect("empty check")
        {
            StealOutcome::Ok(done) => self.set(
                w,
                Pending::StealEmpty { victim, ok: true },
                done,
                Bucket::StealEmpty,
            ),
            StealOutcome::Empty(done) => self.set(
                w,
                Pending::StealEmpty { victim, ok: false },
                done,
                Bucket::StealEmpty,
            ),
            StealOutcome::LockBusy(_) => unreachable!("empty check takes no lock"),
        }
    }

    /// Step 3: wait-queue resume, else idle poll with backoff.
    fn sched_wait_step(&mut self, w: WorkerId, t: Cycles) {
        // Resuming a waiter installs its frames at their original
        // address, which needs an empty region: park whatever is blocked
        // here first, then drain. The waiter's join may still be
        // unsatisfied — then it simply becomes the blocked thread and the
        // loop polls on (the paper's runtime pays the same copy to find
        // out; Figure 7 lines 28-30).
        if self.mgrs[w.index()].wait_len() > 0 {
            let cost = self.cfg.cost.clone();
            let parked = self.park_blocked(w, false, t);
            self.mgrs[w.index()].on_pop_empty();
            let h = self.mgrs[w.index()]
                .wait_pop()
                .expect("non-empty wait queue");
            let info = self.mgrs[w.index()].resume_saved(&mut self.fabric, h, &cost);
            let rec = self.tasks.get_mut(info.task);
            debug_assert_eq!(rec.at, TaskWhere::Waiting(w));
            rec.at = TaskWhere::Running(w);
            rec.pc = info.ctx as u32;
            let ctl = &mut self.workers[w.index()];
            ctl.current = Some(info.task);
            ctl.fails = 0;
            self.trace.task_resume(w, info.task, t + parked);
            if self.tasks.get(info.task).outstanding == 0 {
                // The waiter's join is satisfied: it resumes past the
                // JoinAll rather than re-parking — close the join edge.
                self.trace.join_resume(w, info.task, t + parked);
            }
            // The resumed thread re-runs its JoinAll check; if its child
            // is still outstanding it becomes the blocked thread here
            // (polling, as the paper's join loop does).
            self.set(
                w,
                Pending::TaskStep(info.task),
                t + parked + info.cost,
                Bucket::SuspendResume,
            );
            return;
        }
        // Nothing to switch to. If this worker still has a blocked joiner
        // (or parked waiters) it polls hot, like the paper's Figure 7
        // loop — the join wake-up is on the critical path of shrinking
        // parallelism. Only a truly workless worker backs off, which
        // keeps fully idle machines from generating events at line rate.
        let has_poll_target =
            self.workers[w.index()].blocked.is_some() || self.mgrs[w.index()].wait_len() > 0;
        let ctl = &mut self.workers[w.index()];
        let backoff = if has_poll_target {
            ctl.fails = 0;
            0
        } else {
            ctl.fails = ctl.fails.saturating_add(1);
            self.cfg.idle_backoff * (ctl.fails.min(self.cfg.idle_backoff_cap) as u64)
        };
        self.trace.idle_poll(w, t);
        self.set(
            w,
            Pending::Sched,
            t + Cycles(self.hot.idle_poll + backoff),
            Bucket::Idle,
        );
    }

    // ------------------------------------------------------------------
    // Steal phases (Figure 6)
    // ------------------------------------------------------------------

    fn steal_after_empty(&mut self, w: WorkerId, victim: WorkerId, ok: bool, t: Cycles) {
        if !ok {
            self.breakdown.aborted_empty += 1;
            let latency = t.since(self.workers[w.index()].attempt_start);
            self.metrics.on_steal_result(w.index(), false, latency);
            self.trace
                .steal_result(w, victim, StealEnd::AbortEmpty, t, latency);
            self.sched_wait_step(w, t);
            return;
        }
        let phase_start = self.workers[w.index()].phase_start;
        let elapsed = t.since(phase_start);
        self.breakdown.record(StealPhase::EmptyCheck, elapsed);
        self.trace
            .steal_phase(w, victim, StealPhaseId::EmptyCheck, phase_start, elapsed);
        self.workers[w.index()].phase_start = t;
        #[cfg(feature = "trace")]
        let faa_before = self.fabric.stats().faa_queue_cycles;
        let vdeque = self.mgrs[victim.index()].deque();
        let outcome = vdeque
            .remote_try_lock(&mut self.fabric, t, w)
            .expect("lock");
        #[cfg(feature = "trace")]
        {
            // Queueing at the victim node's software FAA server happens
            // at the start of the lock span; split it out of the bucket.
            let wait = self.fabric.stats().faa_queue_cycles - faa_before;
            self.trace.carry(w, Bucket::FaaQueue, Cycles(wait));
        }
        match outcome {
            StealOutcome::Ok(done) => self.set(
                w,
                Pending::StealLock { victim, ok: true },
                done,
                Bucket::StealLock,
            ),
            StealOutcome::LockBusy(done) => self.set(
                w,
                Pending::StealLock { victim, ok: false },
                done,
                Bucket::StealLock,
            ),
            StealOutcome::Empty(_) => unreachable!("lock does not observe emptiness"),
        }
    }

    fn steal_after_lock(&mut self, w: WorkerId, victim: WorkerId, ok: bool, t: Cycles) {
        if !ok {
            self.breakdown.aborted_lock += 1;
            let latency = t.since(self.workers[w.index()].attempt_start);
            self.metrics.on_steal_result(w.index(), false, latency);
            self.trace
                .steal_result(w, victim, StealEnd::AbortLock, t, latency);
            self.sched_wait_step(w, t);
            return;
        }
        let phase_start = self.workers[w.index()].phase_start;
        let elapsed = t.since(phase_start);
        self.breakdown.record(StealPhase::Lock, elapsed);
        self.trace
            .steal_phase(w, victim, StealPhaseId::Lock, phase_start, elapsed);
        self.workers[w.index()].phase_start = t;
        let vdeque = self.mgrs[victim.index()].deque();
        match vdeque
            .remote_steal_entry(&mut self.fabric, t, w)
            .expect("steal entry")
        {
            StealOutcome::Ok((e, done)) => {
                // The continuation is ours from this instant (top moved);
                // its frames stay on the victim until the transfer.
                self.tasks.get_mut(e.task).at = TaskWhere::InFlight;
                self.set(
                    w,
                    Pending::StealEntry {
                        victim,
                        entry: Some(e),
                    },
                    done,
                    Bucket::StealEntry,
                )
            }
            StealOutcome::Empty(done) => self.set(
                w,
                Pending::StealEntry {
                    victim,
                    entry: None,
                },
                done,
                Bucket::StealEntry,
            ),
            StealOutcome::LockBusy(_) => unreachable!("we hold the lock"),
        }
    }

    fn steal_after_entry(
        &mut self,
        w: WorkerId,
        victim: WorkerId,
        entry: Option<TaskqEntry>,
        t: Cycles,
    ) {
        let vdeque = self.mgrs[victim.index()].deque();
        let Some(e) = entry else {
            // Drained while we were locking; unlock and give up.
            self.breakdown.aborted_raced += 1;
            let latency = t.since(self.workers[w.index()].attempt_start);
            self.metrics.on_steal_result(w.index(), false, latency);
            self.trace
                .steal_result(w, victim, StealEnd::AbortRaced, t, latency);
            let done = vdeque
                .remote_unlock(&mut self.fabric, t, w)
                .expect("unlock");
            self.set(w, Pending::StealAbortUnlock, done, Bucket::StealUnlock);
            return;
        };
        let phase_start = self.workers[w.index()].phase_start;
        let elapsed = t.since(phase_start);
        self.breakdown.record(StealPhase::Steal, elapsed);
        self.trace
            .steal_phase(w, victim, StealPhaseId::Steal, phase_start, elapsed);
        // Figure 6 line 19: suspend whatever this worker still holds
        // before bringing in the stolen frames.
        let parked = self.park_blocked(w, true, t);
        self.trace
            .steal_phase(w, victim, StealPhaseId::Suspend, t, parked);
        self.trace.carry(w, Bucket::SuspendResume, parked);
        self.mgrs[w.index()].on_pop_empty();
        let t = t + parked;
        self.workers[w.index()].phase_start = t;
        // Stack transfer: uni does a one-sided READ into the same VA;
        // iso is victim-assisted + destination page faults.
        let info = transfer_stolen(
            &mut self.fabric,
            t,
            &mut self.mgrs,
            w,
            victim,
            e.task,
            e.frame_base,
            e.frame_size,
        );
        self.page_faults += info.faults;
        self.set(
            w,
            Pending::StealTransfer { victim, entry: e },
            info.done,
            Bucket::StealTransfer,
        );
    }

    fn steal_after_transfer(
        &mut self,
        w: WorkerId,
        victim: WorkerId,
        entry: TaskqEntry,
        t: Cycles,
    ) {
        let phase_start = self.workers[w.index()].phase_start;
        let elapsed = t.since(phase_start);
        self.breakdown.record(StealPhase::StackTransfer, elapsed);
        self.trace
            .steal_phase(w, victim, StealPhaseId::StackTransfer, phase_start, elapsed);
        self.workers[w.index()].phase_start = t;
        let vdeque = self.mgrs[victim.index()].deque();
        let done = vdeque
            .remote_unlock(&mut self.fabric, t, w)
            .expect("unlock");
        self.set(
            w,
            Pending::StealUnlock { victim, entry },
            done,
            Bucket::StealUnlock,
        );
    }

    fn steal_after_unlock(&mut self, w: WorkerId, victim: WorkerId, entry: TaskqEntry, t: Cycles) {
        let cost = self.hot;
        let phase_start = self.workers[w.index()].phase_start;
        let elapsed = t.since(phase_start);
        self.breakdown.record(StealPhase::Unlock, elapsed);
        self.trace
            .steal_phase(w, victim, StealPhaseId::Unlock, phase_start, elapsed);
        self.breakdown
            .record(StealPhase::Resume, Cycles(cost.resume_base));
        self.trace
            .steal_phase(w, victim, StealPhaseId::Resume, t, Cycles(cost.resume_base));
        self.breakdown.completed += 1;
        self.steals_completed += 1;
        let latency = t.since(self.workers[w.index()].attempt_start) + Cycles(cost.resume_base);
        self.metrics.on_steal_result(w.index(), true, latency);
        self.trace
            .steal_result(w, victim, StealEnd::Completed, t, latency);
        let rec = self.tasks.get_mut(entry.task);
        debug_assert_eq!(rec.at, TaskWhere::InFlight);
        rec.at = TaskWhere::Running(w);
        rec.pc = entry.ctx as u32;
        let ctl = &mut self.workers[w.index()];
        ctl.current = Some(entry.task);
        ctl.fails = 0;
        ctl.tasks_run += 1;
        self.trace.task_resume(w, entry.task, t);
        // Thief side of the steal edge: pairs with the victim's
        // deque-publish by sequence number.
        self.trace.steal_commit(w, entry.task, t);
        self.set(
            w,
            Pending::TaskStep(entry.task),
            t + Cycles(cost.resume_base),
            Bucket::SuspendResume,
        );
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn collect(self, makespan: Cycles) -> RunStats {
        let peak_stack = self
            .mgrs
            .iter()
            .map(|m| m.peak_stack_usage())
            .max()
            .unwrap_or(0);
        let reserved = self
            .mgrs
            .iter()
            .map(|m| m.mem_stats().reserved)
            .max()
            .unwrap_or(0);
        let pinned = self
            .mgrs
            .iter()
            .map(|m| m.mem_stats().pinned)
            .max()
            .unwrap_or(0);
        let committed: u64 = self.mgrs.iter().map(|m| m.mem_stats().committed).sum();
        let tasks_run: Vec<u64> = self.workers.iter().map(|c| c.tasks_run).collect();
        let (per_worker, steal_latency, task_run_length) = self.trace.collect_summaries(&tasks_run);
        RunStats {
            workload: self.workload.name(),
            scheme: self.cfg.scheme,
            workers: self.cfg.topo.total_workers(),
            clock_hz: self.cfg.cost.clock_hz,
            makespan,
            total_tasks: self.tasks.total_spawned(),
            total_units: self.total_units,
            total_work_cycles: self.total_work,
            peak_live_tasks: self.tasks.peak_live(),
            steals_completed: self.steals_completed,
            steal_attempts: self.steal_attempts,
            breakdown: self.breakdown,
            peak_stack_usage: peak_stack,
            reserved_va_per_worker: reserved,
            pinned_per_worker: pinned,
            page_faults: self.page_faults,
            committed_total: committed,
            fabric: self.fabric.stats(),
            events: self.events,
            per_worker,
            steal_latency,
            task_run_length,
            critical_path: None,
        }
    }
}

/// Where the flight recorder writes the post-mortem for a violation
/// caught on a thread named `name` (tests run on a thread named after
/// the test): `<target>/flight/<sanitized name>.trace.json`.
#[cfg(all(feature = "audit", feature = "trace"))]
pub fn flight_path(name: &str) -> std::path::PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    target
        .join("flight")
        .join(format!("{sanitized}.trace.json"))
}

#[cfg(feature = "audit")]
impl<W: Workload> Engine<W> {
    /// Arrange for a deliberate invariant violation once `after_events`
    /// events have fired: the first running task found after that point
    /// gets its task-table location mislabelled as `InFlight`, which the
    /// next audit pass reports as a location mismatch. This exists so
    /// tests (and curious users) can watch the flight recorder produce a
    /// post-mortem without waiting for a real scheduler bug.
    pub fn seed_audit_violation(&mut self, after_events: u64) {
        self.sabotage_after = Some(after_events);
    }

    /// Re-validate the global invariants after one event (see the
    /// `audit` feature's description in Cargo.toml and DESIGN.md §7).
    ///
    /// Panics on the first violation. The per-worker structural checks
    /// (region packing, RDMA-region bounds, deque index sanity) run
    /// inside [`StackMgr::audit`]; this method adds the facts only the
    /// engine can see:
    ///
    /// - **Lock holders**: a thief holds a victim's steal lock exactly
    ///   while its pending event is inside the locked critical section
    ///   (`StealLock{ok}`/`StealEntry`/`StealTransfer` — one-sided ops
    ///   linearize at issue, so the unlock preceding `StealUnlock` and
    ///   `StealAbortUnlock` has already landed). At most one holder per
    ///   deque, and the lock word is nonzero iff a holder exists.
    /// - **Task locations**: every task reachable from a structure has
    ///   the matching [`TaskWhere`] — worker `current`/`blocked` ⇒
    ///   `Running`, deque entries ⇒ `InDeque`, wait queues ⇒ `Waiting`,
    ///   mid-steal pendings ⇒ `InFlight` — and a worker running a task
    ///   has no blocked joiner (the joiner is parked before any switch).
    /// - **Conservation**: spawned = completed + queued + in-flight +
    ///   suspended, checked as: the tasks found above are pairwise
    ///   distinct and count exactly `tasks.live()`.
    fn audit_invariants(&self) {
        use std::collections::HashSet;
        let n = self.mgrs.len();
        let mut holder: Vec<Option<WorkerId>> = vec![None; n];
        let mut found: HashSet<TaskId64> = HashSet::new();
        let claim = |found: &mut HashSet<TaskId64>, task: TaskId64, what: &str, w: usize| {
            assert!(
                found.insert(task),
                "audit: task {task:#x} found in two places (second: {what} on worker {w})"
            );
        };
        for (wi, ctl) in self.workers.iter().enumerate() {
            let w = WorkerId(wi as u32);
            match ctl.pending {
                Pending::StealLock { victim, ok: true }
                | Pending::StealEntry { victim, .. }
                | Pending::StealTransfer { victim, .. } => {
                    assert!(
                        holder[victim.index()].replace(w).is_none(),
                        "audit: two thieves inside worker {victim}'s locked critical section"
                    );
                }
                _ => {}
            }
            let in_flight = match ctl.pending {
                Pending::StealEntry { entry: Some(e), .. }
                | Pending::StealTransfer { entry: e, .. }
                | Pending::StealUnlock { entry: e, .. } => Some(e.task),
                _ => None,
            };
            if let Some(task) = in_flight {
                claim(&mut found, task, "mid-steal pending", wi);
                assert_eq!(
                    self.tasks.get(task).at,
                    TaskWhere::InFlight,
                    "audit: task {task:#x} is mid-steal to worker {w} but not marked InFlight"
                );
            }
            if let Some(task) = ctl.current {
                assert!(
                    ctl.blocked.is_none(),
                    "audit: worker {w} runs task {task:#x} with a blocked joiner in the region"
                );
                claim(&mut found, task, "current", wi);
                assert_eq!(
                    self.tasks.get(task).at,
                    TaskWhere::Running(w),
                    "audit: worker {w}'s current task {task:#x} not marked Running here"
                );
            }
            if let Some(task) = ctl.blocked {
                claim(&mut found, task, "blocked joiner", wi);
                assert_eq!(
                    self.tasks.get(task).at,
                    TaskWhere::Running(w),
                    "audit: worker {w}'s blocked joiner {task:#x} not marked Running here"
                );
            }
        }
        for (wi, mgr) in self.mgrs.iter().enumerate() {
            let w = WorkerId(wi as u32);
            let facts = mgr.audit(&self.fabric);
            match holder[wi] {
                Some(thief) => assert!(
                    facts.lock != 0,
                    "audit: thief {thief} is inside worker {w}'s locked critical section but the lock word is 0"
                ),
                None => assert_eq!(
                    facts.lock, 0,
                    "audit: worker {w}'s lock word is {} with no thief inside a critical section",
                    facts.lock
                ),
            }
            for task in facts.deque_tasks {
                claim(&mut found, task, "deque entry", wi);
                assert_eq!(
                    self.tasks.get(task).at,
                    TaskWhere::InDeque(w),
                    "audit: task {task:#x} sits in worker {w}'s deque but is not marked InDeque there"
                );
            }
            for task in facts.wait_tasks {
                claim(&mut found, task, "wait queue", wi);
                assert_eq!(
                    self.tasks.get(task).at,
                    TaskWhere::Waiting(w),
                    "audit: task {task:#x} sits on worker {w}'s wait queue but is not marked Waiting there"
                );
            }
            // Uni: the region's bottom segment is the running thread's
            // (Section 5.2). The bottom may be a stale stolen segment
            // while the worker is between tasks, so compare only when a
            // task is actually in place.
            if mgr.kind() == uat_core::SchemeKind::Uni {
                let ctl = &self.workers[wi];
                if let Some(task) = ctl.current.or(ctl.blocked) {
                    assert_eq!(
                        facts.bottom_task,
                        Some(task),
                        "audit: worker {w} runs task {task:#x} but it does not own the bottom segment"
                    );
                }
            }
        }
        assert_eq!(
            found.len() as u64,
            self.tasks.live(),
            "audit: task conservation broken — {} tasks found in structures, {} live",
            found.len(),
            self.tasks.live()
        );
    }
}

#[cfg(all(feature = "audit", feature = "trace"))]
impl<W: Workload> Engine<W> {
    /// Per-worker ring capacity of the always-on flight recorder in
    /// audit builds: big enough to reconstruct the last few protocol
    /// rounds before a violation, small enough to cost nothing.
    pub const FLIGHT_RING_CAPACITY: usize = 4096;

    /// Write the flight recording for a violation that just unwound out
    /// of the auditor: the last events of every worker ring plus the
    /// fabric trace, as a Chrome trace with the violation message in
    /// `otherData`. Best-effort — a failed write must not mask the
    /// violation itself (the caller re-raises the panic either way).
    fn dump_flight_recording(&mut self, now: Cycles, payload: &(dyn std::any::Any + Send)) {
        let violation =
            uat_core::audit::panic_message(payload).unwrap_or("non-string panic payload");
        let data = uat_trace::TraceData {
            clock_hz: self.cfg.cost.clock_hz,
            clock_source: uat_trace::ClockSource::Simulated,
            workers: self.trace.take_rings(),
            fabric: self.fabric.take_trace(),
            makespan: now,
        };
        let text = uat_trace::flight_trace_json(&data, violation);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| "run".into());
        let path = flight_path(&name);
        let written = path
            .parent()
            .map(std::fs::create_dir_all)
            .unwrap_or(Ok(()))
            .and_then(|()| std::fs::write(&path, text));
        match written {
            Ok(()) => eprintln!("audit: flight recording written to {}", path.display()),
            Err(e) => eprintln!(
                "audit: could not write flight recording to {}: {e}",
                path.display()
            ),
        }
    }
}

#[cfg(feature = "trace")]
impl<W: Workload> Engine<W> {
    /// Default per-worker ring capacity for [`Engine::run_traced`].
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// Install a structured-event sink (one bounded ring of
    /// `ring_capacity` events per worker) and enable fabric-level RDMA
    /// tracing. Without this, a `trace`-feature build still fills the
    /// per-worker time accounts and histograms but keeps no event log.
    pub fn with_tracing(mut self, ring_capacity: usize) -> Self {
        let workers = self.cfg.topo.total_workers() as usize;
        self.trace.install_sink(workers, ring_capacity);
        self.fabric.enable_trace(ring_capacity);
        self
    }

    /// Run to completion, returning both the measurements and the full
    /// event trace (installing a default-capacity sink if
    /// [`Engine::with_tracing`] was not called).
    pub fn run_traced(mut self) -> (RunStats, uat_trace::TraceData) {
        if !self.trace.has_sink() {
            self = self.with_tracing(Self::DEFAULT_RING_CAPACITY);
        }
        let makespan = self.run_loop();
        let clock_hz = self.cfg.cost.clock_hz;
        let workers = self.trace.take_rings();
        let fabric = self.fabric.take_trace();
        let stats = self.collect(makespan);
        (
            stats,
            uat_trace::TraceData {
                clock_hz,
                clock_source: uat_trace::ClockSource::Simulated,
                workers,
                fabric,
                makespan,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::sequential_profile;
    use crate::workload::testutil::BinTree;
    use uat_core::SchemeKind;

    fn tree(depth: u32, work: u64) -> BinTree {
        BinTree {
            depth,
            work,
            frame: 512,
        }
    }

    fn run(workers: u32, scheme: SchemeKind, depth: u32, work: u64, seed: u64) -> RunStats {
        let mut cfg = SimConfig::tiny(workers).with_scheme(scheme).with_seed(seed);
        cfg.core.verify_stack_bytes = true;
        cfg.core.iso_stacks_per_worker = 256;
        cfg.max_events = 50_000_000;
        Engine::new(cfg, tree(depth, work)).run()
    }

    #[test]
    fn single_worker_executes_whole_tree() {
        let s = run(1, SchemeKind::Uni, 6, 100, 1);
        let p = sequential_profile(&tree(6, 100));
        assert_eq!(s.total_tasks, p.tasks);
        assert_eq!(s.total_work_cycles, p.work_cycles);
        assert_eq!(s.steals_completed, 0, "nobody to steal from");
        // Peak region usage = depth of the lineage × frame size.
        assert_eq!(s.peak_stack_usage, 7 * 512);
        // Makespan at least the serial work.
        assert!(s.makespan.get() >= p.work_cycles);
    }

    #[test]
    fn two_workers_steal_and_finish() {
        let s = run(2, SchemeKind::Uni, 8, 2_000, 2);
        let p = sequential_profile(&tree(8, 2_000));
        assert_eq!(s.total_tasks, p.tasks);
        assert!(s.steals_completed > 0, "load balancing must kick in");
        // Two workers should beat one substantially on a 511-task tree.
        let s1 = run(1, SchemeKind::Uni, 8, 2_000, 2);
        let speedup = s1.makespan.get() as f64 / s.makespan.get() as f64;
        assert!(speedup > 1.4, "speedup {speedup}");
    }

    #[test]
    fn fifteen_workers_scale() {
        let s = run(15, SchemeKind::Uni, 13, 1_000, 3);
        let p = sequential_profile(&tree(13, 1_000));
        assert_eq!(s.total_tasks, p.tasks);
        let s1 = run(1, SchemeKind::Uni, 13, 1_000, 3);
        let speedup = s1.makespan.get() as f64 / s.makespan.get() as f64;
        assert!(speedup > 8.5, "speedup {speedup} on 15 workers");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(4, SchemeKind::Uni, 8, 500, 42);
        let b = run(4, SchemeKind::Uni, 8, 500, 42);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.steals_completed, b.steals_completed);
        assert_eq!(a.events, b.events);
        let c = run(4, SchemeKind::Uni, 8, 500, 43);
        // Different seed, different steal pattern (makespan may tie, the
        // event trace almost surely not).
        assert!(c.events != a.events || c.steals_completed != a.steals_completed);
    }

    #[test]
    fn iso_scheme_runs_and_faults() {
        let s = run(4, SchemeKind::Iso, 8, 1_000, 4);
        let p = sequential_profile(&tree(8, 1_000));
        assert_eq!(s.total_tasks, p.tasks);
        assert!(s.page_faults > 0, "iso takes first-touch faults");
        let uni = run(4, SchemeKind::Uni, 8, 1_000, 4);
        assert_eq!(uni.page_faults, 0, "uni pins everything up front");
        assert!(s.reserved_va_per_worker > uni.reserved_va_per_worker);
    }

    #[test]
    fn work_conservation_under_heavy_stealing() {
        // Fine-grained tasks force many steals; the count must still be
        // exact and every byte-pattern check passes (verify on).
        let s = run(8, SchemeKind::Uni, 10, 50, 5);
        assert_eq!(s.total_tasks, 2047);
        assert!(s.steals_completed > 0);
    }

    #[test]
    fn breakdown_phases_populate() {
        let s = run(4, SchemeKind::Uni, 10, 3_000, 6);
        assert!(s.breakdown.completed > 0);
        let total = s.breakdown.total_mean();
        // A steal costs tens of thousands of cycles under the FX10 model.
        assert!(total > 20_000.0 && total < 120_000.0, "total {total}");
    }

    #[test]
    fn zero_work_tree_is_spawn_bound() {
        // BTC-like: tasks with no Work; cycles/task ≈ spawn overhead.
        let s = run(1, SchemeKind::Uni, 10, 0, 7);
        let cpt = s.cycles_per_task();
        assert!(
            cpt > 300.0 && cpt < 1_500.0,
            "cycles per task {cpt} should be near the 413-cycle spawn cost"
        );
    }

    /// The auditor re-validates every invariant after every event; these
    /// runs exist to exercise it on contended schedules in-crate even
    /// though the whole suite runs under it with `--features audit`.
    #[cfg(feature = "audit")]
    mod audit_checks {
        use super::*;

        #[test]
        fn auditor_passes_heavy_stealing_uni() {
            let s = run(8, SchemeKind::Uni, 10, 50, 21);
            assert!(
                s.steals_completed > 0,
                "need steals to exercise the auditor"
            );
        }

        #[test]
        fn auditor_passes_join_heavy_uni() {
            // Deep tree with enough work per task that joiners suspend to
            // the wait queue (exercises Waiting/heap checks).
            let s = run(4, SchemeKind::Uni, 9, 3_000, 22);
            assert!(s.steals_completed > 0);
        }

        #[test]
        fn auditor_passes_iso() {
            let s = run(4, SchemeKind::Iso, 8, 500, 23);
            assert!(s.steals_completed > 0);
        }

        /// Seed a deliberate task-table corruption mid-run and check the
        /// flight recorder leaves a Perfetto-openable trace carrying the
        /// violation message before the panic propagates.
        #[cfg(feature = "trace")]
        #[test]
        fn seeded_violation_dumps_flight_recording() {
            let mut cfg = SimConfig::tiny(4)
                .with_scheme(SchemeKind::Uni)
                .with_seed(24);
            cfg.core.verify_stack_bytes = true;
            cfg.max_events = 50_000_000;
            let mut e = Engine::new(cfg, tree(10, 500));
            e.seed_audit_violation(200);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.run()));
            let payload = outcome.expect_err("sabotaged run must trip the auditor");
            let msg = uat_core::audit::panic_message(payload.as_ref())
                .expect("audit panics carry a string message");
            assert!(msg.contains("audit"), "unexpected violation text: {msg}");

            let path = flight_path(std::thread::current().name().unwrap_or("run"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("flight trace {} unreadable: {e}", path.display()));
            let doc = uat_base::json::Json::parse(&text).expect("flight trace must be valid JSON");
            let violation = doc
                .field("otherData")
                .and_then(|o| o.field("audit_violation"))
                .and_then(|v| v.as_str())
                .expect("flight trace must carry the violation");
            assert!(violation.contains("audit"));
            assert!(
                doc.field("traceEvents").is_ok(),
                "flight trace must carry events"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Cross-checks between the tracing layer and the engine's own
    /// accumulators — the tentpole invariants of the trace subsystem.
    #[cfg(feature = "trace")]
    mod trace_checks {
        use super::*;
        use uat_trace::Bucket;

        fn engine(workers: u32, depth: u32, work: u64, seed: u64) -> Engine<BinTree> {
            let mut cfg = SimConfig::tiny(workers)
                .with_scheme(SchemeKind::Uni)
                .with_seed(seed);
            cfg.core.verify_stack_bytes = true;
            cfg.max_events = 50_000_000;
            Engine::new(cfg, tree(depth, work))
        }

        #[test]
        fn per_worker_accounts_sum_to_makespan() {
            // Holds with or without a sink installed: plain run().
            let s = engine(4, 10, 800, 11).run();
            assert_eq!(s.per_worker.len(), 4);
            for ws in &s.per_worker {
                assert_eq!(
                    ws.account.total(),
                    s.makespan,
                    "worker {} account does not tile the makespan",
                    ws.worker
                );
            }
            let attempts: u64 = s.per_worker.iter().map(|w| w.steal_attempts).sum();
            let completed: u64 = s.per_worker.iter().map(|w| w.steals_completed).sum();
            let tasks: u64 = s.per_worker.iter().map(|w| w.tasks_run).sum();
            assert_eq!(attempts, s.steal_attempts);
            assert_eq!(completed, s.steals_completed);
            // `tasks_run` counts activations: every spawned child (the
            // root is installed, not spawned) plus every stolen
            // continuation resumed on the thief.
            assert_eq!(tasks, s.total_tasks - 1 + s.steals_completed);
            assert_eq!(s.task_run_length.count, s.total_tasks);
            // Attempts still in flight at the makespan never resolve, so
            // the latency digest can trail the attempt counter slightly.
            assert!(s.steal_latency.count <= s.steal_attempts);
            assert!(s.steal_latency.count >= s.steals_completed);
            assert!(s.idle_fraction() > 0.0 && s.idle_fraction() < 1.0);
        }

        #[test]
        fn trace_steal_phase_durations_match_breakdown() {
            let (s, trace) = engine(4, 10, 2_000, 12).with_tracing(1 << 20).run_traced();
            assert!(s.breakdown.completed > 0, "need steals to cross-check");
            assert_eq!(trace.dropped(), 0, "ring must hold the whole run");
            let totals = trace.steal_phase_totals();
            for (i, p) in StealPhase::ALL.iter().enumerate() {
                let expect = s.breakdown.phase_total(*p);
                let got = totals[i] as f64;
                assert!(
                    (got - expect).abs() <= expect.abs() * 1e-9 + 0.5,
                    "{}: trace total {got} vs breakdown {expect}",
                    p.name()
                );
            }
        }

        #[test]
        fn timeline_slices_tile_every_worker_exactly() {
            let (s, trace) = engine(2, 8, 1_000, 13).with_tracing(1 << 20).run_traced();
            assert_eq!(trace.dropped(), 0);
            let mut sums = vec![0u64; s.workers as usize];
            for b in Bucket::ALL {
                for (w, total) in trace.slice_totals(b).into_iter().enumerate() {
                    sums[w] += total;
                }
            }
            for (w, sum) in sums.into_iter().enumerate() {
                assert_eq!(sum, s.makespan.get(), "worker {w} slices do not tile");
            }
        }

        #[test]
        fn chrome_export_of_a_run_is_valid_json() {
            let (s, trace) = engine(2, 6, 500, 14).run_traced();
            let text = uat_trace::chrome_trace_json(&trace);
            let doc = uat_base::Json::parse(&text).expect("valid Chrome trace JSON");
            let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
            // At least the metadata rows plus real events.
            assert!(events.len() > 1 + s.workers as usize);
            assert_eq!(
                doc.field("otherData")
                    .unwrap()
                    .field("makespan_cycles")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                s.makespan.get()
            );
        }

        #[test]
        fn untraced_and_traced_runs_agree_on_measurements() {
            let a = engine(4, 9, 700, 15).run();
            let (b, _) = engine(4, 9, 700, 15).run_traced();
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.events, b.events);
            assert_eq!(a.steals_completed, b.steals_completed);
        }

        #[test]
        fn happens_before_dag_of_a_real_run_checks_out() {
            let (s, trace) = engine(4, 10, 2_000, 12).with_tracing(1 << 20).run_traced();
            assert!(s.steals_completed > 0, "need steals for the edge checks");
            let dag = uat_trace::Dag::build(&trace).expect("traced run must yield a DAG");
            dag.check_acyclic().unwrap();
            // Every completed steal contributes exactly one steal edge;
            // joins that parked a parent contribute join edges.
            assert_eq!(
                dag.edge_count(uat_trace::profile::EdgeKind::Steal) as u64,
                s.steals_completed
            );
            assert!(dag.edge_count(uat_trace::profile::EdgeKind::Join) > 0);
            let cp = uat_trace::critical_path(&dag);
            // The tentpole invariant: the path tiles [0, makespan], so
            // its total and its bucket attribution equal the makespan
            // exactly — no residue, no double counting.
            assert_eq!(cp.total, s.makespan);
            assert_eq!(cp.account.total(), s.makespan);
            assert!(
                cp.steal_edges + cp.join_edges > 0,
                "4 workers must interact"
            );
            // A do-nothing what-if reproduces the schedule exactly.
            for class in uat_trace::CostClass::ALL {
                assert_eq!(uat_trace::profile::predict(&dag, class, 1.0), s.makespan);
            }
        }

        #[test]
        fn dag_refuses_a_truncated_ring() {
            let (_, trace) = engine(4, 10, 1_000, 16).with_tracing(64).run_traced();
            assert!(trace.dropped() > 0, "tiny ring must overflow");
            match uat_trace::Dag::build(&trace) {
                Err(uat_trace::ProfileError::DroppedEvents { .. }) => {}
                other => panic!(
                    "expected DroppedEvents refusal, got {:?}",
                    other.map(|_| ())
                ),
            }
        }
    }
}
