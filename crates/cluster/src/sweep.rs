//! Scaling sweeps — the Figure 11 harness.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::RunStats;
use crate::workload::Workload;
use uat_base::Topology;

/// One point of a scaling curve.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Compute workers at this point.
    pub workers: u32,
    /// Full run measurements.
    pub stats: RunStats,
    /// Parallel efficiency relative to the sweep's first (smallest)
    /// point, as the paper reports efficiency relative to 480 cores.
    pub efficiency: f64,
}

/// Run `workload` at each node count (FX10 shape: 15 workers/node) and
/// report throughput + efficiency relative to the first point.
///
/// Points run concurrently on the harness pool sized by
/// [`sweep_threads`](crate::parallel::sweep_threads) (`UAT_SWEEP_THREADS`
/// overrides). Each run is an independent simulation seeded from its own
/// config, so the returned points are bit-identical at any thread count;
/// see [`crate::parallel`] for the argument and `tests/determinism.rs`
/// for the proof.
pub fn sweep<W, F>(base: &SimConfig, node_counts: &[u32], make_workload: F) -> Vec<ScalePoint>
where
    W: Workload + Send,
    F: Fn() -> W + Sync,
{
    sweep_with_threads(
        base,
        node_counts,
        crate::parallel::sweep_threads(),
        make_workload,
    )
}

/// [`sweep`] with an explicit harness thread count (1 = serial on the
/// calling thread).
pub fn sweep_with_threads<W, F>(
    base: &SimConfig,
    node_counts: &[u32],
    threads: usize,
    make_workload: F,
) -> Vec<ScalePoint>
where
    W: Workload + Send,
    F: Fn() -> W + Sync,
{
    let runs = crate::parallel::run_indexed(node_counts.len(), threads, |i| {
        let mut cfg = base.clone();
        cfg.topo = Topology::new(node_counts[i], base.topo.workers_per_node);
        Engine::new(cfg, make_workload()).run()
    });
    let mut points: Vec<ScalePoint> = Vec::with_capacity(runs.len());
    for stats in runs {
        let efficiency = match points.first() {
            Some(first) => stats.efficiency_vs(&first.stats),
            None => 1.0,
        };
        points.push(ScalePoint {
            workers: stats.workers,
            stats,
            efficiency,
        });
    }
    points
}

/// Render a sweep as the throughput table the Figure 11 harness prints.
pub fn render(points: &[ScalePoint], unit: &str) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "{:>8} {:>16} {:>12} {:>10} {:>10}",
        "cores",
        format!("{unit}/s"),
        "time(s)",
        "steals",
        "efficiency"
    )
    .unwrap();
    for p in points {
        writeln!(
            s,
            "{:>8} {:>16.3e} {:>12.4} {:>10} {:>9.1}%",
            p.workers,
            p.stats.throughput(),
            p.stats.seconds(),
            p.stats.steals_completed,
            100.0 * p.efficiency
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testutil::BinTree;

    #[test]
    fn sweep_reports_relative_efficiency() {
        let mut base = SimConfig::fx10(1);
        base.topo = Topology::new(1, 4);
        base.core.verify_stack_bytes = false;
        let points = sweep(&base, &[1, 2], || BinTree {
            depth: 12,
            work: 1_500,
            frame: 256,
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 4);
        assert_eq!(points[1].workers, 8);
        assert!((points[0].efficiency - 1.0).abs() < 1e-12);
        // A 4095-task tree with real work scales decently to 8 workers.
        assert!(
            points[1].efficiency > 0.7,
            "efficiency {}",
            points[1].efficiency
        );
        let table = render(&points, "tasks");
        assert!(table.contains("efficiency"));
        assert!(table.lines().count() >= 3);
    }
}
