//! Sim-engine registry wiring: the simulator's half of the live-metrics
//! layer.
//!
//! The engine already measures everything the paper's figures need
//! ([`RunStats`](crate::metrics::RunStats)); this module additionally
//! streams the scheduler-health subset into a caller-supplied
//! [`uat_metrics::Registry`] under the *same metric names the native
//! runtime uses* ([`uat_metrics::names`]), so one exporter / dashboard
//! reads both backends interchangeably and the differential harness can
//! compare them field by field.
//!
//! Recording sites are the engine's steal results (success/failure
//! counters plus the tail-latency histogram, in simulated cycles) and
//! task completions (task counter plus run-length histogram). Handles
//! into the registry are resolved once at attach time; per-event cost is
//! a relaxed add on a per-worker cache-line shard plus a histogram
//! bucket add (the sim engine is single-threaded anyway).
//!
//! With the `metrics` cargo feature off this compiles to empty
//! `#[inline(always)]` stubs and `uat-metrics` is not linked.

#[cfg(feature = "metrics")]
mod real {
    use std::sync::Arc;
    use uat_base::Cycles;
    use uat_metrics::{names, Counter, LogHistogram, Registry};

    /// Pre-resolved registry handles for one engine run; inert (all
    /// methods no-ops) when no registry was attached.
    #[derive(Default)]
    pub struct SimMetrics(Option<Box<Handles>>);

    struct Handles {
        steals_completed: Arc<Counter>,
        steals_failed: Arc<Counter>,
        tasks: Arc<Counter>,
        steal_latency: Arc<LogHistogram>,
        task_run: Arc<LogHistogram>,
        /// Birth stamps of live tasks, for the run-length histogram —
        /// kept here (not in the trace layer) so metrics work with the
        /// `trace` feature off. Indexed by the task id's slab slot (its
        /// low 32 bits): slots are dense and bounded by peak live tasks,
        /// and a slot's begin always precedes its end within one
        /// generation, so a plain `Vec` replaces a hash map on the
        /// per-task hot path.
        born: Vec<Cycles>,
    }

    impl SimMetrics {
        /// Attach `registry` (built for at least `workers` workers) and
        /// resolve the handles the hot path records through.
        pub fn attach(registry: &Arc<Registry>, workers: usize) -> Self {
            assert!(
                registry.workers() >= workers,
                "registry built for {} workers, engine has {}",
                registry.workers(),
                workers
            );
            SimMetrics(Some(Box::new(Handles {
                steals_completed: registry.counter(
                    names::STEALS_COMPLETED,
                    "Steal attempts that took an entry and resumed the stolen thread",
                ),
                steals_failed: registry.counter(
                    names::STEALS_FAILED,
                    "Steal attempts that aborted (victim empty, lock busy, or raced)",
                ),
                tasks: registry.counter(names::TASKS, "Tasks run to completion"),
                steal_latency: registry.histogram(
                    names::STEAL_LATENCY,
                    "End-to-end steal-attempt latency in simulated cycles",
                ),
                task_run: registry.histogram(
                    names::TASK_RUN,
                    "Task run length in simulated cycles, begin to completion",
                ),
                born: Vec::new(),
            })))
        }

        /// A steal attempt by worker `w` resolved: bump the outcome
        /// counter and record the end-to-end attempt latency.
        #[inline]
        pub fn on_steal_result(&self, w: usize, ok: bool, latency: Cycles) {
            let Some(h) = self.0.as_deref() else { return };
            if ok {
                h.steals_completed.inc(w);
            } else {
                h.steals_failed.inc(w);
            }
            h.steal_latency.record(latency.get());
        }

        /// Task `task` began at simulated time `t`.
        #[inline]
        pub fn on_task_begin(&mut self, task: u64, t: Cycles) {
            let Some(h) = self.0.as_deref_mut() else {
                return;
            };
            let slot = (task & u32::MAX as u64) as usize;
            if slot >= h.born.len() {
                h.born.resize(slot + 1, Cycles::ZERO);
            }
            h.born[slot] = t;
        }

        /// Task `task` finished on worker `w` at simulated time `t`.
        #[inline]
        pub fn on_task_end(&mut self, w: usize, task: u64, t: Cycles) {
            let Some(h) = self.0.as_deref_mut() else {
                return;
            };
            h.tasks.inc(w);
            let slot = (task & u32::MAX as u64) as usize;
            let born = h.born.get(slot).copied().unwrap_or(Cycles::ZERO);
            h.task_run.record(t.since(born).get());
        }
    }
}

#[cfg(feature = "metrics")]
pub use real::SimMetrics;

#[cfg(not(feature = "metrics"))]
mod stub {
    #![allow(missing_docs)]
    use uat_base::Cycles;

    /// Zero-cost stand-in when the `metrics` feature is off.
    #[derive(Default)]
    pub struct SimMetrics;

    impl SimMetrics {
        #[inline(always)]
        pub fn on_steal_result(&self, _w: usize, _ok: bool, _latency: Cycles) {}
        #[inline(always)]
        pub fn on_task_begin(&mut self, _task: u64, _t: Cycles) {}
        #[inline(always)]
        pub fn on_task_end(&mut self, _w: usize, _task: u64, _t: Cycles) {}
    }
}

#[cfg(not(feature = "metrics"))]
pub use stub::SimMetrics;
