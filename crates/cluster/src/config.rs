//! Simulation configuration.

use serde::{Deserialize, Serialize};
use uat_base::{CostModel, Topology};
use uat_core::{CoreConfig, SchemeKind};

/// Everything a simulated run needs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine shape (nodes × workers per node).
    pub topo: Topology,
    /// Calibrated cycle costs.
    pub cost: CostModel,
    /// Per-worker memory layout.
    pub core: CoreConfig,
    /// Thread-management scheme under test.
    pub scheme: SchemeKind,
    /// Root RNG seed (victim selection; workloads carry their own seeds).
    pub seed: u64,
    /// Extra idle delay after a failed steal, multiplied by consecutive
    /// failures up to [`idle_backoff_cap`](Self::idle_backoff_cap) — a
    /// simulator pragmatic so fully idle machines don't generate events
    /// at line rate (the paper does not specify a retry policy).
    pub idle_backoff: u64,
    /// Cap on the backoff multiplier.
    pub idle_backoff_cap: u32,
    /// Safety valve: abort if the event count exceeds this (0 = off).
    pub max_events: u64,
    /// Ablation: the crude scheme of Section 5.1 — every task switch
    /// swaps the previous task out of and the next task into the
    /// uni-address region (two stack copies per spawn/return cycle),
    /// instead of the Figure 4 optimized creation.
    pub crude_switch: bool,
}

impl SimConfig {
    /// FX10-profile machine of `nodes` nodes × 15 compute workers.
    pub fn fx10(nodes: u32) -> Self {
        SimConfig {
            topo: Topology::fx10(nodes),
            cost: CostModel::fx10(),
            core: CoreConfig::default(),
            scheme: SchemeKind::Uni,
            seed: 0x5EED,
            idle_backoff: 2_000,
            idle_backoff_cap: 16,
            max_events: 0,
            crude_switch: false,
        }
    }

    /// A tiny machine for tests: `workers` workers on one node.
    pub fn tiny(workers: u32) -> Self {
        SimConfig {
            topo: Topology::new(1, workers),
            ..Self::fx10(1)
        }
    }

    /// Switch the thread-management scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Switch the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx10_shape() {
        let c = SimConfig::fx10(256);
        assert_eq!(c.topo.total_workers(), 3840);
        assert_eq!(c.scheme, SchemeKind::Uni);
    }

    #[test]
    fn builders() {
        let c = SimConfig::tiny(4)
            .with_scheme(SchemeKind::Iso)
            .with_seed(99);
        assert_eq!(c.topo.total_workers(), 4);
        assert_eq!(c.scheme, SchemeKind::Iso);
        assert_eq!(c.seed, 99);
    }
}
