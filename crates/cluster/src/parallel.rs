//! Deterministic parallel run harness.
//!
//! Simulation runs are pure functions of their `(SimConfig, Workload)`
//! inputs — each [`Engine`](crate::engine::Engine) owns its RNG (seeded
//! from the config) and all of its state, so independent runs share
//! nothing. That makes a fleet of runs embarrassingly parallel *and*
//! trivially deterministic: results depend only on each run's inputs,
//! never on which OS thread executed it or in what order runs finished.
//!
//! [`run_indexed`] is the primitive: it executes `job(0..n)` on a scoped
//! thread pool and returns the results **in index order**. Callers hand
//! out per-run seeds/configs by index, so the output is bit-identical at
//! any thread count — including 1, which is the serial baseline the
//! determinism tests compare against.
//!
//! Thread-count policy lives in [`sweep_threads`]: the `UAT_SWEEP_THREADS`
//! environment variable wins, otherwise the host's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of harness threads to use: `UAT_SWEEP_THREADS` if set to a
/// positive integer, else [`std::thread::available_parallelism`].
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("UAT_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `job(i)` for every `i in 0..n` on up to `threads` scoped threads
/// and return the results in index order.
///
/// Work is claimed from a shared atomic counter (dynamic scheduling, so
/// one long run does not straggle a whole stripe), but each result lands
/// in its own slot — the output `Vec` is a pure function of `job`, not of
/// the schedule. `threads <= 1` (or `n <= 1`) degrades to a plain serial
/// loop on the calling thread with no pool at all.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let got = run_indexed(17, threads, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let got: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn oversubscribed_pool_is_clamped() {
        // More threads than jobs must not deadlock or drop results.
        let got = run_indexed(3, 64, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn env_override_wins() {
        // Serialized via the env var itself being process-global; keep the
        // window tiny and restore.
        std::env::set_var("UAT_SWEEP_THREADS", "3");
        assert_eq!(sweep_threads(), 3);
        std::env::remove_var("UAT_SWEEP_THREADS");
        assert!(sweep_threads() >= 1);
    }
}
