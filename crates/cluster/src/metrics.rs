//! Run-level metrics: what the paper's tables and figures are made of.

use serde::{Deserialize, Serialize};
use uat_base::Cycles;
use uat_core::{SchemeKind, StealBreakdown};
use uat_rdma::FabricStats;

/// Everything measured in one simulated run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunStats {
    /// Workload name.
    pub workload: String,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Total compute workers.
    pub workers: u32,
    /// Clock frequency used for time conversions.
    pub clock_hz: f64,
    /// Simulated wall time from start to root completion.
    pub makespan: Cycles,
    /// Tasks executed (Table 4's "total tasks").
    pub total_tasks: u64,
    /// Reported workload units (= tasks for BTC; tree nodes for UTS and
    /// NQueens, whose loop-splitting helper tasks do not count).
    pub total_units: u64,
    /// Cycles of `Work` actions executed.
    pub total_work_cycles: u64,
    /// Peak simultaneous live tasks.
    pub peak_live_tasks: u64,
    /// Successful steals.
    pub steals_completed: u64,
    /// Steal attempts (including aborts).
    pub steal_attempts: u64,
    /// Per-phase steal timing (Figure 10).
    pub breakdown: StealBreakdown,
    /// Max over workers of peak stack bytes (Table 4's "stack usage").
    pub peak_stack_usage: u64,
    /// Max over workers of reserved virtual address space.
    pub reserved_va_per_worker: u64,
    /// Max over workers of pinned bytes.
    pub pinned_per_worker: u64,
    /// Total page faults across all workers (iso's 21K-cycle events).
    pub page_faults: u64,
    /// Total bytes committed across all address spaces.
    pub committed_total: u64,
    /// Interconnect operation counters.
    pub fabric: FabricStats,
    /// Discrete events processed (simulator diagnostics).
    pub events: u64,
}

impl RunStats {
    /// Simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.makespan.as_secs(self.clock_hz)
    }

    /// Units per simulated second — the y-axis of Figure 11 (tasks/s for
    /// BTC, nodes/s for UTS and NQueens).
    pub fn throughput(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            return 0.0;
        }
        self.total_units as f64 / self.seconds()
    }

    /// Parallel efficiency of this run relative to a reference run of the
    /// same workload on fewer workers: ratio of per-worker throughputs
    /// (the paper's "efficiency relative to 480 cores").
    pub fn efficiency_vs(&self, reference: &RunStats) -> f64 {
        let here = self.throughput() / self.workers as f64;
        let there = reference.throughput() / reference.workers as f64;
        if there == 0.0 {
            0.0
        } else {
            here / there
        }
    }

    /// Cycles per task — BTC's figure of merit (≈ spawn overhead when
    /// tasks carry no work).
    pub fn cycles_per_task(&self) -> f64 {
        if self.total_tasks == 0 {
            return 0.0;
        }
        (self.makespan.get() as f64 * self.workers as f64) / self.total_tasks as f64
    }

    /// One-line summary for harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} {:?} w={:<5} tasks={:<12} time={:>10.4}s thr={:>12.0}/s steals={:<8} stack={}B",
            self.workload,
            self.scheme,
            self.workers,
            self.total_tasks,
            self.seconds(),
            self.throughput(),
            self.steals_completed,
            self.peak_stack_usage,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(workers: u32, tasks: u64, makespan: u64) -> RunStats {
        RunStats {
            workload: "t".into(),
            scheme: SchemeKind::Uni,
            workers,
            clock_hz: 1e9,
            makespan: Cycles(makespan),
            total_tasks: tasks,
            total_units: tasks,
            total_work_cycles: 0,
            peak_live_tasks: 0,
            steals_completed: 0,
            steal_attempts: 0,
            breakdown: StealBreakdown::new(),
            peak_stack_usage: 0,
            reserved_va_per_worker: 0,
            pinned_per_worker: 0,
            page_faults: 0,
            committed_total: 0,
            fabric: FabricStats::default(),
            events: 0,
        }
    }

    #[test]
    fn throughput_and_seconds() {
        let s = stats(4, 1_000_000, 1_000_000_000);
        assert!((s.seconds() - 1.0).abs() < 1e-12);
        assert!((s.throughput() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn perfect_scaling_is_efficiency_one() {
        let base = stats(4, 1_000_000, 1_000_000_000);
        let big = stats(8, 2_000_000, 1_000_000_000);
        assert!((big.efficiency_vs(&base) - 1.0).abs() < 1e-12);
        let worse = stats(8, 1_600_000, 1_000_000_000);
        assert!((worse.efficiency_vs(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cycles_per_task() {
        let s = stats(2, 1000, 500_000);
        assert!((s.cycles_per_task() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let s = stats(1, 0, 0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.cycles_per_task(), 0.0);
    }
}
