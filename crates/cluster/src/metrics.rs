//! Run-level metrics: what the paper's tables and figures are made of.

use serde::{Deserialize, Serialize};
use uat_base::json::{FromJson, Json, JsonError, ToJson};
use uat_base::{Cycles, HistSummary};
use uat_core::{SchemeKind, StealBreakdown};
use uat_rdma::FabricStats;
use uat_trace::{Bucket, CriticalPathSummary, TimeAccount};

/// One worker's slice of a run, from the tracing layer. Populated only
/// when the `trace` feature is enabled (the default); otherwise
/// `RunStats::per_worker` is simply empty.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerSummary {
    /// Worker id.
    pub worker: u32,
    /// Tasks this worker executed (spawned-and-ran plus stolen).
    pub tasks_run: u64,
    /// Steal attempts this worker initiated.
    pub steal_attempts: u64,
    /// Steal attempts that completed with a stolen thread resumed.
    pub steals_completed: u64,
    /// Events evicted from this worker's trace ring because it filled
    /// up (0 when no event sink was installed). A nonzero count means
    /// the exported trace is truncated — and the causal profiler will
    /// refuse to build a DAG from it.
    pub dropped: u64,
    /// Every simulated cycle of this worker, charged by bucket; totals
    /// the run's makespan exactly.
    pub account: TimeAccount,
    /// Distribution of steal-attempt latency (issue to abort/resume).
    pub steal_latency: HistSummary,
    /// Distribution of task run lengths (spawn to completion).
    pub run_length: HistSummary,
}

impl ToJson for WorkerSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("worker", Json::UInt(self.worker as u64)),
            ("tasks_run", Json::UInt(self.tasks_run)),
            ("steal_attempts", Json::UInt(self.steal_attempts)),
            ("steals_completed", Json::UInt(self.steals_completed)),
            ("dropped", Json::UInt(self.dropped)),
            ("account", self.account.to_json()),
            ("steal_latency", self.steal_latency.to_json()),
            ("run_length", self.run_length.to_json()),
        ])
    }
}

impl FromJson for WorkerSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(WorkerSummary {
            worker: v.field("worker")?.as_u64()? as u32,
            tasks_run: v.field("tasks_run")?.as_u64()?,
            steal_attempts: v.field("steal_attempts")?.as_u64()?,
            steals_completed: v.field("steals_completed")?.as_u64()?,
            dropped: v.field("dropped")?.as_u64()?,
            account: TimeAccount::from_json(v.field("account")?)?,
            steal_latency: HistSummary::from_json(v.field("steal_latency")?)?,
            run_length: HistSummary::from_json(v.field("run_length")?)?,
        })
    }
}

/// Everything measured in one simulated run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunStats {
    /// Workload name.
    pub workload: String,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Total compute workers.
    pub workers: u32,
    /// Clock frequency used for time conversions.
    pub clock_hz: f64,
    /// Simulated wall time from start to root completion.
    pub makespan: Cycles,
    /// Tasks executed (Table 4's "total tasks").
    pub total_tasks: u64,
    /// Reported workload units (= tasks for BTC; tree nodes for UTS and
    /// NQueens, whose loop-splitting helper tasks do not count).
    pub total_units: u64,
    /// Cycles of `Work` actions executed.
    pub total_work_cycles: u64,
    /// Peak simultaneous live tasks.
    pub peak_live_tasks: u64,
    /// Successful steals.
    pub steals_completed: u64,
    /// Steal attempts (including aborts).
    pub steal_attempts: u64,
    /// Per-phase steal timing (Figure 10).
    pub breakdown: StealBreakdown,
    /// Max over workers of peak stack bytes (Table 4's "stack usage").
    pub peak_stack_usage: u64,
    /// Max over workers of reserved virtual address space.
    pub reserved_va_per_worker: u64,
    /// Max over workers of pinned bytes.
    pub pinned_per_worker: u64,
    /// Total page faults across all workers (iso's 21K-cycle events).
    pub page_faults: u64,
    /// Total bytes committed across all address spaces.
    pub committed_total: u64,
    /// Interconnect operation counters.
    pub fabric: FabricStats,
    /// Discrete events processed (simulator diagnostics).
    pub events: u64,
    /// Per-worker timeline accounts and histograms (empty when the
    /// `trace` feature is disabled).
    pub per_worker: Vec<WorkerSummary>,
    /// Machine-wide steal-attempt latency digest.
    pub steal_latency: HistSummary,
    /// Machine-wide task run-length digest.
    pub task_run_length: HistSummary,
    /// Critical-path digest from the causal profiler (`None` unless the
    /// run was profiled — the engine itself never fills this in; the
    /// `uat_profile` / bench tooling does, after building the
    /// happens-before DAG from the run's trace).
    pub critical_path: Option<CriticalPathSummary>,
}

impl RunStats {
    /// Simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.makespan.as_secs(self.clock_hz)
    }

    /// Units per simulated second — the y-axis of Figure 11 (tasks/s for
    /// BTC, nodes/s for UTS and NQueens).
    pub fn throughput(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            return 0.0;
        }
        self.total_units as f64 / self.seconds()
    }

    /// Parallel efficiency of this run relative to a reference run of the
    /// same workload on fewer workers: ratio of per-worker throughputs
    /// (the paper's "efficiency relative to 480 cores").
    pub fn efficiency_vs(&self, reference: &RunStats) -> f64 {
        let here = self.throughput() / self.workers as f64;
        let there = reference.throughput() / reference.workers as f64;
        if there == 0.0 {
            0.0
        } else {
            here / there
        }
    }

    /// Cycles per task — BTC's figure of merit (≈ spawn overhead when
    /// tasks carry no work).
    pub fn cycles_per_task(&self) -> f64 {
        if self.total_tasks == 0 {
            return 0.0;
        }
        (self.makespan.get() as f64 * self.workers as f64) / self.total_tasks as f64
    }

    /// Fraction of steal attempts that completed with a stolen thread.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            return 0.0;
        }
        self.steals_completed as f64 / self.steal_attempts as f64
    }

    /// Machine-wide fraction of worker time spent idle, from the
    /// per-worker accounts (0 when tracing was compiled out).
    pub fn idle_fraction(&self) -> f64 {
        let total: u64 = self
            .per_worker
            .iter()
            .map(|w| w.account.total().get())
            .sum();
        if total == 0 {
            return 0.0;
        }
        let idle: u64 = self
            .per_worker
            .iter()
            .map(|w| w.account.get(Bucket::Idle).get())
            .sum();
        idle as f64 / total as f64
    }

    /// Total events evicted from full trace rings across workers (0 when
    /// no event sink was installed): a nonzero value flags a truncated
    /// trace.
    pub fn dropped_events(&self) -> u64 {
        self.per_worker.iter().map(|w| w.dropped).sum()
    }

    /// One-line summary for harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} {:?} w={:<5} tasks={:<12} time={:>10.4}s thr={:>12.0}/s steals={:<8} ok={:>5.1}% idle={:>5.1}% stack={}B drop={}",
            self.workload,
            self.scheme,
            self.workers,
            self.total_tasks,
            self.seconds(),
            self.throughput(),
            self.steals_completed,
            100.0 * self.steal_success_rate(),
            100.0 * self.idle_fraction(),
            self.peak_stack_usage,
            self.dropped_events(),
        )
    }
}

impl ToJson for RunStats {
    fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("workload", Json::str(&self.workload)),
            ("scheme", self.scheme.to_json()),
            ("workers", Json::UInt(self.workers as u64)),
            ("clock_hz", Json::Num(self.clock_hz)),
            ("makespan_cycles", Json::UInt(self.makespan.get())),
            ("total_tasks", Json::UInt(self.total_tasks)),
            ("total_units", Json::UInt(self.total_units)),
            ("total_work_cycles", Json::UInt(self.total_work_cycles)),
            ("peak_live_tasks", Json::UInt(self.peak_live_tasks)),
            ("steals_completed", Json::UInt(self.steals_completed)),
            ("steal_attempts", Json::UInt(self.steal_attempts)),
            ("breakdown", self.breakdown.to_json()),
            ("peak_stack_usage", Json::UInt(self.peak_stack_usage)),
            (
                "reserved_va_per_worker",
                Json::UInt(self.reserved_va_per_worker),
            ),
            ("pinned_per_worker", Json::UInt(self.pinned_per_worker)),
            ("page_faults", Json::UInt(self.page_faults)),
            ("committed_total", Json::UInt(self.committed_total)),
            ("fabric", self.fabric.to_json()),
            ("events", Json::UInt(self.events)),
            ("per_worker", self.per_worker.to_json()),
            ("steal_latency", self.steal_latency.to_json()),
            ("task_run_length", self.task_run_length.to_json()),
        ]);
        // Omitted entirely for unprofiled runs, so pre-profiler
        // artifacts and fresh ones share a schema.
        if let (Json::Obj(members), Some(cp)) = (&mut doc, &self.critical_path) {
            members.push(("critical_path".into(), cp.to_json()));
        }
        doc
    }
}

impl FromJson for RunStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunStats {
            workload: String::from_json(v.field("workload")?)?,
            scheme: SchemeKind::from_json(v.field("scheme")?)?,
            workers: v.field("workers")?.as_u64()? as u32,
            clock_hz: v.field("clock_hz")?.as_f64()?,
            makespan: Cycles(v.field("makespan_cycles")?.as_u64()?),
            total_tasks: v.field("total_tasks")?.as_u64()?,
            total_units: v.field("total_units")?.as_u64()?,
            total_work_cycles: v.field("total_work_cycles")?.as_u64()?,
            peak_live_tasks: v.field("peak_live_tasks")?.as_u64()?,
            steals_completed: v.field("steals_completed")?.as_u64()?,
            steal_attempts: v.field("steal_attempts")?.as_u64()?,
            breakdown: StealBreakdown::from_json(v.field("breakdown")?)?,
            peak_stack_usage: v.field("peak_stack_usage")?.as_u64()?,
            reserved_va_per_worker: v.field("reserved_va_per_worker")?.as_u64()?,
            pinned_per_worker: v.field("pinned_per_worker")?.as_u64()?,
            page_faults: v.field("page_faults")?.as_u64()?,
            committed_total: v.field("committed_total")?.as_u64()?,
            fabric: FabricStats::from_json(v.field("fabric")?)?,
            events: v.field("events")?.as_u64()?,
            per_worker: Vec::from_json(v.field("per_worker")?)?,
            steal_latency: HistSummary::from_json(v.field("steal_latency")?)?,
            task_run_length: HistSummary::from_json(v.field("task_run_length")?)?,
            critical_path: v
                .get("critical_path")
                .map(CriticalPathSummary::from_json)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(workers: u32, tasks: u64, makespan: u64) -> RunStats {
        RunStats {
            workload: "t".into(),
            scheme: SchemeKind::Uni,
            workers,
            clock_hz: 1e9,
            makespan: Cycles(makespan),
            total_tasks: tasks,
            total_units: tasks,
            total_work_cycles: 0,
            peak_live_tasks: 0,
            steals_completed: 0,
            steal_attempts: 0,
            breakdown: StealBreakdown::new(),
            peak_stack_usage: 0,
            reserved_va_per_worker: 0,
            pinned_per_worker: 0,
            page_faults: 0,
            committed_total: 0,
            fabric: FabricStats::default(),
            events: 0,
            per_worker: Vec::new(),
            steal_latency: HistSummary::default(),
            task_run_length: HistSummary::default(),
            critical_path: None,
        }
    }

    #[test]
    fn throughput_and_seconds() {
        let s = stats(4, 1_000_000, 1_000_000_000);
        assert!((s.seconds() - 1.0).abs() < 1e-12);
        assert!((s.throughput() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn perfect_scaling_is_efficiency_one() {
        let base = stats(4, 1_000_000, 1_000_000_000);
        let big = stats(8, 2_000_000, 1_000_000_000);
        assert!((big.efficiency_vs(&base) - 1.0).abs() < 1e-12);
        let worse = stats(8, 1_600_000, 1_000_000_000);
        assert!((worse.efficiency_vs(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cycles_per_task() {
        let s = stats(2, 1000, 500_000);
        assert!((s.cycles_per_task() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let s = stats(1, 0, 0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.cycles_per_task(), 0.0);
        assert_eq!(s.steal_success_rate(), 0.0);
        assert_eq!(s.idle_fraction(), 0.0);
    }

    fn worker_summary(worker: u32, work: u64, idle: u64) -> WorkerSummary {
        let mut account = TimeAccount::new();
        account.charge(Bucket::Work, Cycles(work));
        account.charge(Bucket::Idle, Cycles(idle));
        WorkerSummary {
            worker,
            tasks_run: 3,
            steal_attempts: 5,
            steals_completed: 2,
            dropped: 0,
            account,
            steal_latency: HistSummary {
                count: 5,
                p50: 31,
                p90: 63,
                p99: 63,
                max: 63,
            },
            run_length: HistSummary {
                count: 3,
                p50: 127,
                p90: 255,
                p99: 255,
                max: 255,
            },
        }
    }

    #[test]
    fn steal_success_and_idle_fraction() {
        let mut s = stats(2, 100, 1_000);
        s.steal_attempts = 10;
        s.steals_completed = 4;
        s.per_worker = vec![worker_summary(0, 900, 100), worker_summary(1, 500, 500)];
        assert!((s.steal_success_rate() - 0.4).abs() < 1e-12);
        assert!((s.idle_fraction() - 600.0 / 2_000.0).abs() < 1e-12);
    }

    /// Pins the exact `summary_line` layout: harness output is parsed by
    /// eye and by scripts, so a format change must be deliberate.
    /// (Deliberately re-pinned when the trailing `drop=` field was added
    /// to surface ring truncation.)
    #[test]
    fn summary_line_format_is_pinned() {
        let mut s = stats(4, 1_000_000, 1_000_000_000);
        s.steal_attempts = 10;
        s.steals_completed = 5;
        assert_eq!(
            s.summary_line(),
            "t                        Uni w=4     tasks=1000000      time=    1.0000s \
             thr=     1000000/s steals=5        ok= 50.0% idle=  0.0% stack=0B drop=0"
        );
        s.per_worker = vec![worker_summary(0, 1, 1)];
        s.per_worker[0].dropped = 17;
        assert!(s.summary_line().ends_with("drop=17"));
    }

    #[test]
    fn run_stats_json_round_trip() {
        let mut s = stats(2, 1_000, 500_000);
        s.steal_attempts = 7;
        s.steals_completed = 3;
        s.page_faults = 11;
        s.per_worker = vec![
            worker_summary(0, 400_000, 100_000),
            worker_summary(1, 1, 499_999),
        ];
        s.steal_latency = HistSummary {
            count: 7,
            p50: 15,
            p90: 31,
            p99: 31,
            max: 31,
        };
        s.task_run_length = HistSummary {
            count: 1_000,
            p50: 511,
            p90: 1_023,
            p99: 2_047,
            max: 4_095,
        };
        let text = s.to_json().to_string();
        let back = RunStats::from_json(&uat_base::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.workload, s.workload);
        assert_eq!(back.makespan, s.makespan);
        assert_eq!(back.per_worker.len(), 2);
        assert_eq!(back.per_worker[1].account, s.per_worker[1].account);
        assert_eq!(back.steal_latency, s.steal_latency);
        assert_eq!(back.task_run_length, s.task_run_length);
        // Byte-exact re-serialization: the schema has no lossy fields.
        assert_eq!(back.to_json().to_string(), text);
        assert!(back.critical_path.is_none());

        // A profiled run carries its critical-path digest through JSON.
        let mut account = TimeAccount::new();
        account.charge(Bucket::Work, Cycles(400_000));
        account.charge(Bucket::StealTransfer, Cycles(100_000));
        s.critical_path = Some(CriticalPathSummary {
            total: Cycles(500_000),
            end_worker: 1,
            segments: 9,
            steal_edges: 4,
            join_edges: 4,
            account,
        });
        let text = s.to_json().to_string();
        let back = RunStats::from_json(&uat_base::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.critical_path, s.critical_path);
        assert_eq!(back.to_json().to_string(), text);
    }
}
