//! The task table: slab-allocated task records with generation-tagged ids.
//!
//! Live tasks at any instant are O(tree depth × workers) — the classic
//! work-stealing space bound the paper leans on in Section 4 — so records
//! are recycled through a free list. Ids pack `(generation << 32) | slot`
//! so a stale id (e.g. lingering in diagnostics) can never alias a
//! recycled slot, and the id doubles as the byte-pattern seed for frame
//! verification.

use crate::workload::Action;
use uat_base::WorkerId;

/// Packed task id: `(generation << 32) | slot`.
pub type TaskId64 = u64;

/// Where a task currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskWhere {
    /// Running on a worker (bottom of its uni-address region).
    Running(WorkerId),
    /// Continuation in a worker's deque; frames live on that worker.
    InDeque(WorkerId),
    /// Suspended on a worker's wait queue.
    Waiting(WorkerId),
    /// Mid-migration between workers.
    InFlight,
}

/// One live task.
#[derive(Debug)]
pub struct Task<D> {
    /// Packed id.
    pub id: TaskId64,
    /// The task's program, materialized at spawn.
    pub program: Vec<Action<D>>,
    /// Next action index.
    pub pc: u32,
    /// Children spawned and not yet completed.
    pub outstanding: u32,
    /// Parent task id (None for the root).
    pub parent: Option<TaskId64>,
    /// Current location.
    pub at: TaskWhere,
    /// Frame size in bytes.
    pub frame_size: u64,
}

struct Slot<D> {
    generation: u32,
    task: Option<Task<D>>,
}

/// Slab of live tasks.
pub struct TaskTable<D> {
    slots: Vec<Slot<D>>,
    free: Vec<u32>,
    live: u64,
    peak_live: u64,
    total_spawned: u64,
}

impl<D> Default for TaskTable<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D> TaskTable<D> {
    /// Empty table.
    pub fn new() -> Self {
        TaskTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            total_spawned: 0,
        }
    }

    /// Insert a freshly spawned task; assigns and returns its id.
    pub fn spawn(
        &mut self,
        program: Vec<Action<D>>,
        parent: Option<TaskId64>,
        at: TaskWhere,
        frame_size: u64,
    ) -> TaskId64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    task: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        let id = ((generation as u64) << 32) | slot as u64;
        self.slots[slot as usize].task = Some(Task {
            id,
            program,
            pc: 0,
            outstanding: 0,
            parent,
            at,
            frame_size,
        });
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.total_spawned += 1;
        id
    }

    /// Access a live task.
    pub fn get(&self, id: TaskId64) -> &Task<D> {
        self.try_get(id)
            .unwrap_or_else(|| panic!("task {id:#x} is not live"))
    }

    /// Mutable access to a live task.
    pub fn get_mut(&mut self, id: TaskId64) -> &mut Task<D> {
        let slot = (id & 0xffff_ffff) as usize;
        let generation = (id >> 32) as u32;
        let s = &mut self.slots[slot];
        assert_eq!(s.generation, generation, "stale task id {id:#x}");
        s.task
            .as_mut()
            .unwrap_or_else(|| panic!("task {id:#x} freed"))
    }

    /// Access if live and current.
    pub fn try_get(&self, id: TaskId64) -> Option<&Task<D>> {
        let slot = (id & 0xffff_ffff) as usize;
        let generation = (id >> 32) as u32;
        let s = self.slots.get(slot)?;
        if s.generation != generation {
            return None;
        }
        s.task.as_ref()
    }

    /// Remove a completed task, recycling its slot.
    pub fn free(&mut self, id: TaskId64) -> Task<D> {
        let slot = (id & 0xffff_ffff) as usize;
        let generation = (id >> 32) as u32;
        let s = &mut self.slots[slot];
        assert_eq!(s.generation, generation, "stale task id {id:#x}");
        let t = s
            .task
            .take()
            .unwrap_or_else(|| panic!("double free of {id:#x}"));
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        t
    }

    /// Tasks alive right now.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Peak simultaneous live tasks (the space bound).
    pub fn peak_live(&self) -> u64 {
        self.peak_live
    }

    /// Total tasks ever spawned.
    pub fn total_spawned(&self) -> u64 {
        self.total_spawned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TaskTable<u32> {
        TaskTable::new()
    }

    #[test]
    fn spawn_get_free_roundtrip() {
        let mut t = table();
        let id = t.spawn(
            vec![Action::Work(5)],
            None,
            TaskWhere::Running(WorkerId(0)),
            100,
        );
        assert_eq!(t.live(), 1);
        assert_eq!(t.get(id).frame_size, 100);
        t.get_mut(id).pc = 1;
        assert_eq!(t.get(id).pc, 1);
        let rec = t.free(id);
        assert_eq!(rec.pc, 1);
        assert_eq!(t.live(), 0);
        assert_eq!(t.total_spawned(), 1);
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut t = table();
        let a = t.spawn(vec![], None, TaskWhere::InFlight, 0);
        t.free(a);
        let b = t.spawn(vec![], None, TaskWhere::InFlight, 0);
        assert_ne!(a, b, "generation differs");
        assert_eq!(a & 0xffff_ffff, b & 0xffff_ffff, "same slot reused");
        assert!(t.try_get(a).is_none(), "stale id rejected");
        assert!(t.try_get(b).is_some());
    }

    #[test]
    #[should_panic(expected = "stale task id")]
    fn stale_free_panics() {
        let mut t = table();
        let a = t.spawn(vec![], None, TaskWhere::InFlight, 0);
        t.free(a);
        t.spawn(vec![], None, TaskWhere::InFlight, 0);
        t.free(a);
    }

    #[test]
    fn peak_live_tracks() {
        let mut t = table();
        let ids: Vec<_> = (0..5)
            .map(|_| t.spawn(vec![], None, TaskWhere::InFlight, 0))
            .collect();
        for id in ids {
            t.free(id);
        }
        t.spawn(vec![], None, TaskWhere::InFlight, 0);
        assert_eq!(t.peak_live(), 5);
        assert_eq!(t.total_spawned(), 6);
    }

    #[test]
    fn parent_links() {
        let mut t = table();
        let p = t.spawn(vec![], None, TaskWhere::Running(WorkerId(1)), 10);
        let c = t.spawn(vec![], Some(p), TaskWhere::Running(WorkerId(1)), 10);
        t.get_mut(p).outstanding += 1;
        assert_eq!(t.get(c).parent, Some(p));
        assert_eq!(t.get(p).outstanding, 1);
    }
}
