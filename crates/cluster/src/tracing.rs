//! Engine-side tracing state: the glue between the event loop and
//! `uat-trace`.
//!
//! [`TraceCtl`] owns everything the `trace` feature adds to a run: the
//! per-worker [`TimeAccount`]s (every simulated cycle charged to one
//! [`Bucket`]), the steal-latency and task-run-length histograms, and an
//! optional [`RingSink`] of structured events. When the feature is off a
//! field-less stub with empty `#[inline(always)]` methods takes its
//! place, so the hot path compiles to exactly the untraced engine.
//!
//! # Charging model
//!
//! The engine is a one-event-per-worker automaton: each handler performs
//! instantaneous protocol work and schedules exactly one completion via
//! `Engine::set`, which records the [`Bucket`] the upcoming span belongs
//! to. When the event fires, [`TraceCtl::charge`] attributes the span
//! `[last_fire, now)` — first to any *carry* slots registered for costs
//! embedded at the start of the span (FAA queueing, parking a blocked
//! joiner), then the remainder to the pending bucket. The final partial
//! span up to the makespan is charged by [`TraceCtl::finalize`], so each
//! worker's bucket totals sum exactly to the makespan.

use crate::metrics::WorkerSummary;
use crate::task::TaskId64;
#[cfg(feature = "trace")]
use uat_base::Histogram;
use uat_base::{Cycles, HistSummary, WorkerId};
use uat_trace::{Bucket, StealOutcome, StealPhaseId};
#[cfg(feature = "trace")]
use uat_trace::{EventKind, RingBuffer, RingSink, TraceEvent, TraceSink};

/// Tracing state for one run (real variant, `trace` feature on).
#[cfg(feature = "trace")]
pub(crate) struct TraceCtl {
    sink: Option<RingSink>,
    accounts: Vec<uat_trace::TimeAccount>,
    last_fire: Vec<Cycles>,
    pending: Vec<Bucket>,
    carry: Vec<Vec<(Bucket, Cycles)>>,
    steal_latency: Vec<Histogram>,
    run_length: Vec<Histogram>,
    attempts: Vec<u64>,
    completed: Vec<u64>,
    born: std::collections::HashMap<TaskId64, Cycles>,
    /// Next deque-publication sequence number (unique per run).
    pub_next: u64,
    /// Publication seq of each task currently sitting in a deque,
    /// consumed by the thief-side `steal_commit`.
    pub_seq: std::collections::HashMap<TaskId64, u64>,
    /// For each joining parent, the child whose completion last dropped
    /// its outstanding count to zero; consumed by `join_resume`.
    join_enabler: std::collections::HashMap<TaskId64, TaskId64>,
    /// Per-worker dropped-event counts snapshotted when the rings are
    /// taken (`collect_summaries` runs after `take_rings`).
    dropped: Vec<u64>,
}

#[cfg(feature = "trace")]
impl TraceCtl {
    pub fn new(workers: usize) -> Self {
        TraceCtl {
            sink: None,
            accounts: vec![uat_trace::TimeAccount::new(); workers],
            last_fire: vec![Cycles::ZERO; workers],
            pending: vec![Bucket::Idle; workers],
            carry: vec![Vec::new(); workers],
            steal_latency: vec![Histogram::new(); workers],
            run_length: vec![Histogram::new(); workers],
            attempts: vec![0; workers],
            completed: vec![0; workers],
            born: std::collections::HashMap::new(),
            pub_next: 0,
            pub_seq: std::collections::HashMap::new(),
            join_enabler: std::collections::HashMap::new(),
            dropped: vec![0; workers],
        }
    }

    pub fn install_sink(&mut self, workers: usize, capacity: usize) {
        self.sink = Some(RingSink::new(workers, capacity));
    }

    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    pub fn take_rings(&mut self) -> Vec<RingBuffer> {
        let rings = self
            .sink
            .take()
            .map(RingSink::into_rings)
            .unwrap_or_default();
        for (i, ring) in rings.iter().enumerate() {
            if let Some(slot) = self.dropped.get_mut(i) {
                *slot = ring.dropped();
            }
        }
        rings
    }

    /// Events evicted from worker `i`'s ring: live from the sink while
    /// it is installed, from the `take_rings` snapshot afterwards.
    fn dropped_for(&self, i: usize) -> u64 {
        match &self.sink {
            Some(sink) => sink.rings().get(i).map_or(0, RingBuffer::dropped),
            None => self.dropped.get(i).copied().unwrap_or(0),
        }
    }

    fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(ev);
        }
    }

    /// Record which bucket the span scheduled by `Engine::set` belongs to.
    pub fn set_bucket(&mut self, w: WorkerId, bucket: Bucket) {
        self.pending[w.index()] = bucket;
    }

    /// Register a cost embedded at the *start* of the span being
    /// scheduled (e.g. FAA queue wait, parking the blocked joiner); it
    /// will be split out of the span when the event fires.
    pub fn carry(&mut self, w: WorkerId, bucket: Bucket, span: Cycles) {
        if span.get() > 0 {
            self.carry[w.index()].push((bucket, span));
        }
    }

    /// Attribute `[last_fire, t)`: carries first, then the pending
    /// bucket. Called at the top of every `Engine::fire`.
    pub fn charge(&mut self, w: WorkerId, t: Cycles) {
        let i = w.index();
        let start = self.last_fire[i];
        debug_assert!(
            t >= start,
            "time went backwards for worker {w:?}: {start:?} -> {t:?}"
        );
        self.last_fire[i] = t;
        let mut span = t.since(start).get();
        let mut at = start;
        for (bucket, c) in std::mem::take(&mut self.carry[i]) {
            // Clamp: a carry can never exceed what actually elapsed.
            let c = c.get().min(span);
            if c == 0 {
                continue;
            }
            self.accounts[i].charge(bucket, Cycles(c));
            self.emit(TraceEvent::span(
                at,
                Cycles(c),
                w,
                EventKind::Slice { bucket },
            ));
            at += Cycles(c);
            span -= c;
        }
        if span > 0 {
            let bucket = self.pending[i];
            self.accounts[i].charge(bucket, Cycles(span));
            self.emit(TraceEvent::span(
                at,
                Cycles(span),
                w,
                EventKind::Slice { bucket },
            ));
        }
    }

    /// Charge every worker's tail span up to the makespan, making each
    /// account total exactly the makespan.
    pub fn finalize(&mut self, makespan: Cycles) {
        for i in 0..self.accounts.len() {
            self.charge(WorkerId(i as u32), makespan);
        }
    }

    pub fn task_begin(
        &mut self,
        w: WorkerId,
        task: TaskId64,
        at: Cycles,
        parent: Option<TaskId64>,
    ) {
        self.born.insert(task, at);
        if let Some(parent) = parent {
            self.emit(TraceEvent::instant(
                at,
                w,
                EventKind::Spawn {
                    parent,
                    child: task,
                },
            ));
        }
        self.emit(TraceEvent::instant(at, w, EventKind::TaskBegin { task }));
    }

    pub fn task_end(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        let run = self
            .born
            .remove(&task)
            .map(|b| t.since(b))
            .unwrap_or(Cycles::ZERO);
        self.run_length[w.index()].record(run.get());
        self.emit(TraceEvent::instant(t, w, EventKind::TaskEnd { task, run }));
    }

    pub fn task_suspend(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        self.emit(TraceEvent::instant(t, w, EventKind::Suspend { task }));
    }

    pub fn task_resume(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        self.emit(TraceEvent::instant(t, w, EventKind::Resume { task }));
    }

    /// A continuation entry for `task` was pushed into `w`'s own deque —
    /// the victim side of a potential steal edge. Assigns the
    /// publication its sequence number.
    pub fn deque_publish(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        // Causality bookkeeping is only consumed through the ring events;
        // skip the map traffic entirely when no rings are installed.
        if self.sink.is_none() {
            return;
        }
        self.pub_next += 1;
        let seq = self.pub_next;
        self.pub_seq.insert(task, seq);
        self.emit(TraceEvent::instant(
            t,
            w,
            EventKind::DequePublish { task, seq },
        ));
    }

    /// A stolen continuation resumed on thief `w`; pairs with the
    /// publication recorded by [`TraceCtl::deque_publish`]. (A task can
    /// only be in one deque at a time, so the latest publication is the
    /// one the thief took.)
    pub fn steal_commit(&mut self, w: WorkerId, task: TaskId64, t: Cycles) {
        if self.sink.is_none() {
            return;
        }
        if let Some(seq) = self.pub_seq.remove(&task) {
            self.emit(TraceEvent::instant(
                t,
                w,
                EventKind::StealCommit { task, seq },
            ));
        }
    }

    /// The completion of `child` on `w` dropped `parent`'s outstanding
    /// count to zero.
    pub fn join_ready(&mut self, w: WorkerId, parent: TaskId64, child: TaskId64, t: Cycles) {
        if self.sink.is_none() {
            return;
        }
        self.join_enabler.insert(parent, child);
        self.emit(TraceEvent::instant(
            t,
            w,
            EventKind::JoinReady { parent, child },
        ));
    }

    /// `parent` resumed past a join whose readiness was recorded by
    /// [`TraceCtl::join_ready`]. No-op if the parent never blocked on a
    /// recorded enabler (e.g. its children finished before it joined and
    /// the readiness was consumed by an earlier round).
    pub fn join_resume(&mut self, w: WorkerId, parent: TaskId64, t: Cycles) {
        if self.sink.is_none() {
            return;
        }
        if let Some(child) = self.join_enabler.remove(&parent) {
            self.emit(TraceEvent::instant(
                t,
                w,
                EventKind::JoinResume { parent, child },
            ));
        }
    }

    pub fn steal_attempt(&mut self, w: WorkerId) {
        self.attempts[w.index()] += 1;
    }

    /// One steal phase, with exactly the duration fed to the
    /// `StealBreakdown` accumulator — the export-side sums must match.
    pub fn steal_phase(
        &mut self,
        w: WorkerId,
        victim: WorkerId,
        phase: StealPhaseId,
        at: Cycles,
        dur: Cycles,
    ) {
        self.emit(TraceEvent::span(
            at,
            dur,
            w,
            EventKind::StealPhase { victim, phase },
        ));
    }

    pub fn steal_result(
        &mut self,
        w: WorkerId,
        victim: WorkerId,
        outcome: StealOutcome,
        t: Cycles,
        latency: Cycles,
    ) {
        if outcome == StealOutcome::Completed {
            self.completed[w.index()] += 1;
        }
        self.steal_latency[w.index()].record(latency.get());
        self.emit(TraceEvent::instant(
            t,
            w,
            EventKind::StealResult {
                victim,
                outcome,
                latency,
            },
        ));
    }

    pub fn idle_poll(&mut self, w: WorkerId, t: Cycles) {
        self.emit(TraceEvent::instant(t, w, EventKind::IdlePoll));
    }

    /// Per-worker summaries plus machine-wide latency / run-length
    /// digests, for `RunStats`.
    pub fn collect_summaries(
        &self,
        tasks_run: &[u64],
    ) -> (Vec<WorkerSummary>, HistSummary, HistSummary) {
        let mut all_latency = Histogram::new();
        let mut all_run = Histogram::new();
        let per = (0..self.accounts.len())
            .map(|i| {
                all_latency.merge(&self.steal_latency[i]);
                all_run.merge(&self.run_length[i]);
                WorkerSummary {
                    worker: i as u32,
                    tasks_run: tasks_run.get(i).copied().unwrap_or(0),
                    steal_attempts: self.attempts[i],
                    steals_completed: self.completed[i],
                    dropped: self.dropped_for(i),
                    account: self.accounts[i].clone(),
                    steal_latency: self.steal_latency[i].summary(),
                    run_length: self.run_length[i].summary(),
                }
            })
            .collect();
        (per, all_latency.summary(), all_run.summary())
    }
}

/// Zero-cost stand-in when the `trace` feature is off: every method is
/// an empty `#[inline(always)]` body, so the engine's hook sites
/// disappear entirely from the compiled hot path.
#[cfg(not(feature = "trace"))]
pub(crate) struct TraceCtl;

#[cfg(not(feature = "trace"))]
#[allow(clippy::unused_self)]
impl TraceCtl {
    #[inline(always)]
    pub fn new(_workers: usize) -> Self {
        TraceCtl
    }

    #[inline(always)]
    pub fn set_bucket(&mut self, _w: WorkerId, _bucket: Bucket) {}

    #[inline(always)]
    pub fn carry(&mut self, _w: WorkerId, _bucket: Bucket, _span: Cycles) {}

    #[inline(always)]
    pub fn charge(&mut self, _w: WorkerId, _t: Cycles) {}

    #[inline(always)]
    pub fn finalize(&mut self, _makespan: Cycles) {}

    #[inline(always)]
    pub fn task_begin(
        &mut self,
        _w: WorkerId,
        _task: TaskId64,
        _at: Cycles,
        _parent: Option<TaskId64>,
    ) {
    }

    #[inline(always)]
    pub fn task_end(&mut self, _w: WorkerId, _task: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn task_suspend(&mut self, _w: WorkerId, _task: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn task_resume(&mut self, _w: WorkerId, _task: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn deque_publish(&mut self, _w: WorkerId, _task: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn steal_commit(&mut self, _w: WorkerId, _task: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn join_ready(&mut self, _w: WorkerId, _parent: TaskId64, _child: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn join_resume(&mut self, _w: WorkerId, _parent: TaskId64, _t: Cycles) {}

    #[inline(always)]
    pub fn steal_attempt(&mut self, _w: WorkerId) {}

    #[inline(always)]
    pub fn steal_phase(
        &mut self,
        _w: WorkerId,
        _victim: WorkerId,
        _phase: StealPhaseId,
        _at: Cycles,
        _dur: Cycles,
    ) {
    }

    #[inline(always)]
    pub fn steal_result(
        &mut self,
        _w: WorkerId,
        _victim: WorkerId,
        _outcome: StealOutcome,
        _t: Cycles,
        _latency: Cycles,
    ) {
    }

    #[inline(always)]
    pub fn idle_poll(&mut self, _w: WorkerId, _t: Cycles) {}

    #[inline(always)]
    pub fn collect_summaries(
        &self,
        _tasks_run: &[u64],
    ) -> (Vec<WorkerSummary>, HistSummary, HistSummary) {
        (Vec::new(), HistSummary::default(), HistSummary::default())
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn charge_splits_carries_then_pending() {
        let mut ctl = TraceCtl::new(1);
        let w = WorkerId(0);
        ctl.install_sink(1, 64);
        ctl.set_bucket(w, Bucket::StealLock);
        ctl.carry(w, Bucket::FaaQueue, Cycles(300));
        ctl.charge(w, Cycles(1_000));
        assert_eq!(ctl.accounts[0].get(Bucket::FaaQueue), Cycles(300));
        assert_eq!(ctl.accounts[0].get(Bucket::StealLock), Cycles(700));
        // Carries are consumed.
        ctl.set_bucket(w, Bucket::Work);
        ctl.charge(w, Cycles(1_500));
        assert_eq!(ctl.accounts[0].get(Bucket::Work), Cycles(500));
        assert_eq!(ctl.accounts[0].total(), Cycles(1_500));
    }

    #[test]
    fn oversized_carry_is_clamped_to_the_span() {
        let mut ctl = TraceCtl::new(1);
        let w = WorkerId(0);
        ctl.set_bucket(w, Bucket::Idle);
        ctl.carry(w, Bucket::SuspendResume, Cycles(10_000));
        ctl.charge(w, Cycles(100));
        assert_eq!(ctl.accounts[0].get(Bucket::SuspendResume), Cycles(100));
        assert_eq!(ctl.accounts[0].get(Bucket::Idle), Cycles::ZERO);
        assert_eq!(ctl.accounts[0].total(), Cycles(100));
    }

    #[test]
    fn finalize_tops_every_account_up_to_the_makespan() {
        let mut ctl = TraceCtl::new(2);
        ctl.set_bucket(WorkerId(0), Bucket::Work);
        ctl.charge(WorkerId(0), Cycles(400));
        ctl.set_bucket(WorkerId(0), Bucket::Idle);
        ctl.set_bucket(WorkerId(1), Bucket::StealEmpty);
        ctl.finalize(Cycles(1_000));
        assert_eq!(ctl.accounts[0].total(), Cycles(1_000));
        assert_eq!(ctl.accounts[1].total(), Cycles(1_000));
        assert_eq!(ctl.accounts[0].get(Bucket::Idle), Cycles(600));
        assert_eq!(ctl.accounts[1].get(Bucket::StealEmpty), Cycles(1_000));
    }

    #[test]
    fn task_lifecycle_feeds_run_length_histogram() {
        let mut ctl = TraceCtl::new(1);
        let w = WorkerId(0);
        ctl.install_sink(1, 64);
        ctl.task_begin(w, 7, Cycles(100), None);
        ctl.task_begin(w, 8, Cycles(150), Some(7));
        ctl.task_end(w, 8, Cycles(400));
        ctl.task_end(w, 7, Cycles(900));
        let (per, _, run) = ctl.collect_summaries(&[2]);
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].tasks_run, 2);
        assert_eq!(run.count, 2);
        // Spawn + 2×TaskBegin + 2×TaskEnd landed in the ring.
        assert_eq!(ctl.sink.as_ref().unwrap().len(), 5);
    }
}
