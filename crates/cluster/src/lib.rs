//! Discrete-event simulation of the distributed machine.
//!
//! This crate runs the paper's runtime end to end on a simulated FX10:
//! `nodes × workers-per-node` workers (one process per core, one comm
//! server per node), each executing the **actual** child-first work
//! stealing scheduler over the **actual** THE deques and uni-address (or
//! iso-address) stack managers from `uat-core`, against real task trees
//! supplied by a [`Workload`].
//!
//! The simulation is at *migration-point* granularity: compute segments,
//! spawns, joins, suspend/resume, and each one-sided RDMA phase of a steal
//! are timed events; everything in between is protocol code executing for
//! real (bytes move, queues change, invariants assert). One event is
//! outstanding per worker, so the event queue stays small and runs are
//! deterministic given the seed.
//!
//! Entry points:
//! - [`SimConfig`] + [`Engine::run`] — one run, yielding [`RunStats`]
//!   (makespan, throughput, steal breakdown, stack peaks, memory).
//! - [`sweep()`](sweep::sweep) — the Figure 11 scaling harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod event_heap;
pub mod metrics;
pub mod parallel;
pub mod smetrics;
pub mod sweep;
pub mod task;
mod tracing;
pub mod workload;

pub use config::SimConfig;
pub use engine::Engine;
pub use event_heap::EventHeap;
pub use metrics::{RunStats, WorkerSummary};
pub use parallel::{run_indexed, sweep_threads};
pub use sweep::{sweep, sweep_with_threads, ScalePoint};
pub use task::{TaskId64, TaskTable};
pub use workload::{Action, Workload};
