//! Indexed per-worker event heap.
//!
//! The engine's scheduling invariant — each worker has **exactly one
//! outstanding event** (see the module docs of [`crate::engine`]) — means
//! the event queue never holds more than W entries for a W-worker
//! machine. A global `BinaryHeap` is the wrong shape for that: every
//! (re)schedule allocates amortized heap growth, retires a tombstone-free
//! but ever-growing `(time, seq, worker)` tuple, and pays comparison
//! traffic against entries that are all, structurally, "the next event of
//! some worker".
//!
//! [`EventHeap`] exploits the invariant directly:
//!
//! - one **slot per worker** holding its `(time, seq)` key, updated in
//!   place on reschedule — no stale entries can exist, ever;
//! - a W-element binary heap of worker ids with a position index, so
//!   push/pop are O(log W) with **zero allocation** in the steady state
//!   (all three vectors are sized once at construction);
//! - a monotone `seq` tie-breaker assigned at push, preserving the exact
//!   deterministic FIFO order of the previous global-heap scheduler:
//!   events at the same instant fire in the order they were scheduled.
//!
//! Determinism note: the ordering is a pure function of the push/pop
//! sequence, so swapping this in for the global `BinaryHeap` is
//! bit-identical (same fire order ⇒ same simulation trajectory); the
//! golden-snapshot tests in `tests/determinism.rs` pin that.

/// Sentinel for "worker not queued".
const NOT_QUEUED: u32 = u32::MAX;

/// Fixed-capacity indexed min-heap keyed by `(time, seq)`, one slot per
/// worker.
#[derive(Clone, Debug)]
pub struct EventHeap {
    /// Worker ids in binary-heap order (min at index 0).
    heap: Vec<u32>,
    /// `pos[w]` = index of worker `w` in `heap`, or [`NOT_QUEUED`].
    pos: Vec<u32>,
    /// `key[w]` = `(fire_time, schedule_seq)`; valid while queued.
    key: Vec<(u64, u64)>,
    /// Monotone schedule counter (FIFO tie-break at equal fire times).
    seq: u64,
}

impl EventHeap {
    /// An empty heap for a machine of `workers` workers.
    pub fn new(workers: usize) -> Self {
        EventHeap {
            heap: Vec::with_capacity(workers),
            pos: vec![NOT_QUEUED; workers],
            key: vec![(0, 0); workers],
            seq: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule worker `w`'s next event at time `t`.
    ///
    /// Panics (debug) if `w` already has an outstanding event — the
    /// engine's one-event-per-worker invariant makes that a scheduler
    /// bug, not a case to handle.
    #[inline]
    pub fn push(&mut self, w: u32, t: u64) {
        debug_assert_eq!(
            self.pos[w as usize], NOT_QUEUED,
            "worker {w} already has an outstanding event"
        );
        self.seq += 1;
        self.key[w as usize] = (t, self.seq);
        let i = self.heap.len();
        self.heap.push(w);
        self.pos[w as usize] = i as u32;
        self.sift_up(i);
    }

    /// Remove and return the earliest event as `(time, worker)`; FIFO
    /// among events at the same instant.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        let w = *self.heap.first()?;
        let t = self.key[w as usize].0;
        self.pos[w as usize] = NOT_QUEUED;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some((t, w))
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        self.key[a as usize] < self.key[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.less(self.heap[i], self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let mut m = l;
            if r < self.heap.len() && self.less(self.heap[r], self.heap[l]) {
                m = r;
            }
            if !self.less(self.heap[m], self.heap[i]) {
                break;
            }
            self.swap(i, m);
            i = m;
        }
    }

    #[inline]
    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use uat_base::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new(4);
        h.push(0, 30);
        h.push(1, 10);
        h.push(2, 20);
        h.push(3, 40);
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![(10, 1), (20, 2), (30, 0), (40, 3)]);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        // FIFO tie-break: the order pushed, NOT worker-id order.
        let mut h = EventHeap::new(5);
        for &w in &[3u32, 0, 4, 1, 2] {
            h.push(w, 100);
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).map(|(_, w)| w).collect();
        assert_eq!(order, vec![3, 0, 4, 1, 2]);
    }

    #[test]
    fn slot_reuse_keeps_capacity_fixed() {
        let mut h = EventHeap::new(3);
        h.push(0, 0);
        h.push(1, 0);
        h.push(2, 0);
        let cap = h.heap.capacity();
        // A long run of pop-then-reschedule cycles must never grow the
        // backing storage (zero allocation in the steady state).
        for _ in 0..10_000 {
            let (now, w) = h.pop().unwrap();
            h.push(w, now + 7);
        }
        assert_eq!(h.heap.capacity(), cap);
        assert_eq!(h.len(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already has an outstanding event")]
    fn double_schedule_is_a_bug() {
        let mut h = EventHeap::new(2);
        h.push(0, 1);
        h.push(0, 2);
    }

    /// Model check against the scheduler the engine used before: a global
    /// `BinaryHeap<Reverse<(time, seq, worker)>>`. The pop sequences must
    /// be identical, including ties.
    #[test]
    fn matches_global_binary_heap_model() {
        let workers = 9u32;
        let mut rng = SplitMix64::new(0xE7E47);
        let mut indexed = EventHeap::new(workers as usize);
        let mut model: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // Seed every worker at t=0 like the engine does.
        for w in 0..workers {
            indexed.push(w, 0);
            seq += 1;
            model.push(Reverse((0, seq, w)));
        }
        for step in 0..50_000 {
            let (t_i, w_i) = indexed.pop().unwrap();
            let Reverse((t_m, _, w_m)) = model.pop().unwrap();
            assert_eq!((t_i, w_i), (t_m, w_m), "diverged at step {step}");
            // Reschedule the fired worker at a later (sometimes equal)
            // instant, mimicking the engine's fire→set cycle.
            let dt = rng.next_u64() % 5; // 20% exact ties
            indexed.push(w_i, t_i + dt);
            seq += 1;
            model.push(Reverse((t_i + dt, seq, w_i)));
        }
        // Drain: both end identically.
        while let Some(got) = indexed.pop() {
            let Reverse((t, _, w)) = model.pop().unwrap();
            assert_eq!(got, (t, w));
        }
        assert!(model.pop().is_none());
    }
}
