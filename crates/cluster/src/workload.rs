//! The task-program model: what a task does between migration points.
//!
//! The paper's task model (Section 3) is fork-join: a task computes,
//! spawns children (child-first: the child runs immediately and the
//! parent's continuation becomes stealable), and waits for children at
//! join points. A [`Workload`] maps a task descriptor to its straight-line
//! [`Action`] program; the engine interprets it under the real scheduler.

/// One step of a task's program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<D> {
    /// Compute for this many cycles (no migration point inside).
    Work(u64),
    /// Spawn a child task. Under child-first scheduling the child starts
    /// immediately and the continuation after this action is pushed on
    /// the work-stealing queue (Figure 4).
    Spawn(D),
    /// Wait until every child spawned so far has completed (the `sync` /
    /// `join` of Figure 1; a migration point).
    JoinAll,
}

/// A benchmark: how task descriptors expand into programs.
pub trait Workload {
    /// Task descriptor — everything a task needs to know what to do.
    type Desc: Clone + Send + Sync + std::fmt::Debug;

    /// The root task's descriptor.
    fn root(&self) -> Self::Desc;

    /// Emit the program of the task described by `d` into `out`
    /// (`out` arrives empty; reuse avoids per-task allocation churn).
    fn program(&self, d: &Self::Desc, out: &mut Vec<Action<Self::Desc>>);

    /// Stack bytes the task's frames occupy — drives the Table 4
    /// uni-address-region usage numbers.
    fn frame_size(&self, d: &Self::Desc) -> u64;

    /// How many *reported units* this task contributes to throughput.
    /// BTC counts every task (1); UTS counts tree nodes but not the
    /// binary loop-splitting helper tasks (0); NQueens likewise.
    fn units(&self, _d: &Self::Desc) -> u64 {
        1
    }

    /// Display name for reports.
    fn name(&self) -> String;
}

/// Blanket impl so `&W` and boxed workloads work where `W` is expected.
impl<W: Workload + ?Sized> Workload for &W {
    type Desc = W::Desc;
    fn root(&self) -> Self::Desc {
        (**self).root()
    }
    fn program(&self, d: &Self::Desc, out: &mut Vec<Action<Self::Desc>>) {
        (**self).program(d, out)
    }
    fn frame_size(&self, d: &Self::Desc) -> u64 {
        (**self).frame_size(d)
    }
    fn units(&self, d: &Self::Desc) -> u64 {
        (**self).units(d)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// Count tasks and total work of a workload by sequential traversal —
/// the ground truth the parallel runs are checked against in tests.
pub fn sequential_profile<W: Workload>(w: &W) -> SeqProfile {
    let mut stack = vec![w.root()];
    let mut prog = Vec::new();
    let mut p = SeqProfile::default();
    while let Some(d) = stack.pop() {
        p.tasks += 1;
        p.units += w.units(&d);
        p.frame_bytes_total += w.frame_size(&d);
        prog.clear();
        w.program(&d, &mut prog);
        for a in prog.drain(..) {
            match a {
                Action::Work(c) => p.work_cycles += c,
                Action::Spawn(child) => stack.push(child),
                Action::JoinAll => p.joins += 1,
            }
        }
    }
    p
}

/// Result of [`sequential_profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqProfile {
    /// Total tasks in the tree (including the root).
    pub tasks: u64,
    /// Total reported units (see [`Workload::units`]).
    pub units: u64,
    /// Total `Work` cycles.
    pub work_cycles: u64,
    /// Total join points.
    pub joins: u64,
    /// Sum of all frame sizes.
    pub frame_bytes_total: u64,
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A tiny synthetic fork-join tree for engine tests: a perfect binary
    /// tree of `depth` levels with `work` cycles per task.
    #[derive(Clone, Debug)]
    pub struct BinTree {
        pub depth: u32,
        pub work: u64,
        pub frame: u64,
    }

    impl Workload for BinTree {
        type Desc = u32; // remaining depth

        fn root(&self) -> u32 {
            self.depth
        }

        fn program(&self, d: &u32, out: &mut Vec<Action<u32>>) {
            out.push(Action::Work(self.work));
            if *d > 0 {
                out.push(Action::Spawn(*d - 1));
                out.push(Action::Spawn(*d - 1));
                out.push(Action::JoinAll);
            }
        }

        fn frame_size(&self, _d: &u32) -> u64 {
            self.frame
        }

        fn name(&self) -> String {
            format!("bintree(depth={})", self.depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::BinTree;
    use super::*;

    #[test]
    fn sequential_profile_counts_binary_tree() {
        let w = BinTree {
            depth: 4,
            work: 10,
            frame: 100,
        };
        let p = sequential_profile(&w);
        assert_eq!(p.tasks, 31, "2^5 - 1 nodes");
        assert_eq!(p.work_cycles, 310);
        assert_eq!(p.joins, 15, "every internal node joins once");
        assert_eq!(p.frame_bytes_total, 3100);
    }

    #[test]
    fn workload_by_reference() {
        let w = BinTree {
            depth: 2,
            work: 1,
            frame: 64,
        };
        let r = &w;
        assert_eq!(sequential_profile(&r).tasks, 7);
        assert!(r.name().contains("bintree"));
    }
}
