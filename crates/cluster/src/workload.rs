//! The task-program model — re-exported from the backend-neutral
//! `uat-model` crate.
//!
//! The model (what a task *does*: compute, spawn child-first, join) is
//! independent of which runtime executes it, so it lives in `uat-model`
//! where both this simulator and the native fiber interpreter
//! (`uat-fiber::NativeRunner`) consume it. This module keeps the
//! historical `uat_cluster::workload::*` paths compiling unchanged for
//! the engine, the bench bins, and the check scenarios.

pub use uat_model::{
    join_tree_fingerprint, sequential_profile, task_shape_hash, testutil, Action, SeqProfile,
    Workload,
};
