//! The backend-neutral task-program model: what a task does between
//! migration points, independent of *which runtime executes it*.
//!
//! The paper's task model (Section 3) is fork-join: a task computes,
//! spawns children (child-first: the child runs immediately and the
//! parent's continuation becomes stealable), and waits for children at
//! join points. A [`Workload`] maps a task descriptor to its straight-line
//! [`Action`] program; a backend interprets it under a real scheduler.
//!
//! Two backends ship in this workspace:
//!
//! - the discrete-event simulator (`uat-cluster::Engine`), which times
//!   every migration point against the FX10 cost model, and
//! - the native fiber interpreter (`uat-fiber::NativeRunner`), which runs
//!   the *same* program on real x86-64 lightweight threads with real
//!   work stealing.
//!
//! Because both consume the identical `Workload`, their accounting can be
//! compared task-for-task — see [`sequential_profile`] for the sequential
//! ground truth and [`join_tree_fingerprint`] for a schedule-independent
//! shape digest both backends reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One step of a task's program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<D> {
    /// Compute for this many cycles (no migration point inside).
    Work(u64),
    /// Spawn a child task. Under child-first scheduling the child starts
    /// immediately and the continuation after this action is pushed on
    /// the work-stealing queue (Figure 4).
    Spawn(D),
    /// Wait until every child spawned so far has completed (the `sync` /
    /// `join` of Figure 1; a migration point).
    JoinAll,
}

/// A benchmark: how task descriptors expand into programs.
pub trait Workload {
    /// Task descriptor — everything a task needs to know what to do.
    type Desc: Clone + Send + Sync + std::fmt::Debug;

    /// The root task's descriptor.
    fn root(&self) -> Self::Desc;

    /// Emit the program of the task described by `d` into `out`
    /// (`out` arrives empty; reuse avoids per-task allocation churn).
    fn program(&self, d: &Self::Desc, out: &mut Vec<Action<Self::Desc>>);

    /// Stack bytes the task's frames occupy — drives the Table 4
    /// uni-address-region usage numbers.
    fn frame_size(&self, d: &Self::Desc) -> u64;

    /// How many *reported units* this task contributes to throughput.
    /// BTC counts every task (1); UTS counts tree nodes but not the
    /// binary loop-splitting helper tasks (0); NQueens likewise.
    fn units(&self, _d: &Self::Desc) -> u64 {
        1
    }

    /// Display name for reports.
    fn name(&self) -> String;
}

/// Blanket impl so `&W` and boxed workloads work where `W` is expected.
impl<W: Workload + ?Sized> Workload for &W {
    type Desc = W::Desc;
    fn root(&self) -> Self::Desc {
        (**self).root()
    }
    fn program(&self, d: &Self::Desc, out: &mut Vec<Action<Self::Desc>>) {
        (**self).program(d, out)
    }
    fn frame_size(&self, d: &Self::Desc) -> u64 {
        (**self).frame_size(d)
    }
    fn units(&self, d: &Self::Desc) -> u64 {
        (**self).units(d)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// Count tasks and total work of a workload by sequential traversal —
/// the ground truth the parallel runs are checked against in tests.
pub fn sequential_profile<W: Workload>(w: &W) -> SeqProfile {
    let mut stack = vec![w.root()];
    let mut prog = Vec::new();
    let mut p = SeqProfile::default();
    while let Some(d) = stack.pop() {
        p.tasks += 1;
        p.units += w.units(&d);
        p.frame_bytes_total += w.frame_size(&d);
        prog.clear();
        w.program(&d, &mut prog);
        let mut children = 0u64;
        for a in prog.drain(..) {
            match a {
                Action::Work(c) => p.work_cycles += c,
                Action::Spawn(child) => {
                    children += 1;
                    stack.push(child);
                }
                Action::JoinAll => p.joins += 1,
            }
        }
        p.spawns += children;
        p.join_fingerprint = p.join_fingerprint.wrapping_add(task_shape_hash(
            children,
            w.units(&d),
            w.frame_size(&d),
        ));
    }
    p
}

/// Result of [`sequential_profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqProfile {
    /// Total tasks in the tree (including the root).
    pub tasks: u64,
    /// Total reported units (see [`Workload::units`]).
    pub units: u64,
    /// Total `Work` cycles.
    pub work_cycles: u64,
    /// Total join points.
    pub joins: u64,
    /// Total `Spawn` actions (= `tasks - 1`).
    pub spawns: u64,
    /// Sum of all frame sizes.
    pub frame_bytes_total: u64,
    /// Schedule-independent join-tree digest; see
    /// [`join_tree_fingerprint`].
    pub join_fingerprint: u64,
}

/// Per-task contribution to the join-tree fingerprint: a SplitMix64-style
/// hash of the task's child count, reported units, and frame size.
///
/// Every backend that executes a workload must combine these per-task
/// values with *wrapping addition* (commutative, so the digest is
/// independent of execution order and of which worker ran each task) —
/// that is what lets a parallel native run be compared bit-for-bit
/// against the sequential traversal.
pub fn task_shape_hash(children: u64, units: u64, frame_size: u64) -> u64 {
    let mut z = children
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(units.rotate_left(17))
        .wrapping_add(frame_size.rotate_left(41))
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Schedule-independent digest of a workload's join-tree shape: the
/// wrapping sum of [`task_shape_hash`] over every task in the tree.
///
/// Two executions agree on this digest iff they expanded the same
/// multiset of `(child count, units, frame size)` tasks — a much
/// stronger check than comparing task totals alone, yet computable
/// online by any backend without cross-task coordination.
pub fn join_tree_fingerprint<W: Workload>(w: &W) -> u64 {
    sequential_profile(w).join_fingerprint
}

pub mod testutil {
    //! Synthetic workloads for backend tests (shared by the simulator's
    //! and the native interpreter's suites).

    use super::*;

    /// A tiny synthetic fork-join tree for engine tests: a perfect binary
    /// tree of `depth` levels with `work` cycles per task.
    #[derive(Clone, Debug)]
    pub struct BinTree {
        /// Levels below the root.
        pub depth: u32,
        /// `Work` cycles per task.
        pub work: u64,
        /// Frame bytes per task.
        pub frame: u64,
    }

    impl Workload for BinTree {
        type Desc = u32; // remaining depth

        fn root(&self) -> u32 {
            self.depth
        }

        fn program(&self, d: &u32, out: &mut Vec<Action<u32>>) {
            out.push(Action::Work(self.work));
            if *d > 0 {
                out.push(Action::Spawn(*d - 1));
                out.push(Action::Spawn(*d - 1));
                out.push(Action::JoinAll);
            }
        }

        fn frame_size(&self, _d: &u32) -> u64 {
            self.frame
        }

        fn name(&self) -> String {
            format!("bintree(depth={})", self.depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::BinTree;
    use super::*;

    #[test]
    fn sequential_profile_counts_binary_tree() {
        let w = BinTree {
            depth: 4,
            work: 10,
            frame: 100,
        };
        let p = sequential_profile(&w);
        assert_eq!(p.tasks, 31, "2^5 - 1 nodes");
        assert_eq!(p.work_cycles, 310);
        assert_eq!(p.joins, 15, "every internal node joins once");
        assert_eq!(p.spawns, 30, "every task but the root was spawned");
        assert_eq!(p.frame_bytes_total, 3100);
    }

    #[test]
    fn workload_by_reference() {
        let w = BinTree {
            depth: 2,
            work: 1,
            frame: 64,
        };
        let r = &w;
        assert_eq!(sequential_profile(&r).tasks, 7);
        assert!(r.name().contains("bintree"));
    }

    #[test]
    fn fingerprint_distinguishes_shapes() {
        let a = join_tree_fingerprint(&BinTree {
            depth: 3,
            work: 1,
            frame: 64,
        });
        let b = join_tree_fingerprint(&BinTree {
            depth: 4,
            work: 1,
            frame: 64,
        });
        let c = join_tree_fingerprint(&BinTree {
            depth: 3,
            work: 1,
            frame: 65,
        });
        assert_ne!(a, b, "different depths differ");
        assert_ne!(a, c, "different frame sizes differ");
        // Work cycles deliberately do NOT enter the shape hash: the two
        // backends time work differently but expand the same tree.
        let d = join_tree_fingerprint(&BinTree {
            depth: 3,
            work: 99,
            frame: 64,
        });
        assert_eq!(a, d);
    }

    #[test]
    fn fingerprint_matches_manual_sum() {
        let w = BinTree {
            depth: 1,
            work: 0,
            frame: 8,
        };
        // Root has 2 children; the two leaves have 0.
        let expect =
            task_shape_hash(2, 1, 8).wrapping_add(task_shape_hash(0, 1, 8).wrapping_mul(2));
        assert_eq!(join_tree_fingerprint(&w), expect);
    }
}
