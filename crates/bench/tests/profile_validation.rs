//! Ground-truth validation of the causal profiler's what-if analysis.
//!
//! The simulator makes the expensive half of Coz-style causal profiling
//! cheap: instead of trusting the frozen-schedule DAG replay, these
//! tests *actually re-run* the engine with the hypothetical cost model
//! ([`CostClass::apply`]) and compare. The frozen replay cannot know
//! that the scheduler would make different steal decisions under the
//! new costs, so agreement is only expected where that divergence is
//! second-order: work-dominated runs and moderate factors (DESIGN.md §8
//! spells out the caveats; the steal-dominated regime is exercised with
//! a looser bound below).

#![cfg(feature = "trace")]

use proptest::prelude::*;
use uat_base::Topology;
use uat_bench::compact_config;
use uat_cluster::{Engine, SimConfig, Workload};
use uat_trace::profile::predict;
use uat_trace::{critical_path, CostClass, Dag};
use uat_workloads::{Fib, NQueens};

/// A 2-node × 8-worker machine: small enough for debug-mode tests,
/// big enough that steals cross nodes.
fn small_config(seed: u64) -> SimConfig {
    let mut cfg = compact_config(2);
    cfg.topo = Topology::new(2, 8);
    cfg.with_seed(seed)
}

/// Percentage error of the frozen-schedule prediction for `class` ×
/// `factor` against a ground-truth engine re-run with the scaled cost
/// model. Also cross-checks the critical-path invariant on the base
/// run.
fn prediction_error<W: Workload>(
    cfg: &SimConfig,
    make: impl Fn() -> W,
    class: CostClass,
    factor: f64,
) -> f64 {
    let (stats, trace) = Engine::new(cfg.clone(), make())
        .with_tracing(1 << 18)
        .run_traced();
    let dag = Dag::build(&trace).expect("ring must hold the whole run");
    let cp = critical_path(&dag);
    assert_eq!(
        cp.total, stats.makespan,
        "critical path must tile the makespan"
    );
    let predicted = predict(&dag, class, factor);
    let mut scaled = cfg.clone();
    class.apply(&mut scaled.cost, factor);
    let truth = Engine::new(scaled, make()).run().makespan;
    100.0 * (predicted.get() as f64 / truth.get() as f64 - 1.0)
}

/// A work-heavy fib: enough cycles per task that the schedule under a
/// scaled cost model stays close to the recorded one. (Fine-grained
/// trees — small `n`, small `work` — are schedule-chaotic: a 10% cost
/// change flips steal ordering and the frozen replay drifts past 1%.)
fn fib() -> Fib {
    Fib {
        n: 20,
        work: 20_000,
        frame: 320,
    }
}

/// Every cost class at a 25% slowdown on NQueens(10): the prediction
/// must land within 1% of the ground-truth re-run.
#[test]
fn what_if_matches_ground_truth_on_nqueens() {
    let cfg = small_config(7);
    for class in CostClass::ALL {
        let err = prediction_error(&cfg, || NQueens::new(10), class, 1.25);
        assert!(
            err.abs() < 1.0,
            "{} ×1.25 prediction off by {err:.2}% on nqueens",
            class.name()
        );
    }
}

proptest! {
    // Each case is two full engine runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (seed, class, factor) on the two fine-grained benchmarks:
    /// the prediction stays within 1% of ground truth.
    #[test]
    fn prediction_within_one_percent(
        seed in 1u64..64,
        class_i in 0usize..3,
        factor_i in 0usize..3,
        which in 0usize..2,
    ) {
        let class = CostClass::ALL[class_i];
        let factor = [1.05, 1.1, 1.15][factor_i];
        let cfg = small_config(seed);
        let err = if which == 0 {
            prediction_error(&cfg, || NQueens::new(10), class, factor)
        } else {
            prediction_error(&cfg, fib, class, factor)
        };
        prop_assert!(
            err.abs() < 1.0,
            "{} ×{factor} prediction off by {err:.2}% (seed {seed}, {})",
            class.name(),
            if which == 0 { "nqueens" } else { "fib" }
        );
    }
}
