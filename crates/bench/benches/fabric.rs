//! Criterion: host-side overhead of simulated fabric operations (the
//! other bound on DES throughput, alongside the event queue).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uat_base::{CostModel, Cycles, Topology, WorkerId};
use uat_rdma::Fabric;

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    let mut f = Fabric::new(Topology::new(2, 1), CostModel::fx10());
    f.register(WorkerId(1), 0x10_000, 1 << 16).unwrap();
    let mut small = [0u8; 32];
    let mut big = vec![0u8; 1 << 14];

    g.bench_function("read_32B", |b| {
        b.iter(|| {
            black_box(
                f.read(
                    Cycles(0),
                    WorkerId(0),
                    WorkerId(1),
                    0x10_000,
                    black_box(&mut small),
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("read_16KiB", |b| {
        b.iter(|| {
            black_box(
                f.read(
                    Cycles(0),
                    WorkerId(0),
                    WorkerId(1),
                    0x10_000,
                    black_box(&mut big),
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("fetch_add", |b| {
        b.iter(|| {
            black_box(
                f.fetch_add_u64(Cycles(0), WorkerId(0), WorkerId(1), 0x10_000, 1)
                    .unwrap(),
            )
        })
    });
    g.bench_function("local_u64_rw", |b| {
        b.iter(|| {
            let m = f.mem_mut(WorkerId(1));
            m.write_u64_local(0x10_008, black_box(42)).unwrap();
            black_box(m.read_u64_local(0x10_008).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
