//! Criterion: discrete-event engine throughput — simulated events per
//! host second, the quantity that bounds how big a machine/tree the
//! experiment harnesses can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uat_cluster::{Engine, EventHeap, SimConfig};
use uat_workloads::{Btc, Uts};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));

    // Events per run are deterministic; measure one run's wall time.
    let probe = Engine::new(SimConfig::tiny(15), Btc::new(14, 1)).run();
    g.throughput(Throughput::Elements(probe.events));
    g.bench_function("btc14_15workers", |b| {
        b.iter(|| black_box(Engine::new(SimConfig::tiny(15), Btc::new(14, 1)).run()))
    });

    let probe = Engine::new(SimConfig::fx10(4), Uts::geometric(9)).run();
    g.throughput(Throughput::Elements(probe.events));
    g.bench_function("uts9_60workers", |b| {
        b.iter(|| black_box(Engine::new(SimConfig::fx10(4), Uts::geometric(9)).run()))
    });
    g.finish();
}

/// The scheduler in isolation: pop-then-reschedule cycles on a full
/// W-slot heap, the exact steady-state pattern of the engine loop.
fn bench_event_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_heap");
    const CYCLES: u64 = 10_000;
    g.throughput(Throughput::Elements(CYCLES));
    for workers in [16u32, 120, 480] {
        let mut h = EventHeap::new(workers as usize);
        // Stagger initial deadlines so sift paths vary.
        for w in 0..workers {
            h.push(w, (w as u64 * 37) % 1024);
        }
        g.bench_function(format!("pop_reschedule_{workers}w"), |b| {
            b.iter(|| {
                for _ in 0..CYCLES {
                    let (t, w) = h.pop().unwrap();
                    h.push(w, black_box(t + 211));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine, bench_event_heap);
criterion_main!(benches);
