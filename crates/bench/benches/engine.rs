//! Criterion: discrete-event engine throughput — simulated events per
//! host second, the quantity that bounds how big a machine/tree the
//! experiment harnesses can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uat_cluster::{Engine, SimConfig};
use uat_workloads::{Btc, Uts};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));

    // Events per run are deterministic; measure one run's wall time.
    let probe = Engine::new(SimConfig::tiny(15), Btc::new(14, 1)).run();
    g.throughput(Throughput::Elements(probe.events));
    g.bench_function("btc14_15workers", |b| {
        b.iter(|| black_box(Engine::new(SimConfig::tiny(15), Btc::new(14, 1)).run()))
    });

    let probe = Engine::new(SimConfig::fx10(4), Uts::geometric(9)).run();
    g.throughput(Throughput::Elements(probe.events));
    g.bench_function("uts9_60workers", |b| {
        b.iter(|| black_box(Engine::new(SimConfig::fx10(4), Uts::geometric(9)).run()))
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
