//! Criterion: THE-protocol deque operations — the native deque's
//! push/pop/steal (what every spawn pays), and the simulated deque's
//! owner path (what bounds the DES's event rate).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uat_base::{CostModel, Cycles, Topology, WorkerId};
use uat_deque::{NativeDeque, PopOutcome, SimDeque, TaskqEntry};
use uat_rdma::Fabric;

fn bench_native(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_deque");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    let d: NativeDeque<u64> = NativeDeque::new(1024);
    g.bench_function("push_pop", |b| {
        b.iter(|| {
            d.push(black_box(7));
            black_box(d.pop())
        })
    });
    g.bench_function("push_steal", |b| {
        b.iter(|| {
            d.push(black_box(7));
            black_box(d.steal())
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_deque");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    let mut fabric = Fabric::new(Topology::new(2, 1), CostModel::fx10());
    let owner = WorkerId(0);
    fabric
        .register(owner, 0x10_000, SimDeque::footprint(256) as usize)
        .unwrap();
    let d = SimDeque::init(&mut fabric, owner, 0x10_000, 256).unwrap();
    let e = TaskqEntry {
        task: 1,
        ctx: 2,
        frame_base: 3,
        frame_size: 4,
    };
    g.bench_function("owner_push_pop", |b| {
        b.iter(|| {
            d.push(&mut fabric, black_box(e)).unwrap();
            match d.pop(&mut fabric).unwrap() {
                PopOutcome::Entry(got) => black_box(got),
                other => panic!("{other:?}"),
            }
        })
    });
    g.bench_function("thief_full_steal", |b| {
        b.iter(|| {
            d.push(&mut fabric, black_box(e)).unwrap();
            let thief = WorkerId(1);
            let t = match d.remote_empty_check(&mut fabric, Cycles(0), thief).unwrap() {
                uat_deque::StealOutcome::Ok(t) => t,
                other => panic!("{other:?}"),
            };
            let t = match d.remote_try_lock(&mut fabric, t, thief).unwrap() {
                uat_deque::StealOutcome::Ok(t) => t,
                other => panic!("{other:?}"),
            };
            let (got, t) = match d.remote_steal_entry(&mut fabric, t, thief).unwrap() {
                uat_deque::StealOutcome::Ok(v) => v,
                other => panic!("{other:?}"),
            };
            d.remote_unlock(&mut fabric, t, thief).unwrap();
            black_box(got)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_native, bench_sim);
criterion_main!(benches);
