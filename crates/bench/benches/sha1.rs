//! Criterion: the from-scratch SHA-1 used as UTS's splittable RNG.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uat_workloads::sha1::{sha1, uts_child, uts_root};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    for size in [24usize, 256, 4096] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(sha1(black_box(&data))))
        });
    }
    let root = uts_root(0);
    g.bench_function("uts_child_derivation", |b| {
        b.iter(|| black_box(uts_child(black_box(&root), black_box(3))))
    });
    g.finish();
}

criterion_group!(benches, bench_sha1);
criterion_main!(benches);
