//! Criterion: native task-creation strategies (Table 2's subject, as
//! wall-clock nanoseconds rather than rdtsc cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uat_fiber::{measure_creation, CreationStrategy};

fn bench_creation(c: &mut Criterion) {
    let mut g = c.benchmark_group("creation");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for s in [
        CreationStrategy::SeqCall,
        CreationStrategy::UniAddr,
        CreationStrategy::StackPool,
    ] {
        // measure_creation runs a 256-spawn batch; criterion times it.
        g.bench_function(s.name(), |b| {
            b.iter(|| black_box(measure_creation(s, 256, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_creation);
criterion_main!(benches);
