//! Differential profile: one paper workload, both backends, side by side.
//!
//! Usage: `differential_profile [fib|btc1|btc2|uts|nqueens|chain]
//! [--backend sim|native|multiprocess] [--size S] [--workers W]
//! [--ring CAP] [--divisor D]
//! [--trace <path>] [--json <path>] [--metrics] [--metrics-json <path>]`
//!
//! Without `--backend`, the classic side-by-side profile below runs
//! (sim + native, traced). With `--backend B`, exactly one executor
//! runs the workload and reports its stats verified against the
//! sequential ground truth — `multiprocess` selects the
//! process-per-worker uni-address backend, whose `--metrics` snapshot
//! is read back from the shared-memory segment (skipped with a reason
//! on kernels that cannot map it).
//!
//! Runs the same backend-neutral `Workload` through the deterministic
//! simulator (`uat-cluster`, 1 node × W workers, simulated cycles) and
//! the native fiber runtime (`uat-fiber`, W OS threads, TSC cycles),
//! with full event tracing on both, and reports:
//!
//! - **per-bucket cycle shares**, aggregated over workers, side by side.
//!   The two columns live in different clock domains (cost-model cycles
//!   vs calibrated TSC cycles), so compare *shares*, not magnitudes.
//!   The native buckets tile the native wall-cycles exactly in the
//!   drop-free case (checked; non-zero exit on violation — CI relies
//!   on this).
//! - **both critical paths**, from the same happens-before DAG
//!   construction (`uat_trace::profile`) run on each trace. Each path
//!   total must equal its backend's makespan exactly (checked).
//! - **what-if predictions** (frozen-schedule DAG replay) on both DAGs,
//!   one row per cost class. The native DAG has no fabric-cost edges,
//!   so RDMA classes predict ≈0% there — the contrast with the sim
//!   column is the point.
//!
//! `--divisor D` divides native `Work(c)` spin cycles by `D` (the sim
//! always charges the full `c`); the default 1 is the faithful setting.
//! `--trace` writes the *native* flow-annotated Chrome trace (steal
//! arrows across worker tracks); `--json` a machine-readable JSONL
//! summary of both profiles. `--metrics`/`--metrics-json` attach one
//! registry to each backend (same metric names, different clock
//! domains) and export both final snapshots side by side.

#[cfg(feature = "trace")]
use uat_base::json::{Json, ToJson};
#[cfg(feature = "trace")]
use uat_bench::{write_output, OutFlags};
#[cfg(feature = "trace")]
use uat_cluster::{SimConfig, Workload};
#[cfg(feature = "trace")]
use uat_trace::TimeAccount;
#[cfg(feature = "trace")]
use uat_workloads::{Btc, Chain, Fib, NQueens, Uts};

#[cfg(not(feature = "trace"))]
fn main() {
    eprintln!(
        "error: differential_profile requires the `trace` feature; rebuild without --no-default-features"
    );
    std::process::exit(2);
}

#[cfg(feature = "trace")]
fn main() {
    real_main()
}

#[cfg(feature = "trace")]
struct Args {
    bench: String,
    size: Option<u32>,
    workers: u32,
    /// Sim ring capacity; the native ring defaults smaller (per-worker
    /// preallocation) unless `--ring` overrides both.
    ring: Option<usize>,
    divisor: u64,
}

#[cfg(feature = "trace")]
fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut a = Args {
        bench: "nqueens".into(),
        size: None,
        workers: 4,
        ring: None,
        divisor: 1,
    };
    let mut bench_set = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match arg.as_str() {
            "--size" => a.size = Some(parse_num(&value("--size")?)?),
            "--workers" => a.workers = parse_num(&value("--workers")?)?,
            "--ring" => a.ring = Some(parse_num(&value("--ring")?)?),
            "--divisor" => a.divisor = parse_num(&value("--divisor")?)?,
            other if !other.starts_with("--") && !bench_set => {
                bench_set = true;
                a.bench = other.into();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if a.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if a.divisor == 0 {
        return Err("--divisor must be at least 1".into());
    }
    Ok(a)
}

#[cfg(feature = "trace")]
fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

#[cfg(feature = "trace")]
fn real_main() {
    let flags = OutFlags::parse();
    uat_bench::require_metrics_feature(&flags);
    let backend_given = flags
        .rest
        .iter()
        .any(|r| r == "--backend" || r.starts_with("--backend="));
    let (backend, rest) = match uat_bench::backend_flag(&flags.rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mode = backend_given.then_some(backend);
    let a = match parse_args(&rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match a.bench.as_str() {
        "fib" => diff(&a, Fib::new, a.size.unwrap_or(14), &flags, mode),
        "btc1" => diff(&a, |s| Btc::new(s, 1), a.size.unwrap_or(10), &flags, mode),
        "btc2" => diff(&a, |s| Btc::new(s, 2), a.size.unwrap_or(7), &flags, mode),
        "uts" => diff(&a, Uts::geometric, a.size.unwrap_or(6), &flags, mode),
        "nqueens" => diff(&a, NQueens::new, a.size.unwrap_or(7), &flags, mode),
        "chain" => diff(&a, Chain::fig10, a.size.unwrap_or(100), &flags, mode),
        other => {
            eprintln!("error: unknown benchmark `{other}` (fib|btc1|btc2|uts|nqueens|chain)");
            std::process::exit(2);
        }
    }
}

/// `--backend B` mode: run exactly one executor and report its stats
/// against the sequential ground truth.
#[cfg(feature = "trace")]
fn single_backend<W>(a: &Args, backend: uat_bench::Backend, w: W, size: u32, flags: &OutFlags)
where
    W: Workload + Clone + Send + Sync + 'static,
    W::Desc: Copy + 'static,
{
    use uat_bench::Backend;
    let name = w.name().to_string();
    println!(
        "# differential_profile — {name} size={size}: backend {} × {} workers",
        backend.name(),
        a.workers
    );
    match backend {
        Backend::Sim => {
            let p = uat_model::sequential_profile(&w);
            let mut cfg = SimConfig::tiny(a.workers);
            cfg.core.iso_stacks_per_worker = 512;
            cfg.max_events = 100_000_000;
            let engine = uat_cluster::Engine::new(cfg, w);
            #[cfg(feature = "metrics")]
            {
                if uat_bench::wants_metrics(flags) {
                    let registry =
                        std::sync::Arc::new(uat_metrics::Registry::new(a.workers as usize));
                    let stats = engine.with_metrics(&registry).run();
                    assert_eq!(stats.total_tasks, p.tasks, "sim dropped tasks: {name}");
                    println!(
                        "sim: makespan {} cycles  tasks={} steals={}",
                        stats.makespan.get(),
                        stats.total_tasks,
                        stats.steals_completed
                    );
                    uat_bench::emit_metrics(flags, &[("sim", registry.snapshot())]);
                    return;
                }
            }
            let stats = engine.run();
            assert_eq!(stats.total_tasks, p.tasks, "sim dropped tasks: {name}");
            println!(
                "sim: makespan {} cycles  tasks={} steals={}",
                stats.makespan.get(),
                stats.total_tasks,
                stats.steals_completed
            );
        }
        Backend::Native => {
            #[cfg(feature = "metrics")]
            {
                if uat_bench::wants_metrics(flags) {
                    let p = uat_model::sequential_profile(&w);
                    let (stats, snap) = uat_fiber::NativeRunner::new(a.workers as usize)
                        .with_work_divisor(a.divisor)
                        .run_metered(w);
                    assert_eq!(stats.total_tasks, p.tasks, "native dropped tasks: {name}");
                    assert_eq!(stats.join_fingerprint, p.join_fingerprint, "{name}");
                    println!("{}", stats.summary_line());
                    uat_bench::emit_metrics(flags, &[("native", snap)]);
                    return;
                }
            }
            uat_bench::run_real_backend(backend, a.workers as usize, a.divisor, w);
        }
        Backend::Multiprocess => {
            let p = uat_model::sequential_profile(&w);
            let runner =
                uat_fiber::MultiProcessRunner::new(a.workers as usize).with_work_divisor(a.divisor);
            let report = match runner.try_run(w) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("multiprocess backend unavailable here: {e}");
                    return;
                }
            };
            let stats = &report.stats;
            assert_eq!(
                stats.total_tasks, p.tasks,
                "multiprocess dropped tasks: {name}"
            );
            assert_eq!(
                stats.join_fingerprint, p.join_fingerprint,
                "multiprocess join-tree fingerprint diverges: {name}"
            );
            println!("{}", stats.summary_line_as("MultiProc"));
            println!(
                "  throughput: {:.0} tasks/s on {} worker processes ({} cross-process steals)",
                stats.throughput(),
                stats.workers,
                stats.steals
            );
            #[cfg(feature = "metrics")]
            if uat_bench::wants_metrics(flags) {
                // The snapshot below was assembled from the shared
                // segment the parent read through its fabric windows.
                uat_bench::emit_metrics(flags, &[("multiprocess", report.metrics_snapshot())]);
            }
        }
    }
}

/// One backend's profile, reduced to what the comparison needs.
#[cfg(feature = "trace")]
struct Profiled {
    makespan: uat_base::Cycles,
    /// Aggregate over per-worker accounts (total = makespan × workers
    /// for the native backend in the drop-free case).
    buckets: TimeAccount,
    cp: uat_trace::CriticalPath,
    dag: uat_trace::Dag,
}

/// Build the DAG + critical path for one backend's trace, enforcing the
/// invariant the profiler promises: path total == makespan exactly.
#[cfg(feature = "trace")]
fn profile_one(
    label: &str,
    trace: &uat_trace::TraceData,
    buckets: TimeAccount,
    ring_hint: usize,
) -> Profiled {
    let dag = match uat_trace::Dag::build(trace) {
        Ok(dag) => dag,
        Err(e @ uat_trace::ProfileError::DroppedEvents { .. }) => {
            eprintln!(
                "error [{label}]: {e}\nhint: re-run with a larger --ring (current: {ring_hint})"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error [{label}]: cannot build the happens-before DAG: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = dag.check_acyclic() {
        eprintln!("error [{label}]: happens-before DAG has a cycle: {e}");
        std::process::exit(1);
    }
    let cp = uat_trace::critical_path(&dag);
    if cp.total != trace.makespan || cp.account.total() != cp.total {
        eprintln!(
            "error [{label}]: critical path ({} cycles, attribution {}) != makespan ({})",
            cp.total.get(),
            cp.account.total().get(),
            trace.makespan.get()
        );
        std::process::exit(1);
    }
    Profiled {
        makespan: trace.makespan,
        buckets,
        cp,
        dag,
    }
}

#[cfg(feature = "trace")]
fn share(c: uat_base::Cycles, total: uat_base::Cycles) -> f64 {
    100.0 * c.get() as f64 / total.get().max(1) as f64
}

#[cfg(feature = "trace")]
fn diff<W, F>(a: &Args, make: F, size: u32, flags: &OutFlags, mode: Option<uat_bench::Backend>)
where
    W: Workload + Clone + Send + Sync + 'static,
    W::Desc: Copy + 'static,
    F: Fn(u32) -> W,
{
    let w = make(size);
    if let Some(backend) = mode {
        return single_backend(a, backend, w, size, flags);
    }
    let name = w.name().to_string();
    println!(
        "# differential_profile — {name} size={size}: sim 1 node × {w} workers vs native {w} OS threads",
        w = a.workers
    );

    // One registry per backend: the metric names are shared, so merging
    // them into one registry would conflate the two clock domains.
    #[cfg(feature = "metrics")]
    let (sim_reg, nat_reg) = {
        let mk = || std::sync::Arc::new(uat_metrics::Registry::new(a.workers as usize));
        match uat_bench::wants_metrics(flags) {
            true => (Some(mk()), Some(mk())),
            false => (None, None),
        }
    };

    // --- simulator run ---
    let sim_ring = a.ring.unwrap_or(1 << 20);
    let mut cfg = SimConfig::tiny(a.workers);
    cfg.core.iso_stacks_per_worker = 512;
    cfg.max_events = 100_000_000;
    let sim_engine = uat_cluster::Engine::new(cfg, w.clone());
    #[cfg(feature = "metrics")]
    let sim_engine = match &sim_reg {
        Some(r) => sim_engine.with_metrics(r),
        None => sim_engine,
    };
    let (sim_stats, sim_trace) = sim_engine.with_tracing(sim_ring).run_traced();
    println!(
        "sim    : makespan {:>14} cycles ({} @ {:.3e} Hz)  tasks={} steals={}",
        sim_stats.makespan.get(),
        sim_trace.clock_source.name(),
        sim_trace.clock_hz,
        sim_stats.total_tasks,
        sim_stats.steals_completed,
    );

    // --- native run ---
    let native_ring = a.ring.unwrap_or(uat_fiber::DEFAULT_RING_CAPACITY);
    let runner = uat_fiber::NativeRunner::new(a.workers as usize)
        .with_work_divisor(a.divisor)
        .with_tracing(native_ring);
    #[cfg(feature = "metrics")]
    let runner = match &nat_reg {
        Some(r) => runner.with_metrics(std::sync::Arc::clone(r)),
        None => runner,
    };
    let (nat_stats, nat_trace) = runner.run_traced(w);
    println!(
        "native : makespan {:>14} cycles ({} @ {:.3e} Hz)  tasks={} steals={} parks={} drop={}",
        nat_trace.data.makespan.get(),
        nat_trace.data.clock_source.name(),
        nat_trace.data.clock_hz,
        nat_stats.total_tasks,
        nat_stats.steals,
        nat_stats.parks,
        nat_stats.trace_dropped,
    );

    // Both backends interpreted the same program: the task count is the
    // differential invariant everything else rests on.
    if sim_stats.total_tasks != nat_stats.total_tasks {
        eprintln!(
            "error: backends disagree on task count (sim {} vs native {})",
            sim_stats.total_tasks, nat_stats.total_tasks
        );
        std::process::exit(1);
    }

    // Native accounting must tile the wall-cycles: every worker's bucket
    // ledger sums to the makespan exactly when no ring dropped events.
    if nat_stats.trace_dropped == 0 {
        for (i, acc) in nat_trace.accounts.iter().enumerate() {
            if acc.total() != nat_trace.data.makespan {
                eprintln!(
                    "error: native worker {i} buckets sum to {} but the makespan is {}",
                    acc.total().get(),
                    nat_trace.data.makespan.get()
                );
                std::process::exit(1);
            }
        }
    }

    let mut sim_buckets = TimeAccount::new();
    for ws in &sim_stats.per_worker {
        sim_buckets.merge(&ws.account);
    }
    let mut nat_buckets = TimeAccount::new();
    for acc in &nat_trace.accounts {
        nat_buckets.merge(acc);
    }

    let sim = profile_one("sim", &sim_trace, sim_buckets, sim_ring);
    let nat = profile_one("native", &nat_trace.data, nat_buckets, native_ring);

    // --- side-by-side bucket shares ---
    println!(
        "\n# bucket shares (aggregate over workers; different clock domains — compare shares)"
    );
    println!(
        "{:<14} {:>16} {:>7}   {:>16} {:>7}",
        "bucket", "sim cycles", "share", "native cycles", "share"
    );
    let (st, nt) = (sim.buckets.total(), nat.buckets.total());
    for &b in uat_trace::Bucket::ALL.iter() {
        let (sc, nc) = (sim.buckets.get(b), nat.buckets.get(b));
        if sc == uat_base::Cycles::ZERO && nc == uat_base::Cycles::ZERO {
            continue;
        }
        println!(
            "{:<14} {:>16} {:>6.1}%   {:>16} {:>6.1}%",
            b.name(),
            sc.get(),
            share(sc, st),
            nc.get(),
            share(nc, nt),
        );
    }
    println!(
        "{:<14} {:>16} {:>6.1}%   {:>16} {:>6.1}%",
        "total",
        st.get(),
        100.0,
        nt.get(),
        100.0
    );

    // --- both critical paths ---
    for (label, p) in [("sim", &sim), ("native", &nat)] {
        println!(
            "\n# critical path — {label}: total {} cycles in {} segments (jumped {} steal + {} join edges), ends on worker {}",
            p.cp.total.get(),
            p.cp.segments.len(),
            p.cp.steal_edges,
            p.cp.join_edges,
            p.cp.end_worker
        );
        for &b in uat_trace::Bucket::ALL.iter() {
            let c = p.cp.account.get(b);
            if c > uat_base::Cycles::ZERO {
                println!(
                    "  {:<14} {:>14}  ({:>5.1}%)",
                    b.name(),
                    c.get(),
                    share(c, p.cp.total)
                );
            }
        }
    }

    // --- what-if, side by side ---
    println!("\n# what-if ×2.0 (frozen-schedule replay on each backend's DAG)");
    println!(
        "{:<12} {:>16}   {:>16}",
        "class", "sim Δmakespan", "native Δmakespan"
    );
    let mut rows = Vec::new();
    for &class in uat_trace::CostClass::ALL.iter() {
        let deltas: Vec<f64> = [&sim, &nat]
            .iter()
            .map(|p| {
                let predicted = uat_trace::profile::predict(&p.dag, class, 2.0);
                100.0 * (predicted.get() as f64 / p.makespan.get().max(1) as f64 - 1.0)
            })
            .collect();
        println!(
            "{:<12} {:>15.1}%   {:>15.1}%",
            class.name(),
            deltas[0],
            deltas[1]
        );
        rows.push(Json::obj([
            ("class", Json::str(class.name())),
            ("factor", Json::Num(2.0)),
            ("sim_delta_pct", Json::Num(deltas[0])),
            ("native_delta_pct", Json::Num(deltas[1])),
        ]));
    }

    // --- artifacts ---
    if let Some(path) = &flags.json {
        let backend = |p: &Profiled, clock: &uat_trace::TraceData, extra: Vec<(String, Json)>| {
            let mut obj = vec![
                ("makespan".to_string(), Json::UInt(p.makespan.get())),
                (
                    "clock_source".to_string(),
                    Json::str(clock.clock_source.name()),
                ),
                ("clock_hz".to_string(), Json::Num(clock.clock_hz)),
                ("buckets".to_string(), p.buckets.to_json()),
                ("critical_path".to_string(), p.cp.summary().to_json()),
            ];
            obj.extend(extra);
            Json::Obj(obj)
        };
        let line = Json::obj([
            ("benchmark", Json::str(&name)),
            ("size", Json::UInt(size as u64)),
            ("workers", Json::UInt(a.workers as u64)),
            ("tasks", Json::UInt(sim_stats.total_tasks)),
            ("sim", backend(&sim, &sim_trace, vec![])),
            (
                "native",
                backend(
                    &nat,
                    &nat_trace.data,
                    vec![
                        (
                            "trace_dropped".to_string(),
                            Json::UInt(nat_stats.trace_dropped),
                        ),
                        ("parks".to_string(), Json::UInt(nat_stats.parks)),
                        ("work_divisor".to_string(), Json::UInt(a.divisor)),
                    ],
                ),
            ),
            ("what_if", Json::Arr(rows)),
        ]);
        write_output(
            path,
            &uat_trace::jsonl(vec![line]),
            "JSONL differential profile",
        );
    }
    if let Some(path) = &flags.trace {
        write_output(
            path,
            &uat_trace::chrome_trace_json(&nat_trace.data),
            "native Chrome trace",
        );
    }
    #[cfg(feature = "metrics")]
    if let (Some(s), Some(n)) = (&sim_reg, &nat_reg) {
        uat_bench::emit_metrics(flags, &[("sim", s.snapshot()), ("native", n.snapshot())]);
    }
}
