//! Ablation: multiple workers (and uni-address regions) per address
//! space — the paper's Section 5.1 future-work alternative to
//! process-per-core.
//!
//! In that design a process hosts `k` workers and `k` uni-address regions
//! at `k` distinct addresses; a ready thread can only run in a region
//! whose address matches the one it was created at. The paper: "in
//! unlucky cases, there may be many unfilled regions and many ready yet
//! not running tasks, due to their unmatching addresses. This may lower
//! processor utilization."
//!
//! This harness quantifies the *placement* loss with a Monte-Carlo
//! balls-in-bins model: `r` ready threads with uniformly distributed
//! region classes must be placed one-per-(process, class) slot across
//! `p` processes; utilization = placed / min(r, p·k). Process-per-core
//! (k = 1) always places everything — that is the paper's chosen design.

use uat_base::SplitMix64;

/// Expected fraction of runnable slots actually filled.
fn placement_utilization(
    processes: usize,
    k: usize,
    ready: usize,
    trials: u32,
    rng: &mut SplitMix64,
) -> f64 {
    let capacity = processes * k;
    let mut total = 0.0;
    for _ in 0..trials {
        // free[j] = processes with region-class j still free.
        let mut free = vec![processes; k];
        let mut placed = 0usize;
        for _ in 0..ready {
            let class = rng.index(k);
            if free[class] > 0 {
                free[class] -= 1;
                placed += 1;
            }
        }
        total += placed as f64 / ready.min(capacity) as f64;
    }
    total / trials as f64
}

fn main() {
    println!("# Ablation — k workers/uni-address regions per address space\n");
    let mut rng = SplitMix64::new(0xAB1A7E);
    let processes = 64;
    println!("placement utilization (64 processes, ready threads with random classes):\n");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}",
        "k", "r=cap/2", "r=cap", "r=2*cap", "r=8*cap"
    );
    for k in [1usize, 2, 4, 8, 15] {
        let cap = processes * k;
        let u: Vec<f64> = [cap / 2, cap, 2 * cap, 8 * cap]
            .iter()
            .map(|&r| placement_utilization(processes, k, r, 400, &mut rng))
            .collect();
        println!(
            "{:>4} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            k,
            100.0 * u[0],
            100.0 * u[1],
            100.0 * u[2],
            100.0 * u[3]
        );
    }
    println!(
        "\nk = 1 (process-per-core, the paper's design) always places every ready\n\
         thread. With more regions per process, exactly-full placement needs the\n\
         class distribution to match the free-slot distribution; near r = capacity\n\
         the mismatch idles a noticeable fraction of cores, recovering only with\n\
         heavy oversubscription. This is the utilization loss the paper defers to\n\
         future work — and why it ships process-per-core."
    );
}
