//! Section 4's memory analysis + Section 6.3's steal-time estimate:
//! iso-address baseline vs uni-address.
//!
//! Three parts:
//! 1. Virtual-address-space arithmetic: per-process reservation under
//!    iso-address as the machine grows (the paper's 2^49 > 2^48 example)
//!    vs uni-address's constant footprint.
//! 2. Steal-time comparison on the Figure 10 ping-pong: iso pays
//!    victim-assisted transfer + destination page faults (21K cycles);
//!    the paper estimates uni ≈ 71% of iso.
//! 3. Physical-memory growth: committed pages after a stealing-heavy run
//!    (the `(1+mr)` effect), measured from the simulated page tables.

use uat_base::{Cycles, Topology};
use uat_bench::{deviation, kcycles, paper};
use uat_cluster::{run_indexed, sweep_threads, Engine, SimConfig};
use uat_core::{CoreConfig, SchemeKind, StealPhase};
use uat_workloads::{Btc, Chain};

const SCHEMES: [SchemeKind; 2] = [SchemeKind::Uni, SchemeKind::Iso];

fn main() {
    part1_virtual_memory();
    part2_steal_time();
    part3_physical_growth();
}

fn part1_virtual_memory() {
    println!("# Part 1 — per-process virtual address space (Section 4)\n");
    let cfg = CoreConfig {
        iso_stack_size: 1 << 14,        // 16 KiB stacks (the paper's example)
        iso_stacks_per_worker: 1 << 13, // tree depth 2^13 (UTS-like)
        ..CoreConfig::default()
    };
    let uni_va = cfg.uni_region_size + cfg.rdma_heap_size;
    println!(
        "{:>12} {:>22} {:>18} {:>10}",
        "workers", "iso reserved/process", "uni reserved", "iso fits x86-64?"
    );
    for exp in [10u32, 14, 18, 20, 22] {
        let workers = 1u64 << exp;
        let iso = cfg.iso_global_range(workers);
        println!(
            "{:>12} {:>18} GiB {:>14} MiB {:>10}",
            workers,
            iso >> 30,
            uni_va >> 20,
            if iso < (1u64 << 48) {
                "yes"
            } else {
                "NO (2^48)"
            }
        );
    }
    println!(
        "\nAt 2^22 workers iso-address needs 2^49 bytes of reservation in *every*\n\
         process — past the x86-64 virtual address space, exactly the paper's\n\
         Section 4 arithmetic. Uni-address stays constant.\n"
    );
}

fn part2_steal_time() {
    println!("# Part 2 — steal time, uni vs iso (Figure 10 ping-pong, §6.3)\n");
    // Both schemes are independent runs: simulate concurrently, report in
    // order.
    let runs = run_indexed(SCHEMES.len(), sweep_threads(), |i| {
        let mut cfg = SimConfig::fx10(2);
        cfg.topo = Topology::new(2, 1);
        cfg.scheme = SCHEMES[i];
        cfg.core.iso_stacks_per_worker = 64;
        Engine::new(cfg, Chain::fig10(1_000)).run()
    });
    let mut results = Vec::new();
    for (scheme, stats) in SCHEMES.iter().zip(&runs) {
        let total = stats.breakdown.total_mean();
        println!(
            "{:?}: steal total {:>8} cycles | stack transfer {:>8} | faults/steal {:.2}",
            scheme,
            kcycles(total),
            kcycles(stats.breakdown.phase(StealPhase::StackTransfer).mean),
            stats.page_faults as f64 / stats.steals_completed.max(1) as f64,
        );
        results.push(total);
    }
    let steady = results[0] / results[1];
    // The ping-pong reuses one stack slot, so after the first bounce both
    // destinations have committed its pages and migrations stop faulting.
    // The paper's estimate is for a *cold* destination (a long run keeps
    // touching fresh pages): add the 21K-cycle first-touch fault back.
    let cold = results[0] / (results[1] + 21_000.0);
    println!("\nuni / iso steal time (steady-state, warm pages) = {steady:.2}");
    println!(
        "uni / iso steal time (cold destination, +1 fault) = {:.2}  (paper estimate: {:.2}, {})",
        cold,
        paper::UNI_OVER_ISO_STEAL,
        deviation(cold, paper::UNI_OVER_ISO_STEAL)
    );
    println!(
        "(iso pays the victim-assisted transfer always, and 21K-cycle\n\
         first-touch faults whenever the destination has never hosted the\n\
         stack's pages — the common case in large runs.)\n"
    );
}

fn part3_physical_growth() {
    println!("# Part 3 — physical memory committed after a stealing-heavy run\n");
    let runs = run_indexed(SCHEMES.len(), sweep_threads(), |i| {
        let mut cfg = SimConfig::fx10(4); // 60 workers
        cfg.scheme = SCHEMES[i];
        cfg.core.uni_region_size = 192 << 10;
        cfg.core.rdma_heap_size = 512 << 10;
        cfg.core.deque_capacity = 1024;
        cfg.core.iso_stacks_per_worker = 128;
        Engine::new(cfg, Btc::new(18, 1)).run()
    });
    for (scheme, stats) in SCHEMES.iter().zip(&runs) {
        println!(
            "{:?}: committed {:>8} KiB total | stack peak {:>6} B/worker | faults {:>6} | fault cycles {}",
            scheme,
            stats.committed_total >> 10,
            stats.peak_stack_usage,
            stats.page_faults,
            Cycles(stats.page_faults * 21_000),
        );
    }
    println!(
        "\nUni's committed bytes are its fixed pinned regions (a deliberate,\n\
         bounded trade: pinning is what enables one-sided steals) and it never\n\
         faults at runtime. Iso's committed bytes grow with wherever stacks\n\
         have ever been touched in each address space — the paper's (1+mr)\n\
         growth — and every first touch costs a 21K-cycle fault on the\n\
         critical path of a migration."
    );
}
