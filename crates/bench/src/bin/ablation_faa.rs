//! Ablation: software comm-server fetch-and-add (what FX10 forces, §6)
//! vs a hypothetical NIC-side hardware FAA.
//!
//! Two effects: the unloaded lock phase shrinks (9.8K → 3K cycles), and
//! the per-node comm server stops being a serialization point under
//! steal contention — visible in the queueing cycles the fabric records
//! when many thieves hit one node.

use uat_base::Topology;
use uat_bench::kcycles;
use uat_cluster::{Engine, SimConfig};
use uat_core::StealPhase;
use uat_workloads::{Btc, Chain};

fn main() {
    println!("# Ablation — software vs hardware remote fetch-and-add\n");

    println!("## Unloaded lock phase (Figure 10 ping-pong)");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "FAA", "lock phase", "steal total", "makespan"
    );
    for hw in [false, true] {
        let mut cfg = SimConfig::fx10(2);
        cfg.topo = Topology::new(2, 1);
        cfg.cost.hardware_faa = hw;
        let stats = Engine::new(cfg, Chain::fig10(1_000)).run();
        println!(
            "{:<12} {:>12} {:>14} {:>12.4}s",
            if hw { "hardware" } else { "software" },
            kcycles(stats.breakdown.phase(StealPhase::Lock).mean),
            kcycles(stats.breakdown.total_mean()),
            stats.seconds(),
        );
    }

    println!("\n## Contention: 8 nodes x 15 workers, fine-grained BTC");
    println!(
        "{:<12} {:>12} {:>16} {:>14} {:>12}",
        "FAA", "steals", "FAA queue cyc", "cycles/task", "efficiency*"
    );
    let mut baseline: Option<f64> = None;
    for hw in [false, true] {
        let mut cfg = SimConfig::fx10(8);
        cfg.core.uni_region_size = 192 << 10;
        cfg.core.rdma_heap_size = 512 << 10;
        cfg.core.deque_capacity = 1024;
        cfg.cost.hardware_faa = hw;
        let stats = Engine::new(cfg, Btc::new(20, 1)).run();
        let cpt = stats.cycles_per_task();
        let eff = baseline.map(|b| b / cpt).unwrap_or(1.0);
        baseline.get_or_insert(cpt);
        println!(
            "{:<12} {:>12} {:>16} {:>14.0} {:>11.2}x",
            if hw { "hardware" } else { "software" },
            stats.steals_completed,
            stats.fabric.faa_queue_cycles,
            cpt,
            eff,
        );
    }
    println!("\n*cycles/task of software FAA divided by this row's — > 1 means faster.");
    println!(
        "The comm-server design also costs one core per node (the paper runs 15\n\
         of 16 cores as workers); hardware FAA would return that core too."
    );
}
