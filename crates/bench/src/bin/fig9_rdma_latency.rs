//! Figure 9: RDMA READ/WRITE latencies vs message size on the simulated
//! fabric, printed in the paper's units (microseconds).

use uat_base::{CostModel, Cycles, Topology, WorkerId};
use uat_rdma::latency::{LatencyModel, Op};
use uat_rdma::Fabric;

fn main() {
    let cost = CostModel::fx10();
    let model = LatencyModel::new(cost.clone());
    println!("# Figure 9 — RDMA READ/WRITE latency vs message size (FX10 model)");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "bytes", "READ (us)", "WRITE (us)", "READ (cycles)", "WRITE (cycles)"
    );
    for sz in LatencyModel::fig9_sizes() {
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>14} {:>14}",
            sz,
            model.latency_us(Op::Read, sz, false),
            model.latency_us(Op::Write, sz, false),
            model.latency(Op::Read, sz, false).get(),
            model.latency(Op::Write, sz, false).get(),
        );
    }

    // Cross-check: the same numbers through actual fabric operations.
    let topo = Topology::new(2, 1);
    let mut fabric = Fabric::new(topo, cost);
    fabric.register(WorkerId(1), 0x10_000, 1 << 20).unwrap();
    let mut buf = vec![0u8; 1 << 20];
    println!("\n# Cross-check via Fabric::read (end-to-end op path)");
    for sz in [8usize, 4096, 1 << 20] {
        let done = fabric
            .read(
                Cycles(0),
                WorkerId(0),
                WorkerId(1),
                0x10_000,
                &mut buf[..sz],
            )
            .unwrap();
        println!("  read {sz:>8} B -> {done}");
    }
    println!(
        "\nSoftware remote fetch-and-add (unloaded): {} cycles (paper: 9.8K)",
        CostModel::fx10().remote_faa_cost().get()
    );
}
