//! Table 4: total tasks/nodes, execution time, and uni-address-region
//! stack usage for the three benchmarks on a 3,840-core simulated FX10.
//!
//! Problem sizes are scaled down (the paper's runs execute 10^11–10^12
//! tasks; the simulator executes every task), so *time* is not
//! comparable; the reproduction targets are the task counts (exact
//! formulas), the stack-usage-per-level calibration, and the abstract's
//! "< 144KB virtual memory for thread migration" bound. For each
//! benchmark the harness also projects the stack usage at the paper's
//! depth from the measured per-level growth.

use uat_bench::{compact_config, paper};
use uat_cluster::{Engine, RunStats, SimConfig, Workload};
use uat_workloads::{btc::BTC_FRAME, nqueens, uts, Btc, NQueens, Uts};

fn run<W: Workload>(cfg: SimConfig, w: W) -> RunStats {
    Engine::new(cfg, w).run()
}

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256); // 256 nodes × 15 = 3840 cores
    let cfg = compact_config(nodes);
    println!(
        "# Table 4 — benchmarks on {} simulated cores ({} nodes x 15)\n",
        cfg.topo.total_workers(),
        nodes
    );
    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "benchmark", "tasks", "units", "time (s)", "steals", "stack (B)", "projected (B)"
    );

    // (label, run, measured depth/levels, paper depth, per-level bytes, paper bytes)
    struct Row {
        label: &'static str,
        stats: RunStats,
        levels: u64,
        paper_levels: u64,
        per_level: u64,
        paper_bytes: u64,
    }

    let rows = vec![
        Row {
            label: "BTC iter=1 depth=22",
            stats: run(cfg.clone(), Btc::new(22, 1)),
            levels: 23,
            paper_levels: 39,
            per_level: BTC_FRAME,
            paper_bytes: paper::STACK_USAGE[0].2,
        },
        Row {
            label: "BTC iter=2 depth=11",
            stats: run(cfg.clone(), Btc::new(11, 2)),
            levels: 12,
            paper_levels: 20,
            per_level: BTC_FRAME,
            paper_bytes: paper::STACK_USAGE[2].2,
        },
        Row {
            label: "UTS geo depth=12",
            stats: run(cfg.clone(), Uts::geometric(12)),
            levels: 13,
            paper_levels: 18,
            per_level: uts::UTS_NODE_FRAME + 2 * uts::UTS_SPLIT_FRAME,
            paper_bytes: paper::STACK_USAGE[4].2,
        },
        Row {
            label: "NQueens N=12",
            stats: run(cfg.clone(), NQueens::new(12)),
            levels: 13,
            paper_levels: 18,
            per_level: nqueens::NQ_NODE_FRAME + 3 * nqueens::NQ_SPLIT_FRAME,
            paper_bytes: paper::STACK_USAGE[7].2,
        },
    ];

    for r in &rows {
        let projected = r.per_level * r.paper_levels;
        println!(
            "{:<22} {:>14} {:>14} {:>10.4} {:>12} {:>14} {:>16}",
            r.label,
            r.stats.total_tasks,
            r.stats.total_units,
            r.stats.seconds(),
            r.stats.steals_completed,
            r.stats.peak_stack_usage,
            projected,
        );
        assert!(
            r.stats.peak_stack_usage < paper::STACK_BOUND,
            "{}: stack usage exceeds the paper's 144 KiB bound",
            r.label
        );
        let _ = r.levels;
        let _ = r.paper_bytes;
    }

    println!("\n# Stack usage vs paper (projected at the paper's depth)");
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "benchmark", "projected (B)", "paper (B)", "deviation"
    );
    for r in &rows {
        let projected = (r.per_level * r.paper_levels) as f64;
        println!(
            "{:<22} {:>14.0} {:>14} {:>10}",
            r.label,
            projected,
            r.paper_bytes,
            uat_bench::deviation(projected, r.paper_bytes as f64)
        );
    }
    println!(
        "\nAll runs stayed under the paper's 144 KiB uni-address-region bound \
         (max region reserved per worker: {} KiB; reserved VA per worker: {} KiB).",
        cfg.core.uni_region_size >> 10,
        rows[0].stats.reserved_va_per_worker >> 10,
    );
}
