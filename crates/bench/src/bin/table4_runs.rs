//! Table 4: total tasks/nodes, execution time, and uni-address-region
//! stack usage for the three benchmarks on a 3,840-core simulated FX10.
//!
//! Problem sizes are scaled down (the paper's runs execute 10^11–10^12
//! tasks; the simulator executes every task), so *time* is not
//! comparable; the reproduction targets are the task counts (exact
//! formulas), the stack-usage-per-level calibration, and the abstract's
//! "< 144KB virtual memory for thread migration" bound. For each
//! benchmark the harness also projects the stack usage at the paper's
//! depth from the measured per-level growth.

use std::sync::Mutex;
use uat_base::json::{Json, ToJson};
use uat_bench::{compact_config, paper, require_trace_feature, write_output, OutFlags};
use uat_cluster::{run_indexed, sweep_threads, Engine, RunStats, Workload};
use uat_trace::TraceData;
use uat_workloads::{btc::BTC_FRAME, nqueens, uts, Btc, NQueens, Uts};

/// Run one row's pre-built engine; when a capture slot is passed (the
/// first row, under `--trace`), keep the trace for export. The slot is
/// a `Mutex` only because rows run concurrently on the harness pool;
/// exactly one row ever writes it.
fn run<W: Workload>(engine: Engine<W>, capture: Option<&Mutex<Option<TraceData>>>) -> RunStats {
    match capture {
        #[cfg(feature = "trace")]
        Some(slot) => {
            // A bounded ring per worker: Table 4 runs execute millions
            // of tasks, so keep the newest window of events (the ring
            // drops oldest first) rather than an export too large to
            // open in Perfetto.
            let (stats, trace) = engine.with_tracing(1 << 14).run_traced();
            *slot.lock().expect("trace slot poisoned") = Some(trace);
            stats
        }
        // `require_trace_feature` already rejected `--trace` without the
        // feature, so a capture slot cannot reach this arm.
        #[cfg(not(feature = "trace"))]
        Some(_) => unreachable!("--trace without the trace feature"),
        None => engine.run(),
    }
}

fn main() {
    let flags = OutFlags::parse();
    require_trace_feature(&flags);
    uat_bench::require_metrics_feature(&flags);
    let nodes: u32 = flags
        .rest
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256); // 256 nodes × 15 = 3840 cores
    let cfg = compact_config(nodes);
    println!(
        "# Table 4 — benchmarks on {} simulated cores ({} nodes x 15)\n",
        cfg.topo.total_workers(),
        nodes
    );
    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "benchmark", "tasks", "units", "time (s)", "steals", "stack (B)", "projected (B)"
    );

    // (label, run, measured depth/levels, paper depth, per-level bytes, paper bytes)
    struct Row {
        label: &'static str,
        stats: RunStats,
        levels: u64,
        paper_levels: u64,
        per_level: u64,
        paper_bytes: u64,
    }

    // Under `--trace` the first row (BTC iter=1) is the traced run, and
    // under `--metrics` it is also the row that streams into the
    // registry. All four rows are independent simulations, so they run
    // concurrently on the harness pool; each row's stats are a pure
    // function of its own config, so the table is identical at any
    // thread count.
    let captured: Mutex<Option<TraceData>> = Mutex::new(None);
    let capture = flags.trace.is_some().then_some(&captured);
    #[cfg(feature = "metrics")]
    let registry = uat_bench::wants_metrics(&flags).then(|| {
        std::sync::Arc::new(uat_metrics::Registry::new(cfg.topo.total_workers() as usize))
    });
    let mut row_stats = run_indexed(4, sweep_threads(), |i| match i {
        0 => {
            let engine = Engine::new(cfg.clone(), Btc::new(22, 1));
            #[cfg(feature = "metrics")]
            let engine = match &registry {
                Some(r) => engine.with_metrics(r),
                None => engine,
            };
            run(engine, capture)
        }
        1 => run(Engine::new(cfg.clone(), Btc::new(11, 2)), None),
        2 => run(Engine::new(cfg.clone(), Uts::geometric(12)), None),
        3 => run(Engine::new(cfg.clone(), NQueens::new(12)), None),
        _ => unreachable!(),
    })
    .into_iter();
    let mut next_stats = || row_stats.next().expect("one result per row");
    let rows = vec![
        Row {
            label: "BTC iter=1 depth=22",
            stats: next_stats(),
            levels: 23,
            paper_levels: 39,
            per_level: BTC_FRAME,
            paper_bytes: paper::STACK_USAGE[0].2,
        },
        Row {
            label: "BTC iter=2 depth=11",
            stats: next_stats(),
            levels: 12,
            paper_levels: 20,
            per_level: BTC_FRAME,
            paper_bytes: paper::STACK_USAGE[2].2,
        },
        Row {
            label: "UTS geo depth=12",
            stats: next_stats(),
            levels: 13,
            paper_levels: 18,
            per_level: uts::UTS_NODE_FRAME + 2 * uts::UTS_SPLIT_FRAME,
            paper_bytes: paper::STACK_USAGE[4].2,
        },
        Row {
            label: "NQueens N=12",
            stats: next_stats(),
            levels: 13,
            paper_levels: 18,
            per_level: nqueens::NQ_NODE_FRAME + 3 * nqueens::NQ_SPLIT_FRAME,
            paper_bytes: paper::STACK_USAGE[7].2,
        },
    ];
    let captured = captured.into_inner().expect("trace slot poisoned");

    for r in &rows {
        let projected = r.per_level * r.paper_levels;
        println!(
            "{:<22} {:>14} {:>14} {:>10.4} {:>12} {:>14} {:>16}",
            r.label,
            r.stats.total_tasks,
            r.stats.total_units,
            r.stats.seconds(),
            r.stats.steals_completed,
            r.stats.peak_stack_usage,
            projected,
        );
        assert!(
            r.stats.peak_stack_usage < paper::STACK_BOUND,
            "{}: stack usage exceeds the paper's 144 KiB bound",
            r.label
        );
        let _ = r.levels;
        let _ = r.paper_bytes;
    }

    println!("\n# Stack usage vs paper (projected at the paper's depth)");
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "benchmark", "projected (B)", "paper (B)", "deviation"
    );
    for r in &rows {
        let projected = (r.per_level * r.paper_levels) as f64;
        println!(
            "{:<22} {:>14.0} {:>14} {:>10}",
            r.label,
            projected,
            r.paper_bytes,
            uat_bench::deviation(projected, r.paper_bytes as f64)
        );
    }
    println!(
        "\nAll runs stayed under the paper's 144 KiB uni-address-region bound \
         (max region reserved per worker: {} KiB; reserved VA per worker: {} KiB).",
        cfg.core.uni_region_size >> 10,
        rows[0].stats.reserved_va_per_worker >> 10,
    );

    if let Some(path) = &flags.json {
        let lines = rows.iter().map(|r| {
            Json::obj([
                ("benchmark", Json::str(r.label)),
                ("stats", r.stats.to_json()),
            ])
        });
        write_output(path, &uat_trace::jsonl(lines), "JSONL results");
    }
    if let (Some(path), Some(trace)) = (&flags.trace, &captured) {
        write_output(path, &uat_trace::chrome_trace_json(trace), "Chrome trace");
    }
    #[cfg(feature = "metrics")]
    if let Some(r) = &registry {
        uat_bench::emit_metrics(&flags, &[("sim", r.snapshot())]);
    }
}
