//! Ablation: Section 5.1's crude scheme ("two stack copies upon every
//! context switch") vs the Section 5.2 optimized creation (Figure 4).
//!
//! The paper motivates the optimized scheme with exactly this cost:
//! "Especially in the child-first work stealing scheduler, which
//! immediately switches to the new child upon every task creation, it
//! will be very inefficient." BTC, being pure task creation, shows the
//! worst case.

use uat_bench::kcycles;
use uat_cluster::{Engine, SimConfig};
use uat_workloads::Btc;

fn main() {
    println!("# Ablation — crude uni-address scheme vs Figure 4 optimized creation\n");
    println!(
        "{:<12} {:>14} {:>12} {:>14} {:>10}",
        "scheme", "cycles/task", "time (s)", "throughput/s", "slowdown"
    );
    let mut base_cpt = None;
    for crude in [false, true] {
        let mut cfg = SimConfig::fx10(4);
        cfg.core.uni_region_size = 192 << 10;
        cfg.core.rdma_heap_size = 512 << 10;
        cfg.core.deque_capacity = 1024;
        cfg.crude_switch = crude;
        let stats = Engine::new(cfg, Btc::new(20, 1)).run();
        let cpt = stats.cycles_per_task();
        let slow = base_cpt.map(|b: f64| cpt / b).unwrap_or(1.0);
        base_cpt.get_or_insert(cpt);
        println!(
            "{:<12} {:>14.0} {:>12.4} {:>14.3e} {:>9.2}x",
            if crude { "crude" } else { "optimized" },
            cpt,
            stats.seconds(),
            stats.throughput(),
            slow,
        );
    }
    println!(
        "\nCrude adds a copy-out and copy-in of the parent's frames (here {}B)\n\
         plus the suspend/resume bookkeeping to every spawn — the cost the\n\
         Figure 4 scheme removes by running the child just below the parent.",
        kcycles(uat_workloads::btc::BTC_FRAME as f64)
    );
}
