//! Figure 10 / Table 3: breakdown of work-stealing time.
//!
//! The paper's experiment: "two workers steal a single thread from each
//! other ... The size of the stolen stack frame is 3055 bytes." The
//! [`Chain`] workload reproduces it: on two workers, every link of the
//! chain leaves the joining parent suspended on one worker while the
//! other worker steals it — a steady ping-pong of one 3,055-byte thread.
//!
//! `--backend native|multiprocess` runs the same ping-pong on a real
//! executor instead (two OS threads, or two worker *processes* stealing
//! the suspended thread through the shared uni-address region) and
//! reports steal counts and throughput; the cycle breakdown by phase is
//! a simulator-only view (real steals aren't phase-instrumented).

use uat_base::json::ToJson;
use uat_base::{CostModel, Cycles, Topology};
use uat_bench::{
    deviation, kcycles, paper, require_metrics_feature, require_trace_feature, write_output,
    OutFlags,
};
use uat_cluster::{Engine, SimConfig};
use uat_core::StealPhase;
use uat_workloads::Chain;

fn main() {
    let flags = OutFlags::parse();
    require_trace_feature(&flags);
    require_metrics_feature(&flags);
    let (backend, _rest) = match uat_bench::backend_flag(&flags.rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if backend != uat_bench::Backend::Sim {
        // The paper's two-worker ping-pong on a real executor: every
        // link's suspended parent migrates to the other worker.
        println!(
            "# Figure 10 setup on the {} backend — 2 workers, Chain::fig10(2000)",
            backend.name()
        );
        if let Some(stats) = uat_bench::run_real_backend(backend, 2, 1, Chain::fig10(2_000)) {
            println!(
                "steal-driven links: {} steals over {} joins (phase breakdown is sim-only)",
                stats.steals, stats.joins
            );
        }
        return;
    }
    // The paper's setup: *inter-node* work stealing, one worker per node.
    let mut cfg = SimConfig::fx10(2);
    cfg.topo = Topology::new(2, 1);
    cfg.core.verify_stack_bytes = true;
    let links = 2_000;
    #[cfg(feature = "metrics")]
    let registry = uat_bench::wants_metrics(&flags).then(|| {
        std::sync::Arc::new(uat_metrics::Registry::new(cfg.topo.total_workers() as usize))
    });
    let engine = Engine::new(cfg, Chain::fig10(links));
    #[cfg(feature = "metrics")]
    let engine = match &registry {
        Some(r) => engine.with_metrics(r),
        None => engine,
    };

    #[cfg(feature = "trace")]
    let (stats, trace) = if flags.trace.is_some() {
        // A ring deep enough to hold the whole run, so exported
        // steal-phase sums match the breakdown exactly.
        let (stats, trace) = engine.with_tracing(1 << 20).run_traced();
        (stats, Some(trace))
    } else {
        (engine.run(), None)
    };
    #[cfg(not(feature = "trace"))]
    let stats = engine.run();

    println!("# Figure 10 — breakdown of inter-node work stealing (3,055-byte stack)\n");
    println!(
        "steals completed: {} (attempts: {})\n",
        stats.breakdown.completed, stats.steal_attempts
    );
    println!(
        "{:<16} {:>12} {:>9}   (Table 3 operation)",
        "phase", "mean cycles", "share"
    );
    let total = stats.breakdown.total_mean();
    let table3 = [
        "1 RDMA READ",
        "remote fetch-and-add",
        "2 RDMA READ + 1 RDMA WRITE",
        "suspend running thread",
        "1 RDMA READ (stack frames)",
        "1 RDMA WRITE",
        "resume stolen thread",
    ];
    for (p, op) in StealPhase::ALL.iter().zip(table3) {
        let m = stats.breakdown.phase(*p).mean;
        println!(
            "{:<16} {:>12.0} {:>8.1}%   {}",
            p.name(),
            m,
            100.0 * m / total,
            op
        );
    }
    println!("{:<16} {:>12.0}", "total", total);

    // In this reproduction's Figure 7 flow the ping-pong thief is idle
    // when it steals (the blocked joiner resumed in place), so the
    // in-protocol suspend bar is ~0; the suspend/resume pair of a
    // 3,055-byte thread is the uni-address scheme's own overhead and is
    // measured directly from the cost model, as §6.3 reports it.
    let cost = CostModel::fx10();
    let suspend_pair = (cost.suspend_cost(3_055) + cost.resume_cost(3_055)).get() as f64;
    let adj_total = total
        - stats.breakdown.phase(StealPhase::Suspend).mean
        - stats.breakdown.phase(StealPhase::Resume).mean
        + suspend_pair;

    println!("\n# Paper comparison");
    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "quantity", "measured", "paper", "deviation"
    );
    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "total steal time incl. suspend/resume pair",
        kcycles(adj_total),
        kcycles(paper::STEAL_TOTAL),
        deviation(adj_total, paper::STEAL_TOTAL)
    );
    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "suspend + resume of 3,055-byte thread",
        kcycles(suspend_pair),
        kcycles(paper::STEAL_SUSPEND_RESUME),
        deviation(suspend_pair, paper::STEAL_SUSPEND_RESUME)
    );
    let sr = suspend_pair / adj_total;
    println!(
        "{:<44} {:>9.1}% {:>10} {:>10}",
        "suspend + resume share",
        100.0 * sr,
        "7.7%",
        deviation(sr, 0.077)
    );
    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "lock (software FAA) phase (cycles)",
        kcycles(stats.breakdown.phase(StealPhase::Lock).mean),
        kcycles(paper::FAA_CYCLES),
        deviation(
            stats.breakdown.phase(StealPhase::Lock).mean,
            paper::FAA_CYCLES
        )
    );
    println!(
        "\nstolen stack bytes per transfer: {} (paper: 3055); makespan {}",
        3_055,
        Cycles(stats.makespan.get())
    );

    #[cfg(feature = "trace")]
    if let (Some(path), Some(trace)) = (&flags.trace, &trace) {
        if trace.dropped() > 0 {
            eprintln!(
                "warning: ring overflow dropped {} events; enlarge the ring \
                 for exact phase sums",
                trace.dropped()
            );
        }
        write_output(path, &uat_trace::chrome_trace_json(trace), "Chrome trace");
    }
    if let Some(path) = &flags.json {
        write_output(path, &uat_trace::jsonl([stats.to_json()]), "JSONL results");
    }
    #[cfg(feature = "metrics")]
    if let Some(r) = &registry {
        uat_bench::emit_metrics(&flags, &[("sim", r.snapshot())]);
    }
}
