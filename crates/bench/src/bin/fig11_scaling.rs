//! Figure 11: parallel throughput of BTC (iter=1, iter=2), UTS and
//! NQueens across core counts, with efficiency relative to the smallest
//! point (the paper reports efficiency relative to 480 cores).
//!
//! Usage: `fig11_scaling [btc1|btc2|uts|nqueens|all] [--big]`
//!
//! Like the paper's figures, each benchmark is run at **two problem
//! sizes**: efficiency at the top of the sweep improves with problem
//! size ("all benchmarks scale well in large problems", §6.4). Problem
//! sizes are scaled to the simulator — the paper's runs execute 10^11+
//! tasks; the shape (flat per-core throughput for the larger size) is
//! the reproduction target.
//!
//! Default sweep: 60→960 cores. `--big`: 480→3,840 cores (the paper's
//! range) with larger trees; minutes per curve.

use uat_bench::compact_config;
use uat_cluster::sweep::{render, sweep};
use uat_cluster::Workload;
use uat_workloads::{Btc, NQueens, Uts};

fn run_pair<W: Workload, F: Fn(u32) -> W>(
    title: &str,
    unit: &str,
    nodes: &[u32],
    sizes: (u32, u32),
    make: F,
) {
    let base = compact_config(nodes[0]);
    for size in [sizes.0, sizes.1] {
        let w = make(size);
        println!("## {title} — {} (throughput = {unit}/s)", w.name());
        let pts = sweep(&base, nodes, || make(size));
        print!("{}", render(&pts, unit));
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let big = args.iter().any(|a| a == "--big");

    let nodes: Vec<u32> = if big {
        vec![32, 64, 128, 256] // 480 .. 3840 cores, the paper's range
    } else {
        vec![4, 8, 16, 32, 64] // 60 .. 960 cores
    };

    // (small, large) problem sizes per benchmark.
    let btc1 = if big { (24, 26) } else { (22, 24) };
    let btc2 = if big { (13, 14) } else { (11, 13) };
    let uts = if big { (14, 15) } else { (13, 14) };
    let nq = if big { (13, 14) } else { (12, 13) };

    if which == "btc1" || which == "all" {
        run_pair("Figure 11(a)", "tasks", &nodes, btc1, |d| Btc::new(d, 1));
    }
    if which == "btc2" || which == "all" {
        run_pair("Figure 11(b)", "tasks", &nodes, btc2, |d| Btc::new(d, 2));
    }
    if which == "uts" || which == "all" {
        run_pair("Figure 11(c)", "nodes", &nodes, uts, Uts::geometric);
    }
    if which == "nqueens" || which == "all" {
        run_pair("Figure 11(d)", "nodes", &nodes, nq, NQueens::new);
    }
    println!(
        "Reproduction target: per-core throughput flattens (efficiency rises\n\
         toward ~95%+) as the problem grows, matching the paper's Figure 11."
    );
}
