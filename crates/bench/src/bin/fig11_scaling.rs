//! Figure 11: parallel throughput of BTC (iter=1, iter=2), UTS and
//! NQueens across core counts, with efficiency relative to the smallest
//! point (the paper reports efficiency relative to 480 cores).
//!
//! Usage: `fig11_scaling [btc1|btc2|uts|nqueens|all] [--big]
//! [--json <path>] [--trace <path>] [--metrics] [--metrics-json <path>]`
//!
//! `--json` writes one JSONL line per sweep point (benchmark, problem
//! size, worker count, efficiency, full `RunStats`). `--trace` writes a
//! Chrome trace of one representative run — the first selected
//! benchmark at its small size on the smallest machine of the sweep —
//! openable at `ui.perfetto.dev`. `--metrics`/`--metrics-json` export
//! the final registry snapshot of a representative run chosen the same
//! way (Prometheus text to stderr, JSON to the given path).
//!
//! Like the paper's figures, each benchmark is run at **two problem
//! sizes**: efficiency at the top of the sweep improves with problem
//! size ("all benchmarks scale well in large problems", §6.4). Problem
//! sizes are scaled to the simulator — the paper's runs execute 10^11+
//! tasks; the shape (flat per-core throughput for the larger size) is
//! the reproduction target.
//!
//! Default sweep: 60→960 cores. `--big`: 480→3,840 cores (the paper's
//! range) with larger trees; minutes per curve.
//!
//! `--backend native|multiprocess` sweeps the same benchmarks on a real
//! executor instead (1→4 OS threads or worker processes on this
//! machine, problem sizes scaled down to wall-clock budgets), reporting
//! measured tasks/s per worker count — the single-node analogue of the
//! figure's throughput axis.

use uat_base::json::{Json, ToJson};
use uat_bench::{compact_config, require_trace_feature, write_output, OutFlags};
use uat_cluster::sweep::{render, sweep};
use uat_cluster::Workload;
use uat_workloads::{Btc, NQueens, Uts};

fn run_pair<W: Workload + Send, F: Fn(u32) -> W + Sync>(
    title: &str,
    unit: &str,
    nodes: &[u32],
    sizes: (u32, u32),
    make: F,
    lines: &mut Vec<Json>,
) {
    let base = compact_config(nodes[0]);
    for size in [sizes.0, sizes.1] {
        let w = make(size);
        println!("## {title} — {} (throughput = {unit}/s)", w.name());
        let pts = sweep(&base, nodes, || make(size));
        print!("{}", render(&pts, unit));
        println!();
        for p in &pts {
            lines.push(Json::obj([
                ("figure", Json::str(title)),
                ("benchmark", Json::str(w.name())),
                ("size", Json::UInt(size as u64)),
                ("workers", Json::UInt(p.workers as u64)),
                ("efficiency", Json::Num(p.efficiency)),
                ("stats", p.stats.to_json()),
            ]));
        }
    }
}

/// One metered run of the sweep's smallest machine; its final registry
/// snapshot is what `--metrics`/`--metrics-json` export.
#[cfg(feature = "metrics")]
fn metered_run<W: Workload>(flags: &OutFlags, nodes: u32, w: W) {
    let cfg = compact_config(nodes);
    let registry =
        std::sync::Arc::new(uat_metrics::Registry::new(cfg.topo.total_workers() as usize));
    uat_cluster::Engine::new(cfg, w)
        .with_metrics(&registry)
        .run();
    uat_bench::emit_metrics(flags, &[("sim", registry.snapshot())]);
}

/// One traced run of the sweep's smallest machine, exported for
/// Perfetto.
#[cfg(feature = "trace")]
fn write_trace<W: Workload>(path: &std::path::Path, nodes: u32, w: W) {
    // A bounded ring per worker: big sweeps run millions of tasks, so
    // keep the newest window of events (the ring drops oldest first)
    // rather than an export too large to open in Perfetto.
    let (_, trace) = uat_cluster::Engine::new(compact_config(nodes), w)
        .with_tracing(1 << 14)
        .run_traced();
    write_output(path, &uat_trace::chrome_trace_json(&trace), "Chrome trace");
}

/// `--backend native|multiprocess`: the single-node real-executor sweep.
fn real_sweep(backend: uat_bench::Backend, which: &str) {
    println!(
        "# Figure 11 on the {} backend — worker sweep on this machine (measured tasks/s)",
        backend.name()
    );
    // Problem sizes scaled to wall-clock budgets (the sim sizes are
    // cycle-budget sized); Work cycles are spun faithfully (divisor 1).
    for workers in [1usize, 2, 4] {
        println!("## {workers} worker(s)");
        if which == "btc1" || which == "all" {
            uat_bench::run_real_backend(backend, workers, 1, Btc::new(16, 1));
        }
        if which == "btc2" || which == "all" {
            uat_bench::run_real_backend(backend, workers, 1, Btc::new(9, 2));
        }
        if which == "uts" || which == "all" {
            uat_bench::run_real_backend(backend, workers, 1, Uts::geometric(11));
        }
        if which == "nqueens" || which == "all" {
            uat_bench::run_real_backend(backend, workers, 1, NQueens::new(8));
        }
    }
}

fn main() {
    let flags = OutFlags::parse();
    require_trace_feature(&flags);
    uat_bench::require_metrics_feature(&flags);
    let (backend, rest) = match uat_bench::backend_flag(&flags.rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let which = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let big = rest.iter().any(|a| a == "--big");
    if backend != uat_bench::Backend::Sim {
        real_sweep(backend, &which);
        return;
    }

    let nodes: Vec<u32> = if big {
        vec![32, 64, 128, 256] // 480 .. 3840 cores, the paper's range
    } else {
        vec![4, 8, 16, 32, 64] // 60 .. 960 cores
    };

    // (small, large) problem sizes per benchmark.
    let btc1 = if big { (24, 26) } else { (22, 24) };
    let btc2 = if big { (13, 14) } else { (11, 13) };
    let uts = if big { (14, 15) } else { (13, 14) };
    let nq = if big { (13, 14) } else { (12, 13) };

    let mut lines = Vec::new();
    if which == "btc1" || which == "all" {
        run_pair(
            "Figure 11(a)",
            "tasks",
            &nodes,
            btc1,
            |d| Btc::new(d, 1),
            &mut lines,
        );
    }
    if which == "btc2" || which == "all" {
        run_pair(
            "Figure 11(b)",
            "tasks",
            &nodes,
            btc2,
            |d| Btc::new(d, 2),
            &mut lines,
        );
    }
    if which == "uts" || which == "all" {
        run_pair(
            "Figure 11(c)",
            "nodes",
            &nodes,
            uts,
            Uts::geometric,
            &mut lines,
        );
    }
    if which == "nqueens" || which == "all" {
        run_pair(
            "Figure 11(d)",
            "nodes",
            &nodes,
            nq,
            NQueens::new,
            &mut lines,
        );
    }
    println!(
        "Reproduction target: per-core throughput flattens (efficiency rises\n\
         toward ~95%+) as the problem grows, matching the paper's Figure 11."
    );

    if let Some(path) = &flags.json {
        write_output(path, &uat_trace::jsonl(lines), "JSONL sweep points");
    }
    #[cfg(feature = "trace")]
    if let Some(path) = &flags.trace {
        match which.as_str() {
            "btc2" => write_trace(path, nodes[0], Btc::new(btc2.0, 2)),
            "uts" => write_trace(path, nodes[0], Uts::geometric(uts.0)),
            "nqueens" => write_trace(path, nodes[0], NQueens::new(nq.0)),
            _ => write_trace(path, nodes[0], Btc::new(btc1.0, 1)),
        }
    }
    #[cfg(feature = "metrics")]
    if uat_bench::wants_metrics(&flags) {
        match which.as_str() {
            "btc2" => metered_run(&flags, nodes[0], Btc::new(btc2.0, 2)),
            "uts" => metered_run(&flags, nodes[0], Uts::geometric(uts.0)),
            "nqueens" => metered_run(&flags, nodes[0], NQueens::new(nq.0)),
            _ => metered_run(&flags, nodes[0], Btc::new(btc1.0, 1)),
        }
    }
}
