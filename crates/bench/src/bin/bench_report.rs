//! Benchmark-trajectory report: pinned engine micro-benchmarks plus the
//! Figure 11 mini-sweep, appended to committed baseline files.
//!
//! Usage: `bench_report [--quick] [--label <name>] [--check <baseline>]
//! [--out-dir <dir>]`
//!
//! Two artifacts, each a stable append-only schema (one labelled entry
//! per invocation, newest last), so the repository accumulates a
//! measured performance trajectory across PRs instead of anecdotes in
//! commit messages:
//!
//! - `BENCH_engine.json` (`uat-bench/engine/v1`): events/sec of the
//!   simulation engine on pinned `(config, workload)` cases — best of N
//!   runs, so the number is a property of the code, not of scheduler
//!   noise.
//! - `BENCH_fig11.json` (`uat-bench/fig11/v1`): wall-clock of the
//!   Figure 11 mini-sweep run serially and on the parallel harness,
//!   with the two results verified **bit-identical** before anything is
//!   written (the speedup must come from the harness, never from
//!   changing the simulation).
//!
//! `--quick` runs one iteration per case and a smaller sweep — the CI
//! smoke shape. `--check <baseline>` compares events/sec against the
//! matching cases of the baseline's last entry and exits non-zero on a
//! >20% regression.

use std::path::{Path, PathBuf};
use std::time::Instant;
use uat_base::json::{Json, ToJson};
use uat_bench::compact_config;
use uat_cluster::{sweep_threads, sweep_with_threads, Engine, SimConfig};
use uat_fiber::NativeRunner;
use uat_model::{sequential_profile, Workload};
use uat_workloads::{Btc, Chain, Fib, NQueens, Uts};

/// Fraction of the baseline events/sec below which `--check` fails.
const REGRESSION_FLOOR: f64 = 0.8;

struct CaseResult {
    name: &'static str,
    events: u64,
    best_wall_s: f64,
}

impl CaseResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best_wall_s
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("events", Json::UInt(self.events)),
            ("best_wall_s", Json::Num(self.best_wall_s)),
            ("events_per_sec", Json::Num(self.events_per_sec())),
        ])
    }
}

fn time_case<W: Workload>(
    name: &'static str,
    iters: u32,
    mk: impl Fn() -> (SimConfig, W),
) -> CaseResult {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..iters {
        let (cfg, w) = mk();
        let t0 = Instant::now();
        let stats = Engine::new(cfg, w).run();
        best = best.min(t0.elapsed().as_secs_f64());
        events = stats.events;
    }
    CaseResult {
        name,
        events,
        best_wall_s: best,
    }
}

/// Critical-path profile of one pinned traced case (uts11 on the
/// 60-worker machine), so the trajectory records *where* the makespan
/// goes, not just how fast the simulator replays it. `Null` in
/// hook-free (`--no-default-features`) builds.
#[cfg(feature = "trace")]
fn critical_path_entry() -> Json {
    let (stats, trace) = Engine::new(SimConfig::fx10(4), Uts::geometric(11))
        .with_tracing(1 << 20)
        .run_traced();
    let dag = match uat_trace::Dag::build(&trace) {
        Ok(dag) => dag,
        Err(e) => {
            eprintln!("error: cannot profile the pinned case: {e}");
            std::process::exit(1);
        }
    };
    let cp = uat_trace::critical_path(&dag);
    assert_eq!(
        cp.total, stats.makespan,
        "critical path must tile the makespan"
    );
    Json::obj([
        ("case", Json::str("uts11_60w")),
        ("makespan", Json::UInt(stats.makespan.get())),
        ("summary", cp.summary().to_json()),
    ])
}

#[cfg(not(feature = "trace"))]
fn critical_path_entry() -> Json {
    Json::Null
}

/// Run one pinned workload on the native fiber backend, cross-check its
/// expansion against the sequential ground truth (the differential
/// invariant — a benchmark that executed the wrong tree must not report
/// a number), and record wall-clock throughput.
fn native_case<W>(name: &'static str, workers: usize, w: W) -> Json
where
    W: Workload + Send + Sync + 'static,
    W::Desc: 'static,
{
    let p = sequential_profile(&w);
    let s = NativeRunner::new(workers).run(w);
    assert_eq!(s.total_tasks, p.tasks, "native expansion diverged: {name}");
    assert_eq!(s.total_units, p.units, "native units diverged: {name}");
    assert_eq!(
        s.join_fingerprint, p.join_fingerprint,
        "native join-tree shape diverged: {name}"
    );
    println!("{}", s.summary_line());
    Json::obj([
        ("name", Json::str(name)),
        ("workload", Json::str(s.workload.as_str())),
        ("workers", Json::UInt(u64::from(s.workers))),
        ("tasks", Json::UInt(s.total_tasks)),
        ("units", Json::UInt(s.total_units)),
        ("wall_s", Json::Num(s.wall.as_secs_f64())),
        ("units_per_sec", Json::Num(s.throughput())),
        ("steals", Json::UInt(s.steals)),
        ("peak_frame_bytes", Json::UInt(s.peak_frame_bytes)),
    ])
}

/// One pinned workload on the multiprocess backend (forked worker
/// processes, one shared uni-address region), with the same
/// ground-truth cross-check as [`native_case`].
fn multiprocess_case<W>(name: &'static str, workers: usize, w: W) -> Json
where
    W: Workload + Send + Sync + 'static,
    W::Desc: Copy + 'static,
{
    let p = sequential_profile(&w);
    let s = uat_fiber::MultiProcessRunner::new(workers).run(w);
    assert_eq!(s.total_tasks, p.tasks, "mp expansion diverged: {name}");
    assert_eq!(
        s.join_fingerprint, p.join_fingerprint,
        "mp join-tree shape diverged: {name}"
    );
    println!("{}", s.summary_line_as("MultiProc"));
    Json::obj([
        ("name", Json::str(name)),
        ("workload", Json::str(s.workload.as_str())),
        ("workers", Json::UInt(u64::from(s.workers))),
        ("tasks", Json::UInt(s.total_tasks)),
        ("wall_s", Json::Num(s.wall.as_secs_f64())),
        (
            "tasks_per_sec",
            Json::Num(s.total_tasks as f64 / s.wall.as_secs_f64()),
        ),
        ("steals", Json::UInt(s.steals)),
        ("peak_frame_bytes", Json::UInt(s.peak_frame_bytes)),
    ])
}

/// The multiprocess-backend section of the engine artifact. Skipped
/// (with the kernel probe's reason recorded in the artifact) where
/// `memfd_create` + `MAP_FIXED_NOREPLACE` are unavailable.
fn multiprocess_section(quick: bool) -> Json {
    if let Err(reason) = uat_fiber::MultiProcessRunner::probe_support() {
        println!("\n# multiprocess backend: skipped ({reason})");
        return Json::obj([("skipped", Json::str(reason.as_str()))]);
    }
    let fib = if quick { 16 } else { 20 };
    let rounds = if quick { 50 } else { 200 };
    println!("\n# multiprocess uni-address backend (worker processes)");
    Json::obj([(
        "cases",
        Json::Arr(vec![
            multiprocess_case("fib_mp_2w", 2, Fib::new(fib)),
            multiprocess_case("fib_mp_4w", 4, Fib::new(fib)),
            multiprocess_case("chain_mp_2w", 2, Chain::fig10(rounds)),
        ]),
    )])
}

/// Best-of rates and the robust overhead estimate of an instrumented
/// configuration over its baseline.
#[cfg(any(feature = "trace", feature = "metrics"))]
struct Paired {
    base_best: f64,
    with_best: f64,
    overhead_pct: f64,
}

/// Measure `with`'s throughput cost over `base` (both return a rate) in
/// a way that survives the host-speed drift and scheduling spikes of
/// small shared hosts, where sequential batches drift apart by more
/// than the effect being measured. Each rep runs base-with-with-base —
/// each side once per half, symmetric around the rep's midpoint, so
/// drift within the rep cancels instead of always penalizing whichever
/// side runs second — and compares each side's better run (spike
/// rejection); the reported overhead is the median rep ratio (quiet- or
/// loud-window rejection). Comparing global best-of rates instead
/// proved bimodal: whichever configuration caught the one quiet window
/// "won" by several percent.
#[cfg(any(feature = "trace", feature = "metrics"))]
fn paired_overhead(
    reps: usize,
    mut base: impl FnMut() -> f64,
    mut with: impl FnMut() -> f64,
) -> Paired {
    let mut base_best = f64::MIN;
    let mut with_best = f64::MIN;
    let mut ratios = Vec::new();
    for _ in 0..reps {
        let b1 = base();
        let w1 = with();
        let w2 = with();
        let b2 = base();
        base_best = base_best.max(b1.max(b2));
        with_best = with_best.max(w1.max(w2));
        ratios.push(100.0 * (b1.max(b2) / w1.max(w2) - 1.0));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    Paired {
        base_best,
        with_best,
        overhead_pct: ratios[ratios.len() / 2],
    }
}

/// Traced-vs-untraced native throughput on one pinned case, single
/// worker for determinism (no steal races in the comparison). The
/// untraced side still compiles the hooks — this build has the `trace`
/// feature on but installs no sink, so it measures the dormant-hook
/// path the tentpole promises is near-free. Gated: installing the sink
/// may cost at most 5% tasks/sec (pairwise median over N reps). A trip
/// is reported to `main`, which still writes the artifacts — the
/// measurement is the evidence — before exiting non-zero.
#[cfg(feature = "trace")]
fn hook_overhead_entry(quick: bool) -> (Json, Option<String>) {
    let reps = if quick { 5 } else { 9 };
    // Size the ring to the case: nqueens7 on one worker is a ~12ms run
    // emitting a few thousand events, and first-touching the default
    // multi-megabyte ring inside that window would charge the allocator,
    // not the hooks, several percent. Drop-freedom is still asserted.
    let runner = NativeRunner::new(1).with_tracing(1 << 14);
    let rate = |tasks: u64, wall: std::time::Duration| tasks as f64 / wall.as_secs_f64();
    let p = paired_overhead(
        reps,
        || {
            let s = runner.run(NQueens::new(7));
            rate(s.total_tasks, s.wall)
        },
        || {
            let (s, t) = runner.run_traced(NQueens::new(7));
            assert_eq!(s.trace_dropped, 0, "overhead case must not drop events");
            assert!(
                t.data.makespan.get() > 0,
                "traced overhead case produced an empty trace"
            );
            rate(s.total_tasks, s.wall)
        },
    );
    let overhead_pct = p.overhead_pct;
    println!(
        "hook_overhead: nqueens7 w=1 untraced={:.0}/s traced={:.0}/s overhead={overhead_pct:+.2}%",
        p.base_best, p.with_best
    );
    let fail = (overhead_pct > 5.0).then(|| {
        format!("installing the trace sink costs {overhead_pct:.2}% tasks/sec (budget 5%)")
    });
    let entry = Json::obj([
        ("case", Json::str("nqueens7_w1")),
        ("untraced_tasks_per_sec", Json::Num(p.base_best)),
        ("traced_tasks_per_sec", Json::Num(p.with_best)),
        ("overhead_pct", Json::Num(overhead_pct)),
    ]);
    (entry, fail)
}

#[cfg(not(feature = "trace"))]
fn hook_overhead_entry(_quick: bool) -> (Json, Option<String>) {
    (Json::Null, None)
}

/// Metered-vs-plain throughput with the live-metrics layer on, both
/// backends: the native runner with the timed tier plus a sampler at
/// the default interval (uts11, one worker — deterministic, no steal
/// races), and the sim engine streaming the pinned `uts11_60w` case
/// into a registry. Configurations interleave within each rep so
/// host-speed drift cancels instead of biasing whichever batch ran
/// last; the gate compares the pairwise-median ratio, like
/// `hook_overhead`. Gated: the native hooks + sampler may cost at most
/// 5% tasks/sec. The sim side is recorded but ungated — the
/// simulator's single-threaded event loop is ~2x noisier than its
/// metrics cost.
#[cfg(feature = "metrics")]
fn metrics_overhead_entry(quick: bool) -> (Json, Option<String>) {
    let reps = if quick { 3 } else { 5 };
    let rate = |n: u64, wall_s: f64| n as f64 / wall_s;
    let native = paired_overhead(
        reps,
        || {
            let s = NativeRunner::new(1).run(Uts::geometric(11));
            rate(s.total_tasks, s.wall.as_secs_f64())
        },
        || {
            let (s, snap) = NativeRunner::new(1)
                .with_sampler(uat_fiber::nmetrics::DEFAULT_SAMPLE_INTERVAL)
                .run_metered(Uts::geometric(11));
            assert_eq!(
                snap.total(uat_metrics::names::TASKS),
                s.total_tasks,
                "metered native run lost task counts"
            );
            rate(s.total_tasks, s.wall.as_secs_f64())
        },
    );
    let sim = paired_overhead(
        reps,
        || {
            let t0 = Instant::now();
            let stats = Engine::new(SimConfig::fx10(4), Uts::geometric(11)).run();
            rate(stats.events, t0.elapsed().as_secs_f64())
        },
        || {
            let cfg = SimConfig::fx10(4);
            let registry =
                std::sync::Arc::new(uat_metrics::Registry::new(cfg.topo.total_workers() as usize));
            let t0 = Instant::now();
            let stats = Engine::new(cfg, Uts::geometric(11))
                .with_metrics(&registry)
                .run();
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(
                registry.snapshot().total(uat_metrics::names::TASKS),
                stats.total_tasks,
                "sim registry lost task counts"
            );
            rate(stats.events, wall)
        },
    );
    let native_pct = native.overhead_pct;
    let sim_pct = sim.overhead_pct;
    println!(
        "metrics_overhead: uts11 w=1 plain={:.0}/s metered+sampler={:.0}/s \
         overhead={native_pct:+.2}%",
        native.base_best, native.with_best
    );
    println!(
        "metrics_overhead: uts11_60w sim plain={:.0}ev/s metered={:.0}ev/s \
         overhead={sim_pct:+.2}%",
        sim.base_best, sim.with_best
    );
    let fail = (native_pct > 5.0).then(|| {
        format!("the native metrics tier + sampler costs {native_pct:.2}% tasks/sec (budget 5%)")
    });
    let entry = Json::obj([
        ("native_case", Json::str("uts11_w1")),
        ("plain_tasks_per_sec", Json::Num(native.base_best)),
        ("metered_tasks_per_sec", Json::Num(native.with_best)),
        ("overhead_pct", Json::Num(native_pct)),
        ("sim_case", Json::str("uts11_60w")),
        ("sim_plain_events_per_sec", Json::Num(sim.base_best)),
        ("sim_metered_events_per_sec", Json::Num(sim.with_best)),
        ("sim_overhead_pct", Json::Num(sim_pct)),
    ]);
    (entry, fail)
}

#[cfg(not(feature = "metrics"))]
fn metrics_overhead_entry(_quick: bool) -> (Json, Option<String>) {
    (Json::Null, None)
}

/// The native-backend section of the engine artifact: the same `Action`
/// programs the simulator times, executed for real on fibers. `hooks`
/// records whether this build compiled the trace hooks, so trajectory
/// diffs can compare hook-free and hooked builds of the same cases (the
/// zero-cost-stub check); `hook_overhead` gates the in-build cost of
/// actually installing a sink.
fn native_section(quick: bool, host_threads: usize, gates: &mut Vec<String>) -> Json {
    // Steal dynamics need >1 worker even on single-CPU hosts.
    let workers = host_threads.clamp(2, 4);
    let fib = if quick { 16 } else { 20 };
    let rounds = if quick { 50 } else { 200 };
    println!("\n# native fiber backend (workers={workers})");
    let cases = Json::Arr(vec![
        native_case("fib_native", workers, Fib::new(fib)),
        native_case("nqueens7_native", workers, NQueens::new(7)),
        native_case("chain_native", workers, Chain::fig10(rounds)),
    ]);
    let (hook_overhead, fail) = hook_overhead_entry(quick);
    gates.extend(fail);
    Json::obj([
        ("hooks", Json::Bool(cfg!(feature = "trace"))),
        ("cases", cases),
        ("hook_overhead", hook_overhead),
    ])
}

/// Load an artifact, returning its entries (empty on first run).
fn load_entries(path: &Path, schema: &str) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {} is not valid JSON: {e}", path.display());
            std::process::exit(1);
        }
    };
    match (doc.field("schema"), doc.field("entries")) {
        (Ok(s), Ok(Json::Arr(entries))) if s.as_str() == Ok(schema) => entries.clone(),
        _ => {
            eprintln!("error: {} does not have schema {schema}", path.display());
            std::process::exit(1);
        }
    }
}

fn write_artifact(path: &Path, schema: &str, mut entries: Vec<Json>, entry: Json) {
    entries.push(entry);
    let doc = Json::obj([
        ("schema", Json::str(schema)),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(path, doc.pretty()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// Compare measured cases against the last entry of `baseline`; report
/// and return how many regressed past [`REGRESSION_FLOOR`].
fn check_regressions(baseline: &Path, cases: &[CaseResult]) -> usize {
    let entries = load_entries(baseline, "uat-bench/engine/v1");
    let Some(last) = entries.last() else {
        eprintln!(
            "check: {} has no entries; nothing to compare",
            baseline.display()
        );
        return 0;
    };
    let label = last
        .field("label")
        .and_then(|l| l.as_str().map(str::to_string))
        .unwrap_or_else(|_| "?".into());
    let mut regressed = 0;
    for case in cases {
        let base_rate = last.field("cases").and_then(|cs| {
            cs.as_arr()?
                .iter()
                .find(|c| c.field("name").and_then(|n| n.as_str()) == Ok(case.name))
                .ok_or_else(|| uat_base::json::JsonError {
                    msg: format!("case {} not in baseline", case.name),
                })?
                .field("events_per_sec")?
                .as_f64()
        });
        match base_rate {
            Ok(base) => {
                let ratio = case.events_per_sec() / base;
                let verdict = if ratio < REGRESSION_FLOOR {
                    regressed += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "check {:<12} {:>12.0} ev/s vs {:>12.0} ({label}) = {:>5.2}x  {verdict}",
                    case.name,
                    case.events_per_sec(),
                    base,
                    ratio,
                );
            }
            Err(e) => println!("check {:<12} skipped: {e}", case.name),
        }
    }
    regressed
}

fn main() {
    let mut quick = false;
    let mut label = String::from("dev");
    let mut check: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = value("--label"),
            "--check" => check = Some(PathBuf::from(value("--check"))),
            "--out-dir" => out_dir = PathBuf::from(value("--out-dir")),
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    // Short cases are exposed to host scheduling noise; more iterations
    // make best-of robust without hurting the long cases much.
    let iters = if quick { 1 } else { 5 };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- engine micro-benchmarks (pinned cases) ---
    println!("# engine events/sec (best of {iters})");
    let cases = vec![
        time_case("btc16_120w", iters, || {
            (SimConfig::fx10(8), Btc::new(16, 1))
        }),
        time_case("uts11_60w", iters, || {
            (SimConfig::fx10(4), Uts::geometric(11))
        }),
    ];
    for c in &cases {
        println!(
            "{:<12} events={:>9} best_wall_s={:.4} events_per_sec={:.0}",
            c.name,
            c.events,
            c.best_wall_s,
            c.events_per_sec()
        );
    }

    // --- Figure 11 mini-sweep: serial vs parallel harness ---
    let depth = if quick { 14 } else { 16 };
    let nodes = [2u32, 4, 8, 16];
    let base = compact_config(2);
    let threads = sweep_threads();
    // Warm up allocator + page cache once so the serial-vs-parallel
    // comparison measures the harness, not which run went first.
    let _ = sweep_with_threads(&base, &nodes[..1], 1, || Btc::new(depth, 1));
    let t0 = Instant::now();
    let serial = sweep_with_threads(&base, &nodes, 1, || Btc::new(depth, 1));
    let serial_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = sweep_with_threads(&base, &nodes, threads, || Btc::new(depth, 1));
    let parallel_wall = t0.elapsed().as_secs_f64();
    // The harness must never change the simulation: compare the full
    // serialized stats of every point before writing anything.
    let bit_identical = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.stats.to_json().to_string() == b.stats.to_json().to_string());
    assert!(
        bit_identical,
        "parallel sweep diverged from the serial baseline"
    );
    let makespan_sum: u64 = serial.iter().map(|p| p.stats.makespan.get()).sum();
    println!("\n# fig11 mini-sweep (Btc depth={depth}, nodes {nodes:?})");
    println!(
        "serial_wall_s={serial_wall:.4} parallel_wall_s={parallel_wall:.4} \
         threads={threads} speedup={:.2}x makespan_sum={makespan_sum} bit_identical={bit_identical}",
        serial_wall / parallel_wall
    );

    // --- native fiber backend ---
    // Overhead gates report failures here instead of exiting on the
    // spot: the artifacts are the evidence for diagnosing a trip, so
    // they are always written before the process exits non-zero.
    let mut gates = Vec::new();
    let native = native_section(quick, host_threads, &mut gates);
    let multiprocess = multiprocess_section(quick);
    let (metrics_overhead, fail) = metrics_overhead_entry(quick);
    gates.extend(fail);

    // --- artifacts ---
    let engine_path = out_dir.join("BENCH_engine.json");
    let engine_entry = Json::obj([
        ("label", Json::str(label.as_str())),
        ("quick", Json::Bool(quick)),
        ("host_threads", Json::UInt(host_threads as u64)),
        (
            "cases",
            Json::Arr(cases.iter().map(CaseResult::to_json).collect()),
        ),
        ("native", native),
        ("multiprocess", multiprocess),
        ("metrics_overhead", metrics_overhead),
        ("critical_path", critical_path_entry()),
    ]);
    let fig11_path = out_dir.join("BENCH_fig11.json");
    let fig11_entry = Json::obj([
        ("label", Json::str(label.as_str())),
        ("quick", Json::Bool(quick)),
        ("depth", Json::UInt(depth as u64)),
        (
            "nodes",
            Json::Arr(nodes.iter().map(|&n| Json::UInt(n as u64)).collect()),
        ),
        ("threads", Json::UInt(threads as u64)),
        ("serial_wall_s", Json::Num(serial_wall)),
        ("parallel_wall_s", Json::Num(parallel_wall)),
        ("speedup", Json::Num(serial_wall / parallel_wall)),
        ("makespan_sum", Json::UInt(makespan_sum)),
        ("bit_identical", Json::Bool(bit_identical)),
    ]);

    // Regression check runs against the baseline as committed, before
    // this invocation's entry is appended.
    let regressed = check
        .as_deref()
        .map_or(0, |path| check_regressions(path, &cases));

    write_artifact(
        &engine_path,
        "uat-bench/engine/v1",
        load_entries(&engine_path, "uat-bench/engine/v1"),
        engine_entry,
    );
    write_artifact(
        &fig11_path,
        "uat-bench/fig11/v1",
        load_entries(&fig11_path, "uat-bench/fig11/v1"),
        fig11_entry,
    );

    for g in &gates {
        eprintln!("error: {g}");
    }
    if regressed > 0 {
        eprintln!("error: {regressed} case(s) regressed >20% vs baseline");
    }
    if !gates.is_empty() || regressed > 0 {
        std::process::exit(1);
    }
}
