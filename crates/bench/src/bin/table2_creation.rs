//! Table 2: task creation overhead.
//!
//! Two sets of numbers:
//! 1. **Native** — real `rdtsc` cycles on this machine for the three
//!    creation mechanisms (`uat-fiber`): Figure 4's uni-address path, a
//!    MassiveThreads-like pooled-stack spawn, and a Cilk-like seq call.
//! 2. **Modelled** — the calibrated cost-model values used by the
//!    simulator, for both of the paper's platforms.

use uat_base::CostModel;
use uat_bench::{deviation, paper};
use uat_fiber::{measure_creation, CreationStrategy};

fn main() {
    println!("# Table 2 — thread creation overhead (cycles)\n");

    println!("## Native measurement on this x86-64 host (rdtsc, min-of-batches)");
    println!(
        "{:<36} {:>10} {:>16} {:>10}",
        "strategy", "measured", "paper (Xeon)", "deviation"
    );
    let strategies = [
        (CreationStrategy::UniAddr, paper::CREATION_XEON[0].1),
        (CreationStrategy::StackPool, paper::CREATION_XEON[1].1),
        (CreationStrategy::SeqCall, paper::CREATION_XEON[2].1),
    ];
    for (s, reference) in strategies {
        let measured = measure_creation(s, 5_000, 40);
        println!(
            "{:<36} {:>10.0} {:>16.0} {:>10}",
            s.name(),
            measured,
            reference,
            deviation(measured, reference)
        );
    }

    println!("\n## Simulator cost model");
    for (label, cost, col) in [
        (
            "SPARC64IXfx (FX10 profile)",
            CostModel::fx10(),
            &paper::CREATION_SPARC,
        ),
        (
            "Xeon E5-2660 profile",
            CostModel::xeon(),
            &paper::CREATION_XEON,
        ),
    ] {
        let modelled = cost.spawn_cost().get() as f64;
        let reference = col[0].1;
        println!(
            "{:<36} {:>10.0} {:>16.0} {:>10}",
            label,
            modelled,
            reference,
            deviation(modelled, reference)
        );
    }

    println!(
        "\nNote: absolute native numbers depend on the host CPU; the paper's \
         qualitative result is the ordering (Cilk < uni-address <= MassiveThreads) \
         and the ~100-cycle magnitude of the uni-address path on x86-64."
    );
}
