//! Causal profiler: critical path and what-if analysis of one run.
//!
//! Usage: `uat_profile [btc1|btc2|uts|nqueens] [--size S] [--nodes N]
//! [--wpn W] [--seed X] [--ring CAP] [--what-if class=factor]...
//! [--validate] [--trace <path>] [--json <path>]`
//!
//! Runs one fig11-style point with full event tracing, reconstructs the
//! happens-before DAG (program order, spawn, steal, join, FAA-queue
//! edges — see DESIGN.md §8), and reports:
//!
//! - the **critical path**: the chain of segments that gated the
//!   makespan, with its cycles attributed to the [`Bucket`] taxonomy.
//!   The path total equals the makespan *exactly* (checked; non-zero
//!   exit on violation — CI relies on this).
//! - **what-if predictions**: the makespan if one cost class (`rdma-read`,
//!   `faa`, `suspend`) were scaled by a factor, from a frozen-schedule
//!   replay of the DAG. `--validate` re-runs the engine with the
//!   correspondingly scaled [`CostModel`](uat_base::CostModel) and
//!   reports the prediction error against that ground truth.
//!
//! Defaults: 4 nodes × 16 workers = the 64-worker configuration;
//! per-benchmark sizes small enough to profile in seconds (the fig11
//! sweep sizes work too, with a bigger `--ring`). `--trace` writes the
//! flow-annotated Chrome trace (steal arrows across worker tracks);
//! `--json` a machine-readable JSONL summary.

#[cfg(feature = "trace")]
use uat_base::json::{Json, ToJson};
#[cfg(feature = "trace")]
use uat_base::Topology;
#[cfg(feature = "trace")]
use uat_bench::{compact_config, write_output, OutFlags};
#[cfg(feature = "trace")]
use uat_cluster::{SimConfig, Workload};
#[cfg(feature = "trace")]
use uat_workloads::{Btc, NQueens, Uts};

#[cfg(not(feature = "trace"))]
fn main() {
    eprintln!(
        "error: uat_profile requires the `trace` feature; rebuild without --no-default-features"
    );
    std::process::exit(2);
}

#[cfg(feature = "trace")]
fn main() {
    real_main()
}

#[cfg(feature = "trace")]
struct Args {
    bench: String,
    size: Option<u32>,
    nodes: u32,
    wpn: u32,
    seed: Option<u64>,
    ring: usize,
    what_if: Vec<(uat_trace::CostClass, f64)>,
    validate: bool,
}

#[cfg(feature = "trace")]
fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut a = Args {
        bench: "btc1".into(),
        size: None,
        nodes: 4,
        wpn: 16,
        seed: None,
        ring: 1 << 20,
        what_if: Vec::new(),
        validate: false,
    };
    let mut bench_set = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match arg.as_str() {
            "--size" => a.size = Some(parse_num(&value("--size")?)?),
            "--nodes" => a.nodes = parse_num(&value("--nodes")?)?,
            "--wpn" => a.wpn = parse_num(&value("--wpn")?)?,
            "--seed" => a.seed = Some(parse_num(&value("--seed")?)?),
            "--ring" => a.ring = parse_num(&value("--ring")?)?,
            "--validate" => a.validate = true,
            "--what-if" => a.what_if.push(parse_what_if(&value("--what-if")?)?),
            other if !other.starts_with("--") && !bench_set => {
                bench_set = true;
                a.bench = other.into();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if a.what_if.is_empty() {
        // Default question: which cost class, doubled, hurts the most?
        a.what_if = uat_trace::CostClass::ALL
            .iter()
            .map(|&c| (c, 2.0))
            .collect();
    }
    Ok(a)
}

#[cfg(feature = "trace")]
fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

#[cfg(feature = "trace")]
fn parse_what_if(s: &str) -> Result<(uat_trace::CostClass, f64), String> {
    let (name, factor) = s
        .split_once('=')
        .ok_or_else(|| format!("--what-if wants class=factor, got `{s}`"))?;
    let class = uat_trace::CostClass::parse(name).ok_or_else(|| {
        let names: Vec<_> = uat_trace::CostClass::ALL.iter().map(|c| c.name()).collect();
        format!("unknown cost class `{name}` (one of {})", names.join(", "))
    })?;
    Ok((class, parse_num(factor)?))
}

#[cfg(feature = "trace")]
fn config(a: &Args) -> SimConfig {
    let mut cfg = compact_config(a.nodes);
    cfg.topo = Topology::new(a.nodes, a.wpn);
    if let Some(seed) = a.seed {
        cfg = cfg.with_seed(seed);
    }
    cfg
}

#[cfg(feature = "trace")]
fn real_main() {
    let flags = OutFlags::parse();
    let a = match parse_args(&flags.rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match a.bench.as_str() {
        "btc1" => profile(&a, |s| Btc::new(s, 1), a.size.unwrap_or(16), &flags),
        "btc2" => profile(&a, |s| Btc::new(s, 2), a.size.unwrap_or(9), &flags),
        "uts" => profile(&a, Uts::geometric, a.size.unwrap_or(12), &flags),
        "nqueens" => profile(&a, NQueens::new, a.size.unwrap_or(11), &flags),
        other => {
            eprintln!("error: unknown benchmark `{other}` (btc1|btc2|uts|nqueens)");
            std::process::exit(2);
        }
    }
}

#[cfg(feature = "trace")]
fn profile<W: Workload, F: Fn(u32) -> W>(a: &Args, make: F, size: u32, flags: &OutFlags) {
    use uat_trace::profile::EdgeKind;

    let cfg = config(a);
    let workers = cfg.topo.total_workers();
    let w = make(size);
    let name = w.name().to_string();
    println!(
        "# uat_profile — {name} size={size}, {} nodes × {} workers = {workers}, seed {}",
        a.nodes, a.wpn, cfg.seed
    );
    let (stats, trace) = uat_cluster::Engine::new(cfg.clone(), w)
        .with_tracing(a.ring)
        .run_traced();
    println!(
        "makespan = {} cycles over {} events; {} tasks, {} steals completed",
        stats.makespan.get(),
        stats.events,
        stats.total_tasks,
        stats.steals_completed
    );

    // --- happens-before DAG + critical path ---
    let dag = match uat_trace::Dag::build(&trace) {
        Ok(dag) => dag,
        Err(e @ uat_trace::ProfileError::DroppedEvents { .. }) => {
            eprintln!(
                "error: {e}\nhint: re-run with a larger --ring (current: {})",
                a.ring
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: cannot build the happens-before DAG: {e}");
            std::process::exit(1);
        }
    };
    let cp = uat_trace::critical_path(&dag);
    println!(
        "\n# critical path  ({} nodes, {} steal edges, {} join edges in the DAG)",
        dag.nodes().len(),
        dag.edge_count(EdgeKind::Steal),
        dag.edge_count(EdgeKind::Join),
    );
    println!(
        "total = {} cycles in {} segments (jumped {} steal + {} join edges), ends on worker {}",
        cp.total.get(),
        cp.segments.len(),
        cp.steal_edges,
        cp.join_edges,
        cp.end_worker
    );
    if cp.total != stats.makespan || cp.account.total() != cp.total {
        eprintln!(
            "error: critical path ({} cycles, attribution {}) does not equal the makespan ({})",
            cp.total.get(),
            cp.account.total().get(),
            stats.makespan.get()
        );
        std::process::exit(1);
    }
    println!("on-path attribution (sums to the makespan exactly):");
    for &b in uat_trace::Bucket::ALL.iter() {
        let c = cp.account.get(b);
        if c > uat_base::Cycles::ZERO {
            println!(
                "  {:<14} {:>14}  ({:>5.1}%)",
                b.name(),
                c.get(),
                100.0 * c.get() as f64 / cp.total.get() as f64
            );
        }
    }

    // --- what-if ---
    println!("\n# what-if (frozen-schedule DAG replay)");
    let mut rows = Vec::new();
    for &(class, factor) in &a.what_if {
        let predicted = uat_trace::profile::predict(&dag, class, factor);
        let delta = 100.0 * (predicted.get() as f64 / stats.makespan.get() as f64 - 1.0);
        let truth = a.validate.then(|| {
            let mut cfg = cfg.clone();
            class.apply(&mut cfg.cost, factor);
            uat_cluster::Engine::new(cfg, make(size)).run().makespan
        });
        match truth {
            Some(t) => {
                let err = 100.0 * (predicted.get() as f64 / t.get() as f64 - 1.0);
                println!(
                    "  {:<10} ×{factor:<5} predicted {:>14} ({delta:+6.1}%)  ground truth {:>14}  error {err:+.2}%",
                    class.name(),
                    predicted.get(),
                    t.get()
                );
            }
            None => println!(
                "  {:<10} ×{factor:<5} predicted {:>14} ({delta:+6.1}%)",
                class.name(),
                predicted.get()
            ),
        }
        let mut row = vec![
            ("class".to_string(), Json::str(class.name())),
            ("factor".to_string(), Json::Num(factor)),
            (
                "predicted_makespan".to_string(),
                Json::UInt(predicted.get()),
            ),
        ];
        if let Some(t) = truth {
            row.push(("ground_truth_makespan".to_string(), Json::UInt(t.get())));
        }
        rows.push(Json::Obj(row));
    }

    // --- artifacts ---
    if let Some(path) = &flags.json {
        let line = Json::obj([
            ("benchmark", Json::str(&name)),
            ("size", Json::UInt(size as u64)),
            ("workers", Json::UInt(workers as u64)),
            ("seed", Json::UInt(cfg.seed)),
            ("makespan", Json::UInt(stats.makespan.get())),
            ("critical_path", cp.summary().to_json()),
            ("what_if", Json::Arr(rows)),
        ]);
        write_output(path, &uat_trace::jsonl(vec![line]), "JSONL profile");
    }
    if let Some(path) = &flags.trace {
        write_output(path, &uat_trace::chrome_trace_json(&trace), "Chrome trace");
    }
}
