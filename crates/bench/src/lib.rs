//! Experiment harnesses: one binary per table/figure of the paper.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig9_rdma_latency` | Figure 9: RDMA READ/WRITE latency vs size |
//! | `table2_creation` | Table 2: task creation overhead (native + modelled) |
//! | `fig10_steal_breakdown` | Figure 10/Table 3: steal-time breakdown |
//! | `table4_runs` | Table 4: tasks, time, stack usage per benchmark |
//! | `fig11_scaling` | Figure 11(a-d): throughput scaling + efficiency |
//! | `iso_vs_uni` | §4 memory analysis + §6.3 steal-time estimate |
//! | `ablation_faa` | software comm-server FAA vs hypothetical hardware FAA |
//! | `ablation_crude` | §5.1 crude scheme vs Figure 4 optimized creation |
//! | `ablation_shared_as` | §5.1 multi-worker-per-address-space placement loss |
//!
//! Run everything: `for b in fig9_rdma_latency table2_creation ...; do
//! cargo run --release -p uat-bench --bin $b; done` — or see
//! EXPERIMENTS.md, which records one full set of outputs against the
//! paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use uat_cluster::SimConfig;

/// Output flags shared by the experiment binaries.
///
/// `--trace <path>` writes a Chrome trace-event file (open it at
/// `ui.perfetto.dev`); `--json <path>` writes machine-readable JSONL
/// results. `--metrics` prints a final metrics-registry snapshot in
/// Prometheus text format to stderr and `--metrics-json <path>` writes
/// the same snapshot as JSON. Path flags accept `--flag path` and
/// `--flag=path` spellings; unrecognized arguments pass through in
/// [`OutFlags::rest`] for the binary's own parsing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutFlags {
    /// Destination for the Chrome trace, when `--trace` was given.
    pub trace: Option<PathBuf>,
    /// Destination for JSONL results, when `--json` was given.
    pub json: Option<PathBuf>,
    /// Print the final registry snapshot as Prometheus text to stderr
    /// (`--metrics`).
    pub metrics: bool,
    /// Destination for the final registry snapshot as JSON, when
    /// `--metrics-json` was given.
    pub metrics_json: Option<PathBuf>,
    /// Every argument that was not an output flag, in order.
    pub rest: Vec<String>,
}

impl OutFlags {
    /// Parse the process arguments; print the error and exit(2) on a
    /// malformed flag.
    pub fn parse() -> OutFlags {
        match Self::try_from_args(std::env::args().skip(1)) {
            Ok(flags) => flags,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`OutFlags::parse`]).
    pub fn try_from_args<I>(args: I) -> Result<OutFlags, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut flags = OutFlags::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--trace" || arg == "--json" || arg == "--metrics-json" {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{arg} requires a path argument"))?;
                let slot = match arg.as_str() {
                    "--trace" => &mut flags.trace,
                    "--json" => &mut flags.json,
                    _ => &mut flags.metrics_json,
                };
                *slot = Some(PathBuf::from(value));
            } else if arg == "--metrics" {
                flags.metrics = true;
            } else if let Some(v) = arg.strip_prefix("--trace=") {
                flags.trace = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--json=") {
                flags.json = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--metrics-json=") {
                flags.metrics_json = Some(PathBuf::from(v));
            } else {
                flags.rest.push(arg);
            }
        }
        Ok(flags)
    }
}

/// Exit with a clear error if `--trace` was requested but the binary
/// was built without the `trace` feature (`--no-default-features`).
pub fn require_trace_feature(flags: &OutFlags) {
    if cfg!(not(feature = "trace")) && flags.trace.is_some() {
        eprintln!(
            "error: --trace requires the `trace` feature; rebuild without \
             `--no-default-features`"
        );
        std::process::exit(2);
    }
}

/// True when the user asked for any end-of-run metrics output.
pub fn wants_metrics(flags: &OutFlags) -> bool {
    flags.metrics || flags.metrics_json.is_some()
}

/// Exit with a clear error if `--metrics`/`--metrics-json` was
/// requested but the binary was built without the `metrics` feature.
pub fn require_metrics_feature(flags: &OutFlags) {
    if cfg!(not(feature = "metrics")) && wants_metrics(flags) {
        eprintln!(
            "error: --metrics/--metrics-json require the `metrics` feature; \
             rebuild without `--no-default-features`"
        );
        std::process::exit(2);
    }
}

/// Emit the end-of-run registry snapshots that `--metrics` /
/// `--metrics-json` asked for: Prometheus text to stderr (one comment
/// header per backend, so sim and native snapshots stay tellable
/// apart) and, to the given path, one JSON object keyed by backend
/// name.
#[cfg(feature = "metrics")]
pub fn emit_metrics(flags: &OutFlags, snapshots: &[(&str, uat_metrics::Snapshot)]) {
    use uat_base::json::{Json, ToJson};
    if flags.metrics {
        for (backend, snap) in snapshots {
            eprintln!("# == metrics: {backend} ==");
            eprint!("{}", snap.prometheus_text());
        }
    }
    if let Some(path) = &flags.metrics_json {
        let obj = Json::Obj(
            snapshots
                .iter()
                .map(|(backend, snap)| (backend.to_string(), snap.to_json()))
                .collect(),
        );
        write_output(path, &obj.pretty(), "metrics snapshot JSON");
    }
}

/// Write an output artifact, reporting the destination on stderr so it
/// does not mix with the table on stdout; exit(1) on I/O failure.
pub fn write_output(path: &Path, text: &str, what: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("error: cannot write {what} to {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {what} to {}", path.display());
}

/// Reference values from the paper, for side-by-side output.
pub mod paper {
    /// Table 2, SPARC64IXfx column (cycles).
    pub const CREATION_SPARC: [(&str, f64); 3] = [
        ("Uni-address threads", 413.0),
        ("MassiveThreads", 658.0),
        ("Cilk", 47.0),
    ];
    /// Table 2, Xeon E5-2660 column (cycles).
    pub const CREATION_XEON: [(&str, f64); 3] = [
        ("Uni-address threads", 100.0),
        ("MassiveThreads", 110.0),
        ("Cilk", 59.0),
    ];
    /// §6.3: total steal ≈ 42K cycles on FX10.
    pub const STEAL_TOTAL: f64 = 42_000.0;
    /// §6.3: suspend + resume = 3.5K cycles (7.7% of the steal).
    pub const STEAL_SUSPEND_RESUME: f64 = 3_500.0;
    /// §6: software remote fetch-and-add, 9.8K cycles.
    pub const FAA_CYCLES: f64 = 9_800.0;
    /// §6.3: uni-address steal ≈ 71% of the iso-address steal estimate.
    pub const UNI_OVER_ISO_STEAL: f64 = 0.71;
    /// Table 4 stack usage (bytes): (benchmark, params, bytes).
    pub const STACK_USAGE: [(&str, &str, u64); 8] = [
        ("BTC iter=1", "depth=38", 43_568),
        ("BTC iter=1", "depth=39", 44_688),
        ("BTC iter=2", "depth=19", 22_288),
        ("BTC iter=2", "depth=20", 23_408),
        ("UTS", "depth=17", 139_536),
        ("UTS", "depth=18", 147_392),
        ("NQueens", "N=17", 74_272),
        ("NQueens", "N=18", 79_120),
    ];
    /// Abstract: every benchmark under 144 KiB of uni-address region.
    pub const STACK_BOUND: u64 = 144 * 1024;
}

/// A simulation config for *large* simulated machines: same protocol,
/// compact per-worker regions so thousands of workers fit in host RAM
/// (the fabric materializes registered bytes).
pub fn compact_config(nodes: u32) -> SimConfig {
    let mut cfg = SimConfig::fx10(nodes);
    cfg.core.uni_region_size = 192 << 10; // > the 144 KiB Table 4 bound
    cfg.core.rdma_heap_size = 768 << 10;
    cfg.core.deque_capacity = 1024;
    cfg.core.iso_stacks_per_worker = 128;
    cfg
}

/// Format a cycle count like the paper's prose (e.g. "42.1K").
pub fn kcycles(c: f64) -> String {
    if c >= 1_000.0 {
        format!("{:.1}K", c / 1_000.0)
    } else {
        format!("{c:.0}")
    }
}

/// Percentage deviation of `measured` from `reference`.
pub fn deviation(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "-".into();
    }
    format!("{:+.1}%", 100.0 * (measured - reference) / reference)
}

/// Executor selected by a binary's `--backend` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic FX10 cluster simulation (`uat-cluster`).
    #[default]
    Sim,
    /// The native fiber runtime, one OS thread per worker (`uat-fiber`).
    Native,
    /// The multiprocess uni-address backend, one process per worker
    /// (`uat-fiber::mpruntime`).
    Multiprocess,
}

impl Backend {
    /// The flag spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
            Backend::Multiprocess => "multiprocess",
        }
    }
}

/// Extract `--backend {sim,native,multiprocess}` (either `--backend B`
/// or `--backend=B` spelling) from pass-through arguments, returning
/// the selection (default [`Backend::Sim`]) and the remaining
/// arguments in order.
pub fn backend_flag(rest: &[String]) -> Result<(Backend, Vec<String>), String> {
    fn parse(v: &str) -> Result<Backend, String> {
        match v {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            "multiprocess" | "mp" => Ok(Backend::Multiprocess),
            other => Err(format!(
                "unknown backend `{other}` (sim|native|multiprocess)"
            )),
        }
    }
    let mut backend = Backend::Sim;
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--backend=") {
            backend = parse(v)?;
        } else if a == "--backend" {
            let v = it.next().ok_or("--backend requires a value")?;
            backend = parse(v)?;
        } else {
            out.push(a.clone());
        }
    }
    Ok((backend, out))
}

/// Run `w` on one of the *real* executors (`native` threads or
/// `multiprocess` worker processes), verify its accounting against the
/// sequential ground truth, and print a throughput summary. Returns
/// `None` — after printing the reason — when the host cannot run the
/// multiprocess backend (treat as "skip", like the ipc probes).
///
/// # Panics
/// On accounting divergence (a backend bug), or if called with
/// [`Backend::Sim`] (the simulator has its own drivers).
pub fn run_real_backend<W>(
    backend: Backend,
    workers: usize,
    divisor: u64,
    w: W,
) -> Option<uat_fiber::NativeRunStats>
where
    W: uat_model::Workload + Clone + Send + Sync + 'static,
    W::Desc: Copy + 'static,
{
    let p = uat_model::sequential_profile(&w);
    let stats = match backend {
        Backend::Sim => panic!("run_real_backend drives native/multiprocess only"),
        Backend::Native => uat_fiber::NativeRunner::new(workers)
            .with_work_divisor(divisor)
            .run(w),
        Backend::Multiprocess => {
            let runner = uat_fiber::MultiProcessRunner::new(workers).with_work_divisor(divisor);
            match runner.try_run(w) {
                Ok(report) => report.stats,
                Err(e) => {
                    eprintln!("multiprocess backend unavailable here: {e}");
                    return None;
                }
            }
        }
    };
    assert_eq!(
        stats.total_tasks,
        p.tasks,
        "{}: {} backend dropped or duplicated tasks",
        stats.workload,
        backend.name()
    );
    assert_eq!(
        stats.join_fingerprint,
        p.join_fingerprint,
        "{}: {} backend join-tree fingerprint diverges from the model",
        stats.workload,
        backend.name()
    );
    println!(
        "{}",
        stats.summary_line_as(match backend {
            Backend::Multiprocess => "MultiProc",
            _ => "Native",
        })
    );
    println!(
        "  throughput: {:.0} tasks/s on {} workers ({} steals, {} parks)",
        stats.throughput(),
        stats.workers,
        stats.steals,
        stats.parks
    );
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_config_fits_table4_bound() {
        let c = compact_config(4);
        assert!(c.core.uni_region_size > paper::STACK_BOUND);
    }

    #[test]
    fn formatting() {
        assert_eq!(kcycles(42_100.0), "42.1K");
        assert_eq!(kcycles(413.0), "413");
        assert_eq!(deviation(110.0, 100.0), "+10.0%");
        assert_eq!(deviation(0.0, 0.0), "-");
    }

    fn parse(args: &[&str]) -> Result<OutFlags, String> {
        OutFlags::try_from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn out_flags_parse_both_spellings() {
        let f = parse(&["--trace", "/tmp/t.json", "--json=/tmp/r.jsonl"]).unwrap();
        assert_eq!(f.trace.as_deref(), Some(Path::new("/tmp/t.json")));
        assert_eq!(f.json.as_deref(), Some(Path::new("/tmp/r.jsonl")));
        assert!(f.rest.is_empty());
    }

    #[test]
    fn out_flags_pass_other_args_through_in_order() {
        let f = parse(&["btc1", "--trace=t", "--big"]).unwrap();
        assert_eq!(f.rest, ["btc1", "--big"]);
        assert_eq!(f.trace.as_deref(), Some(Path::new("t")));
        assert_eq!(f.json, None);
    }

    #[test]
    fn out_flags_missing_value_is_an_error() {
        let e = parse(&["--json"]).unwrap_err();
        assert!(e.contains("--json"), "{e}");
        assert!(parse(&[]).unwrap().trace.is_none());
    }

    #[test]
    fn backend_flag_parses_and_strips() {
        let rest: Vec<String> = ["fib", "--backend", "multiprocess", "--big"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (b, out) = backend_flag(&rest).unwrap();
        assert_eq!(b, Backend::Multiprocess);
        assert_eq!(out, ["fib", "--big"]);
        let (b, out) = backend_flag(&["--backend=native".to_string()]).unwrap();
        assert_eq!(b, Backend::Native);
        assert!(out.is_empty());
        assert_eq!(backend_flag(&[]).unwrap().0, Backend::Sim);
        assert!(backend_flag(&["--backend".to_string()]).is_err());
        assert!(backend_flag(&["--backend=bogus".to_string()]).is_err());
    }

    #[test]
    fn metrics_flags_parse_both_spellings() {
        let f = parse(&["--metrics", "--metrics-json", "/tmp/m.json"]).unwrap();
        assert!(f.metrics);
        assert_eq!(f.metrics_json.as_deref(), Some(Path::new("/tmp/m.json")));
        assert!(f.rest.is_empty());
        assert!(wants_metrics(&f));

        let f = parse(&["--metrics-json=/tmp/m.json"]).unwrap();
        assert!(!f.metrics);
        assert_eq!(f.metrics_json.as_deref(), Some(Path::new("/tmp/m.json")));
        assert!(wants_metrics(&f));

        assert!(!wants_metrics(&parse(&["--trace=t"]).unwrap()));
        let e = parse(&["--metrics-json"]).unwrap_err();
        assert!(e.contains("--metrics-json"), "{e}");
    }
}
