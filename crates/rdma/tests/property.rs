//! Property tests for the simulated fabric: registered memory behaves
//! like memory, latencies are monotone, FAA serializes per node.

use proptest::prelude::*;
use uat_base::{CostModel, Cycles, Topology, WorkerId};
use uat_rdma::Fabric;

proptest! {
    /// Random sequences of writes followed by reads observe exactly the
    /// last write to each byte (a tiny linearizability check against a
    /// flat reference array).
    #[test]
    fn reads_see_last_writes(
        ops in proptest::collection::vec((0u16..1000, 1u16..64, any::<u8>()), 1..60)
    ) {
        let mut f = Fabric::new(Topology::new(2, 1), CostModel::fx10());
        const BASE: u64 = 0x10_000;
        const LEN: usize = 2048;
        f.register(WorkerId(1), BASE, LEN).unwrap();
        let mut shadow = vec![0u8; LEN];
        let mut now = Cycles::ZERO;
        for (off, len, byte) in ops {
            let off = (off as usize) % (LEN - 64);
            let len = len as usize;
            let data = vec![byte; len];
            now = f.write(now, WorkerId(0), WorkerId(1), BASE + off as u64, &data).unwrap();
            shadow[off..off + len].copy_from_slice(&data);
        }
        let mut buf = vec![0u8; LEN];
        f.read(now, WorkerId(0), WorkerId(1), BASE, &mut buf).unwrap();
        prop_assert_eq!(buf, shadow);
    }

    /// FAA totals are exact no matter the interleaving of issuers, and
    /// completion times at one comm server never overlap service windows
    /// (monotone per node).
    #[test]
    fn faa_is_exact_and_serialized(deltas in proptest::collection::vec(1u64..100, 1..40)) {
        let mut f = Fabric::new(Topology::new(2, 2), CostModel::fx10());
        const A: u64 = 0x20_000;
        f.register(WorkerId(2), A, 64).unwrap();
        let mut dones = Vec::new();
        let mut now = Cycles::ZERO;
        for (i, &d) in deltas.iter().enumerate() {
            let issuer = WorkerId((i % 2) as u32);
            let (_, done) = f.fetch_add_u64(now, issuer, WorkerId(2), A, d).unwrap();
            dones.push(done);
            now += Cycles(137); // issue cadence faster than service
        }
        let total: u64 = deltas.iter().sum();
        prop_assert_eq!(f.mem(WorkerId(2)).read_u64_local(A).unwrap(), total);
        // Server serialization: completions are strictly increasing when
        // requests arrive faster than the service time.
        for w in dones.windows(2) {
            prop_assert!(w[1] > w[0], "comm server must serialize");
        }
    }

    /// Latency is monotone in payload size for both verbs at any size.
    #[test]
    fn latency_monotone(a in 1usize..100_000, b in 1usize..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c = CostModel::fx10();
        prop_assert!(c.rdma_read(lo, false) <= c.rdma_read(hi, false));
        prop_assert!(c.rdma_write(lo, false) <= c.rdma_write(hi, false));
        prop_assert!(c.rdma_read(lo, true) <= c.rdma_read(hi, true));
    }
}
