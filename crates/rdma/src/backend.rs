//! Fabric backends: one one-sided interface, two transports.
//!
//! The steal protocol (and everything built on it) needs exactly three
//! remote primitives — READ, WRITE, fetch-and-add — addressed as
//! `(process, virtual address)` pairs. [`OneSidedFabric`] is that
//! interface with the *timing face removed*: the simulated [`Fabric`]
//! implements it by issuing the op at cycle zero and discarding the
//! completion instant (callers that care about simulated time keep
//! using the timed methods directly), and [`ShmFabric`] implements it
//! as real loads, stores and `AtomicU64::fetch_add` against memory the
//! caller has mapped at the *same virtual address in every process* —
//! the multiprocess backend's uni-address region.
//!
//! The split mirrors lamellar's lamellae abstraction (one trait, shmem
//! and network transports behind it) and keeps the pinned-region
//! contract explicit: both backends reject operations on unregistered
//! ranges, so an ODP-style backend (ROADMAP item 4) can later slot in
//! behind the same trait with a fault-and-retry policy instead of a
//! hard error.

use uat_base::{Cycles, WorkerId};

use crate::fabric::{Fabric, FabricStats, RdmaError};

/// The untimed one-sided operations every fabric backend provides.
///
/// `initiator` is who issues the op (used for stats/topology only);
/// `target` names the process whose registered memory is addressed.
/// All `u64` values cross the wire little-endian, matching the
/// simulated fabric.
pub trait OneSidedFabric {
    /// One-sided READ: copy `buf.len()` bytes from `(target, remote_addr)`.
    fn read(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        buf: &mut [u8],
    ) -> Result<(), RdmaError>;

    /// One-sided WRITE: copy `data` to `(target, remote_addr)`.
    fn write(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        data: &[u8],
    ) -> Result<(), RdmaError>;

    /// Remote fetch-and-add on an 8-byte-aligned u64; returns the
    /// previous value.
    fn fetch_add_u64(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        delta: u64,
    ) -> Result<u64, RdmaError>;

    /// Convenience: remote read of a little-endian u64.
    fn read_u64(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
    ) -> Result<u64, RdmaError> {
        let mut b = [0u8; 8];
        self.read(initiator, target, remote_addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Convenience: remote write of a little-endian u64.
    fn write_u64(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        v: u64,
    ) -> Result<(), RdmaError> {
        self.write(initiator, target, remote_addr, &v.to_le_bytes())
    }

    /// Operation counters accumulated so far.
    fn stats(&self) -> FabricStats;
}

impl OneSidedFabric for Fabric {
    fn read(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        buf: &mut [u8],
    ) -> Result<(), RdmaError> {
        Fabric::read(self, Cycles::ZERO, initiator, target, remote_addr, buf).map(|_| ())
    }

    fn write(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        data: &[u8],
    ) -> Result<(), RdmaError> {
        Fabric::write(self, Cycles::ZERO, initiator, target, remote_addr, data).map(|_| ())
    }

    fn fetch_add_u64(
        &mut self,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        delta: u64,
    ) -> Result<u64, RdmaError> {
        Fabric::fetch_add_u64(self, Cycles::ZERO, initiator, target, remote_addr, delta)
            .map(|(old, _)| old)
    }

    fn stats(&self) -> FabricStats {
        Fabric::stats(self)
    }
}

/// One registered shared-memory window of one process.
#[derive(Clone, Copy, Debug)]
struct ShmRegion {
    proc: WorkerId,
    base: u64,
    len: u64,
}

impl ShmRegion {
    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.base + self.len)
    }
}

/// A fabric whose "remote" memory is process-shared memory mapped at
/// the same virtual address in every participating process.
///
/// READ/WRITE are plain `memcpy`s and FAA is a native
/// `AtomicU64::fetch_add` — the multiprocess backend's literal
/// implementation of the paper's one-sided steal primitives. The peer's
/// CPU is never involved, exactly like hardware RDMA against a pinned
/// region.
///
/// Registration is the safety boundary: [`ShmFabric::register_region`]
/// is `unsafe` because the fabric will dereference raw pointers into
/// the registered range from then on. Every operation validates its
/// address range against the registration table first, so a bad address
/// is an [`RdmaError`], never a wild access.
#[derive(Debug, Default)]
pub struct ShmFabric {
    regions: Vec<ShmRegion>,
    stats: FabricStats,
}

#[allow(unsafe_code)] // The one unsafe-using module of this crate; see [I13].
impl ShmFabric {
    /// An empty fabric with no registered windows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `[base, base+len)` as `proc`'s RDMA window.
    ///
    /// # Safety
    ///
    /// The caller guarantees the range is mapped, readable and writable
    /// in *this* process, stays mapped for the fabric's lifetime, and —
    /// for cross-process semantics to hold — is backed by memory shared
    /// with `proc` at this same virtual address ([I13]). All locations
    /// in the range that any party accesses concurrently must only be
    /// accessed through this fabric's FAA or via atomics on both sides.
    pub unsafe fn register_region(
        &mut self,
        proc: WorkerId,
        base: u64,
        len: usize,
    ) -> Result<(), RdmaError> {
        if len == 0 {
            return Err(RdmaError::ZeroLength);
        }
        let new = ShmRegion {
            proc,
            base,
            len: len as u64,
        };
        // Checked ends: near-u64::MAX registrations must be rejected,
        // not wrapped (a wrapped end can let a genuine overlap pass),
        // matching `contains`.
        let new_end = new
            .base
            .checked_add(new.len)
            .ok_or(RdmaError::AddressOverflow { proc, addr: base })?;
        let overlaps = self.regions.iter().any(|r| {
            r.proc == proc
                && r.base < new_end
                && r.base
                    .checked_add(r.len)
                    .is_none_or(|r_end| new.base < r_end)
        });
        if overlaps {
            return Err(RdmaError::OverlappingRegistration { proc, addr: base });
        }
        self.regions.push(new);
        Ok(())
    }

    /// Registered bytes across all processes.
    pub fn registered_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    fn check(&self, target: WorkerId, addr: u64, len: u64) -> Result<(), RdmaError> {
        let ok = self
            .regions
            .iter()
            .any(|r| r.proc == target && r.contains(addr, len));
        if ok {
            Ok(())
        } else {
            Err(RdmaError::NotRegistered { proc: target, addr })
        }
    }
}

#[allow(unsafe_code)]
impl OneSidedFabric for ShmFabric {
    fn read(
        &mut self,
        _initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        buf: &mut [u8],
    ) -> Result<(), RdmaError> {
        if buf.is_empty() {
            return Err(RdmaError::ZeroLength);
        }
        self.check(target, remote_addr, buf.len() as u64)?;
        // SAFETY: [I13] the range was validated against a registered
        // window, whose registration contract guarantees it is mapped
        // and readable at this address for the fabric's lifetime.
        unsafe {
            std::ptr::copy_nonoverlapping(remote_addr as *const u8, buf.as_mut_ptr(), buf.len());
        }
        self.stats.reads += 1;
        self.stats.read_bytes += buf.len() as u64;
        Ok(())
    }

    fn write(
        &mut self,
        _initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        data: &[u8],
    ) -> Result<(), RdmaError> {
        if data.is_empty() {
            return Err(RdmaError::ZeroLength);
        }
        self.check(target, remote_addr, data.len() as u64)?;
        // SAFETY: [I13] validated registered window; mapped and
        // writable per the registration contract, and the caller (not
        // the fabric) serializes plain-store ranges between processes.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), remote_addr as *mut u8, data.len());
        }
        self.stats.writes += 1;
        self.stats.write_bytes += data.len() as u64;
        Ok(())
    }

    fn fetch_add_u64(
        &mut self,
        _initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        delta: u64,
    ) -> Result<u64, RdmaError> {
        if !remote_addr.is_multiple_of(8) {
            return Err(RdmaError::Misaligned { addr: remote_addr });
        }
        self.check(target, remote_addr, 8)?;
        // SAFETY: [I13] validated, 8-byte-aligned location inside a
        // registered shared window; AtomicU64 makes the concurrent
        // cross-process RMW well-defined (process-shared atomics are
        // ordinary atomics on x86-64 shared mappings).
        let cell = unsafe { &*(remote_addr as *const std::sync::atomic::AtomicU64) };
        let old = cell.fetch_add(delta, std::sync::atomic::Ordering::AcqRel);
        self.stats.faas += 1;
        Ok(old)
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(unsafe_code)]
mod tests {
    use super::*;
    use uat_base::Topology;

    fn wid(i: u32) -> WorkerId {
        WorkerId(i)
    }

    /// A pinned heap buffer standing in for a shared mapping (the trait
    /// semantics are identical; cross-process behavior is exercised by
    /// the multiprocess runtime's own tests in `uat-fiber`).
    struct Window {
        buf: Box<[u8]>,
    }

    impl Window {
        fn new(len: usize) -> Self {
            Window {
                buf: vec![0u8; len].into_boxed_slice(),
            }
        }
        fn base(&self) -> u64 {
            self.buf.as_ptr() as u64
        }
    }

    #[test]
    fn shm_read_write_faa_roundtrip() {
        let w = Window::new(4096);
        let mut f = ShmFabric::new();
        // SAFETY: [I13] `w.buf` outlives `f` in this scope and is
        // exclusively owned by the test.
        unsafe { f.register_region(wid(1), w.base(), 4096).unwrap() };

        f.write(wid(0), wid(1), w.base() + 16, &[1, 2, 3, 4])
            .unwrap();
        let mut back = [0u8; 4];
        f.read(wid(0), wid(1), w.base() + 16, &mut back).unwrap();
        assert_eq!(back, [1, 2, 3, 4]);

        f.write_u64(wid(0), wid(1), w.base() + 64, 40).unwrap();
        assert_eq!(
            f.fetch_add_u64(wid(0), wid(1), w.base() + 64, 2).unwrap(),
            40
        );
        assert_eq!(f.read_u64(wid(0), wid(1), w.base() + 64).unwrap(), 42);

        let s = f.stats();
        assert_eq!((s.reads, s.writes, s.faas), (2, 2, 1));
        assert_eq!(s.write_bytes, 12);
    }

    #[test]
    fn shm_rejects_unregistered_misaligned_and_overlap() {
        let w = Window::new(256);
        let mut f = ShmFabric::new();
        // SAFETY: [I13] test-owned live buffer.
        unsafe { f.register_region(wid(0), w.base(), 256).unwrap() };
        // SAFETY: [I13] overlap is rejected before any access.
        let e = unsafe { f.register_region(wid(0), w.base() + 128, 256) };
        assert!(matches!(e, Err(RdmaError::OverlappingRegistration { .. })));
        // Same range on another proc id is a distinct window.
        // SAFETY: [I13] test-owned live buffer.
        unsafe { f.register_region(wid(1), w.base(), 256).unwrap() };

        let mut b = [0u8; 8];
        assert!(matches!(
            f.read(wid(0), wid(2), w.base(), &mut b),
            Err(RdmaError::NotRegistered { .. })
        ));
        // One byte past the window end.
        assert!(matches!(
            f.read(wid(0), wid(0), w.base() + 249, &mut b),
            Err(RdmaError::NotRegistered { .. })
        ));
        assert!(matches!(
            f.fetch_add_u64(wid(0), wid(0), w.base() + 3, 1),
            Err(RdmaError::Misaligned { .. })
        ));
        assert!(matches!(
            f.read(wid(0), wid(0), w.base(), &mut []),
            Err(RdmaError::ZeroLength)
        ));
    }

    #[test]
    fn sim_fabric_implements_the_untimed_trait() {
        let mut f = Fabric::new(Topology::new(1, 2), uat_base::CostModel::fx10());
        f.register(wid(1), 0x1000, 4096).unwrap();
        let g: &mut dyn OneSidedFabric = &mut f;
        g.write_u64(wid(0), wid(1), 0x1008, 7).unwrap();
        assert_eq!(g.fetch_add_u64(wid(0), wid(1), 0x1008, 5).unwrap(), 7);
        assert_eq!(g.read_u64(wid(0), wid(1), 0x1008).unwrap(), 12);
        assert_eq!(g.stats().faas, 1);
    }
}
