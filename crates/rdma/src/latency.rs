//! Figure-9 latency model.
//!
//! Figure 9 of the paper plots RDMA READ and WRITE latency on FX10 against
//! message size: flat (dominated by the round-trip base) for small
//! messages, then linear in size once payload time exceeds the base. The
//! model here is `base + size / bandwidth`, the standard LogGP-style
//! first-order fit; `fig9_rdma_latency` regenerates the curve.

use uat_base::{CostModel, Cycles};

/// Which RDMA primitive a latency query is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// RDMA READ (round trip: request + payload back).
    Read,
    /// RDMA WRITE (posted; completion observed at the initiator).
    Write,
}

/// Thin view over the interconnect part of a [`CostModel`].
#[derive(Clone, Debug)]
pub struct LatencyModel {
    cost: CostModel,
}

impl LatencyModel {
    /// Wrap a cost model.
    pub fn new(cost: CostModel) -> Self {
        LatencyModel { cost }
    }

    /// Latency of `op` moving `bytes`, in cycles.
    pub fn latency(&self, op: Op, bytes: usize, intra_node: bool) -> Cycles {
        match op {
            Op::Read => self.cost.rdma_read(bytes, intra_node),
            Op::Write => self.cost.rdma_write(bytes, intra_node),
        }
    }

    /// Latency in microseconds (the unit of Figure 9's y-axis).
    pub fn latency_us(&self, op: Op, bytes: usize, intra_node: bool) -> f64 {
        self.latency(op, bytes, intra_node).get() as f64 / self.cost.clock_hz * 1e6
    }

    /// The sweep of message sizes used by the Figure 9 harness: powers of
    /// two from 8 B to 1 MiB.
    pub fn fig9_sizes() -> Vec<usize> {
        (3..=20).map(|p| 1usize << p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_latency_bound() {
        let m = LatencyModel::new(CostModel::fx10());
        let l8 = m.latency(Op::Read, 8, false);
        let l256 = m.latency(Op::Read, 256, false);
        // Under 256 B the curve is essentially flat (< 3% growth).
        let growth = (l256.get() - l8.get()) as f64 / l8.get() as f64;
        assert!(growth < 0.03, "growth {growth}");
    }

    #[test]
    fn large_messages_are_bandwidth_bound() {
        let m = LatencyModel::new(CostModel::fx10());
        let a = m.latency(Op::Read, 1 << 19, false).get() as f64;
        let b = m.latency(Op::Read, 1 << 20, false).get() as f64;
        // Doubling the size should nearly double the latency.
        assert!((b / a - 2.0).abs() < 0.1, "ratio {}", b / a);
    }

    #[test]
    fn write_cheaper_than_read() {
        // Posted writes avoid the response payload leg; Figure 9 shows
        // WRITE below READ at every size.
        let m = LatencyModel::new(CostModel::fx10());
        for &sz in &LatencyModel::fig9_sizes() {
            assert!(m.latency(Op::Write, sz, false) < m.latency(Op::Read, sz, false));
        }
    }

    #[test]
    fn microsecond_conversion() {
        let m = LatencyModel::new(CostModel::fx10());
        let us = m.latency_us(Op::Read, 8, false);
        // 4.9K cycles at 1.848 GHz ≈ 2.65 µs, the right order for Tofu.
        assert!(us > 1.0 && us < 5.0, "{us} µs");
    }

    #[test]
    fn fig9_sweep_shape() {
        let sizes = LatencyModel::fig9_sizes();
        assert_eq!(sizes.first(), Some(&8));
        assert_eq!(sizes.last(), Some(&(1 << 20)));
        assert!(sizes.windows(2).all(|w| w[1] == w[0] * 2));
    }
}
