//! The fabric: registered memory + one-sided operations.

use serde::{Deserialize, Serialize};
use std::fmt;
use uat_base::json::{FromJson, Json, JsonError, ToJson};
use uat_base::{CostModel, Cycles, Topology, WorkerId};
#[cfg(feature = "trace")]
use uat_trace::{EventKind, RdmaOpKind, RingBuffer, TraceEvent};

/// Errors from fabric operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RdmaError {
    /// The target range is not inside any registered (pinned) region.
    NotRegistered {
        /// Target process.
        proc: WorkerId,
        /// Faulting remote address.
        addr: u64,
    },
    /// A new registration overlaps an existing one.
    OverlappingRegistration {
        /// Process attempting the registration.
        proc: WorkerId,
        /// Base of the new region.
        addr: u64,
    },
    /// Atomic operations require 8-byte alignment.
    Misaligned {
        /// The unaligned address.
        addr: u64,
    },
    /// Zero-length transfer.
    ZeroLength,
    /// A registration's end (`base + len`) does not fit in the address
    /// space.
    AddressOverflow {
        /// Process attempting the registration.
        proc: WorkerId,
        /// Base of the rejected region.
        addr: u64,
    },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::NotRegistered { proc, addr } => {
                write!(
                    f,
                    "address {addr:#x} on {proc} is not in a registered region"
                )
            }
            RdmaError::OverlappingRegistration { proc, addr } => {
                write!(
                    f,
                    "registration at {addr:#x} on {proc} overlaps an existing region"
                )
            }
            RdmaError::Misaligned { addr } => {
                write!(f, "atomic op on unaligned address {addr:#x}")
            }
            RdmaError::ZeroLength => write!(f, "zero-length transfer"),
            RdmaError::AddressOverflow { proc, addr } => {
                write!(
                    f,
                    "registration at {addr:#x} on {proc} overflows the address space"
                )
            }
        }
    }
}

impl std::error::Error for RdmaError {}

/// The registered memory of one simulated process.
///
/// Regions are identified by their (simulated) base virtual address and
/// back their bytes in an ordinary `Vec<u8>`. Registration implies the
/// pages are pinned; the caller (uat-core) keeps the corresponding
/// [`uat_vmem::AddressSpace`] in sync.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProcMem {
    /// Registered regions, sorted by base address. A process registers a
    /// handful of fixed regions at startup (uni-address region, RDMA
    /// heap, deque block), so a sorted `Vec` beats a tree: `locate`
    /// resolves to an *index*, letting the byte access reuse it instead
    /// of paying a second map lookup.
    regions: Vec<(u64, Vec<u8>)>,
    /// Index of the region `locate` last hit. Deque pointer traffic
    /// revisits the same region almost every access; the hit is
    /// re-validated against the region's bounds, and `register` resets
    /// it, so it can never serve a stale answer.
    last_hit: std::cell::Cell<usize>,
}

impl ProcMem {
    fn locate(&self, addr: u64, len: usize) -> Option<(usize, usize)> {
        let hit = self.last_hit.get();
        if let Some((base, bytes)) = self.regions.get(hit) {
            let off = addr.wrapping_sub(*base) as usize;
            if addr >= *base && off + len <= bytes.len() {
                return Some((hit, off));
            }
        }
        let i = match self.regions.binary_search_by(|(base, _)| base.cmp(&addr)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (base, bytes) = &self.regions[i];
        let off = (addr - base) as usize;
        if off + len <= bytes.len() {
            self.last_hit.set(i);
            Some((i, off))
        } else {
            None
        }
    }

    fn register(&mut self, addr: u64, len: usize) -> Result<(), RdmaError> {
        // Insertion point: first region with base >= addr.
        let idx = self.regions.partition_point(|(base, _)| *base < addr);
        let end = addr + len as u64;
        let overlaps_prev = idx > 0 && {
            let (base, bytes) = &self.regions[idx - 1];
            base + bytes.len() as u64 > addr
        };
        let overlaps_next = self.regions.get(idx).is_some_and(|(base, _)| *base < end);
        if overlaps_prev || overlaps_next {
            return Err(RdmaError::OverlappingRegistration {
                proc: WorkerId(u32::MAX),
                addr,
            });
        }
        self.regions.insert(idx, (addr, vec![0; len]));
        // Insertion shifts indices; drop the (now possibly wrong) hit.
        self.last_hit.set(usize::MAX);
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `addr` (owner-side, zero cost).
    pub fn read_local(&self, addr: u64, buf: &mut [u8]) -> Result<(), RdmaError> {
        let (i, off) = self
            .locate(addr, buf.len())
            .ok_or(RdmaError::NotRegistered {
                proc: WorkerId(u32::MAX),
                addr,
            })?;
        buf.copy_from_slice(&self.regions[i].1[off..off + buf.len()]);
        Ok(())
    }

    /// Write `data` starting at `addr` (owner-side, zero cost).
    pub fn write_local(&mut self, addr: u64, data: &[u8]) -> Result<(), RdmaError> {
        let (i, off) = self
            .locate(addr, data.len())
            .ok_or(RdmaError::NotRegistered {
                proc: WorkerId(u32::MAX),
                addr,
            })?;
        self.regions[i].1[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a little-endian u64 (owner-side).
    pub fn read_u64_local(&self, addr: u64) -> Result<u64, RdmaError> {
        let mut b = [0u8; 8];
        self.read_local(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64 (owner-side).
    pub fn write_u64_local(&mut self, addr: u64, v: u64) -> Result<(), RdmaError> {
        self.write_local(addr, &v.to_le_bytes())
    }

    /// Total registered bytes.
    pub fn registered_bytes(&self) -> u64 {
        self.regions.iter().map(|(_, v)| v.len() as u64).sum()
    }
}

/// Aggregate operation counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricStats {
    /// RDMA READ operations issued.
    pub reads: u64,
    /// RDMA WRITE operations issued.
    pub writes: u64,
    /// Remote fetch-and-add operations issued.
    pub faas: u64,
    /// Payload bytes moved by READs.
    pub read_bytes: u64,
    /// Payload bytes moved by WRITEs.
    pub write_bytes: u64,
    /// Cycles FAA requests spent queued behind a busy comm server
    /// (contention visible in the `ablation_faa` experiment).
    pub faa_queue_cycles: u64,
}

impl ToJson for FabricStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("reads", Json::UInt(self.reads)),
            ("writes", Json::UInt(self.writes)),
            ("faas", Json::UInt(self.faas)),
            ("read_bytes", Json::UInt(self.read_bytes)),
            ("write_bytes", Json::UInt(self.write_bytes)),
            ("faa_queue_cycles", Json::UInt(self.faa_queue_cycles)),
        ])
    }
}

impl FromJson for FabricStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FabricStats {
            reads: v.field("reads")?.as_u64()?,
            writes: v.field("writes")?.as_u64()?,
            faas: v.field("faas")?.as_u64()?,
            read_bytes: v.field("read_bytes")?.as_u64()?,
            write_bytes: v.field("write_bytes")?.as_u64()?,
            faa_queue_cycles: v.field("faa_queue_cycles")?.as_u64()?,
        })
    }
}

/// Memoized distinct payload sizes before the cache falls back to direct
/// computation. The protocol moves a small closed set of sizes (8-byte
/// control words, taskq entries, stack frames), so this is generous.
const MAX_MEMO_SIZES: usize = 32;

/// Precomputed READ/WRITE latency tables.
///
/// `CostModel::rdma_read`/`rdma_write` price every op as
/// `discounted_base + payload(bytes)`, each involving float math. Both
/// factors are fixed for the life of a fabric: the base depends only on
/// the op and locality class (4 combinations), and the payload only on
/// the byte count, which the protocol draws from a handful of fixed
/// sizes. This cache computes the four bases once at construction and
/// memoizes payload cycles per distinct size, so the per-op hot path is
/// integer adds plus a short linear scan — bit-identical to the direct
/// computation by construction (same float expressions, evaluated once).
#[derive(Clone, Debug)]
struct LatencyCache {
    /// Discounted READ base, indexed by `intra_node as usize`.
    read_base: [u64; 2],
    /// Discounted WRITE base, indexed by `intra_node as usize`.
    write_base: [u64; 2],
    bytes_per_cycle: f64,
    /// `(bytes, payload_cycles)` pairs, insertion order.
    sizes: Vec<(usize, u64)>,
}

impl LatencyCache {
    fn new(cost: &CostModel) -> Self {
        let discount = |base: u64| (base as f64 * cost.intra_node_discount) as u64;
        LatencyCache {
            read_base: [cost.rdma_read_base, discount(cost.rdma_read_base)],
            write_base: [cost.rdma_write_base, discount(cost.rdma_write_base)],
            bytes_per_cycle: cost.rdma_bytes_per_cycle,
            sizes: Vec::with_capacity(MAX_MEMO_SIZES),
        }
    }

    #[inline]
    fn payload(&mut self, bytes: usize) -> u64 {
        if let Some(&(_, cycles)) = self.sizes.iter().find(|&&(s, _)| s == bytes) {
            return cycles;
        }
        let cycles = (bytes as f64 / self.bytes_per_cycle) as u64;
        if self.sizes.len() < MAX_MEMO_SIZES {
            self.sizes.push((bytes, cycles));
        }
        cycles
    }

    #[inline]
    fn read(&mut self, bytes: usize, intra_node: bool) -> Cycles {
        Cycles(self.read_base[intra_node as usize] + self.payload(bytes))
    }

    #[inline]
    fn write(&mut self, bytes: usize, intra_node: bool) -> Cycles {
        Cycles(self.write_base[intra_node as usize] + self.payload(bytes))
    }
}

/// The simulated interconnect plus every process's registered memory.
#[derive(Clone, Debug)]
pub struct Fabric {
    topo: Topology,
    cost: CostModel,
    lat: LatencyCache,
    procs: Vec<ProcMem>,
    /// Per-node comm-server busy-until instant (software FAA).
    server_busy: Vec<Cycles>,
    stats: FabricStats,
    /// Op-level trace ring; `None` (the default) records nothing.
    #[cfg(feature = "trace")]
    trace: Option<RingBuffer>,
}

impl Fabric {
    /// A fabric connecting `topo.total_workers()` processes.
    pub fn new(topo: Topology, cost: CostModel) -> Self {
        let n = topo.total_workers() as usize;
        Fabric {
            procs: vec![ProcMem::default(); n],
            server_busy: vec![Cycles::ZERO; topo.nodes as usize],
            topo,
            lat: LatencyCache::new(&cost),
            cost,
            stats: FabricStats::default(),
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// Start recording op-level trace events into a ring of `capacity`.
    #[cfg(feature = "trace")]
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(RingBuffer::new(capacity));
    }

    /// Stop tracing and take the recorded events (oldest first).
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace
            .take()
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Record one completed operation into the trace ring, if tracing.
    #[cfg(feature = "trace")]
    fn trace_op(
        &mut self,
        now: Cycles,
        done: Cycles,
        initiator: WorkerId,
        op: RdmaOpKind,
        target: WorkerId,
        bytes: u64,
    ) {
        if let Some(ring) = self.trace.as_mut() {
            let target = self.topo.node_of(target);
            ring.push(TraceEvent::span(
                now,
                done.since(now),
                initiator,
                EventKind::RdmaOp { op, target, bytes },
            ));
        }
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Register `[addr, addr+len)` on `proc` as pinned, RDMA-accessible
    /// memory, zero-initialized.
    pub fn register(&mut self, proc: WorkerId, addr: u64, len: usize) -> Result<(), RdmaError> {
        if len == 0 {
            return Err(RdmaError::ZeroLength);
        }
        self.procs[proc.index()]
            .register(addr, len)
            .map_err(|_| RdmaError::OverlappingRegistration { proc, addr })
    }

    /// Owner-side view of a process's memory.
    pub fn mem(&self, proc: WorkerId) -> &ProcMem {
        &self.procs[proc.index()]
    }

    /// Owner-side mutable view of a process's memory.
    pub fn mem_mut(&mut self, proc: WorkerId) -> &mut ProcMem {
        &mut self.procs[proc.index()]
    }

    /// One-sided RDMA READ: copy `buf.len()` bytes from
    /// `(target, remote_addr)` into `buf`. Returns the completion instant.
    pub fn read(
        &mut self,
        now: Cycles,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        buf: &mut [u8],
    ) -> Result<Cycles, RdmaError> {
        if buf.is_empty() {
            return Err(RdmaError::ZeroLength);
        }
        self.procs[target.index()]
            .read_local(remote_addr, buf)
            .map_err(|_| RdmaError::NotRegistered {
                proc: target,
                addr: remote_addr,
            })?;
        self.stats.reads += 1;
        self.stats.read_bytes += buf.len() as u64;
        let intra = self.topo.same_node(initiator, target);
        let done = now + self.lat.read(buf.len(), intra);
        #[cfg(feature = "trace")]
        self.trace_op(
            now,
            done,
            initiator,
            RdmaOpKind::Read,
            target,
            buf.len() as u64,
        );
        Ok(done)
    }

    /// One-sided RDMA WRITE: copy `data` to `(target, remote_addr)`.
    /// Returns the instant the initiator observes completion.
    pub fn write(
        &mut self,
        now: Cycles,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        data: &[u8],
    ) -> Result<Cycles, RdmaError> {
        if data.is_empty() {
            return Err(RdmaError::ZeroLength);
        }
        self.procs[target.index()]
            .write_local(remote_addr, data)
            .map_err(|_| RdmaError::NotRegistered {
                proc: target,
                addr: remote_addr,
            })?;
        self.stats.writes += 1;
        self.stats.write_bytes += data.len() as u64;
        let intra = self.topo.same_node(initiator, target);
        let done = now + self.lat.write(data.len(), intra);
        #[cfg(feature = "trace")]
        self.trace_op(
            now,
            done,
            initiator,
            RdmaOpKind::Write,
            target,
            data.len() as u64,
        );
        Ok(done)
    }

    /// Remote fetch-and-add on a little-endian u64.
    ///
    /// With the default (software) model the request is served by the
    /// *target node's* comm server: the request notice travels to the
    /// server, waits for the server to be free, is applied, and the reply
    /// notice travels back. Returns `(previous value, completion instant)`.
    /// The unloaded round trip is `2 × notice + service` = 9.8K cycles on
    /// the FX10 profile; queueing delay is added on top and recorded in
    /// [`FabricStats::faa_queue_cycles`].
    pub fn fetch_add_u64(
        &mut self,
        now: Cycles,
        _initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        delta: u64,
    ) -> Result<(u64, Cycles), RdmaError> {
        if !remote_addr.is_multiple_of(8) {
            return Err(RdmaError::Misaligned { addr: remote_addr });
        }
        let mem = &mut self.procs[target.index()];
        let old = mem
            .read_u64_local(remote_addr)
            .map_err(|_| RdmaError::NotRegistered {
                proc: target,
                addr: remote_addr,
            })?;
        mem.write_u64_local(remote_addr, old.wrapping_add(delta))
            .expect("readable address is writable");
        self.stats.faas += 1;

        let done = if self.cost.hardware_faa {
            now + Cycles(self.cost.hardware_faa_latency)
        } else {
            let node = self.topo.node_of(target);
            let arrival = now + Cycles(self.cost.faa_notice_latency);
            let busy = &mut self.server_busy[node.index()];
            let start = arrival.max(*busy);
            let wait = start.since(arrival);
            self.stats.faa_queue_cycles += wait.get();
            let served = start + Cycles(self.cost.faa_service);
            *busy = served;
            #[cfg(feature = "trace")]
            if wait.get() > 0 {
                if let Some(ring) = self.trace.as_mut() {
                    ring.push(TraceEvent::span(
                        arrival,
                        wait,
                        _initiator,
                        EventKind::FaaQueueWait { wait, server: node },
                    ));
                }
            }
            served + Cycles(self.cost.faa_notice_latency)
        };
        #[cfg(feature = "trace")]
        self.trace_op(now, done, _initiator, RdmaOpKind::FetchAdd, target, 8);
        Ok((old, done))
    }

    /// Convenience: remote read of a little-endian u64.
    pub fn read_u64(
        &mut self,
        now: Cycles,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
    ) -> Result<(u64, Cycles), RdmaError> {
        let mut b = [0u8; 8];
        let done = self.read(now, initiator, target, remote_addr, &mut b)?;
        Ok((u64::from_le_bytes(b), done))
    }

    /// Convenience: remote write of a little-endian u64.
    pub fn write_u64(
        &mut self,
        now: Cycles,
        initiator: WorkerId,
        target: WorkerId,
        remote_addr: u64,
        v: u64,
    ) -> Result<Cycles, RdmaError> {
        self.write(now, initiator, target, remote_addr, &v.to_le_bytes())
    }

    /// Operation counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Reset operation counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric2() -> Fabric {
        // Two nodes, two workers each.
        Fabric::new(Topology::new(2, 2), CostModel::fx10())
    }

    const W0: WorkerId = WorkerId(0);
    const W1: WorkerId = WorkerId(1);
    const W2: WorkerId = WorkerId(2);

    #[test]
    fn read_write_roundtrip_moves_bytes() {
        let mut f = fabric2();
        f.register(W2, 0x1000, 256).unwrap();
        let data = [0xab; 64];
        let t1 = f.write(Cycles(100), W0, W2, 0x1040, &data).unwrap();
        assert!(t1 > Cycles(100));
        let mut buf = [0u8; 64];
        let t2 = f.read(t1, W0, W2, 0x1040, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert!(t2 > t1);
        // Untouched neighbours stay zero.
        let mut b2 = [0u8; 8];
        f.read(t2, W0, W2, 0x1000, &mut b2).unwrap();
        assert_eq!(b2, [0; 8]);
    }

    #[test]
    fn unregistered_access_fails() {
        let mut f = fabric2();
        let mut buf = [0u8; 8];
        assert!(matches!(
            f.read(Cycles::ZERO, W0, W1, 0x2000, &mut buf),
            Err(RdmaError::NotRegistered { .. })
        ));
        f.register(W1, 0x2000, 16).unwrap();
        // Straddling the end of the region fails too.
        assert!(f.read(Cycles::ZERO, W0, W1, 0x200c, &mut buf).is_err());
    }

    #[test]
    fn overlapping_registration_rejected() {
        let mut f = fabric2();
        f.register(W0, 0x1000, 4096).unwrap();
        assert!(matches!(
            f.register(W0, 0x1800, 16),
            Err(RdmaError::OverlappingRegistration { .. })
        ));
        assert!(f.register(W0, 0x1000 + 4096, 16).is_ok(), "abutting ok");
        // Same addresses on a different proc are independent.
        assert!(f.register(W1, 0x1000, 4096).is_ok());
    }

    #[test]
    fn faa_returns_previous_value() {
        let mut f = fabric2();
        f.register(W2, 0x3000, 64).unwrap();
        f.mem_mut(W2).write_u64_local(0x3008, 41).unwrap();
        let (old, done) = f.fetch_add_u64(Cycles(0), W0, W2, 0x3008, 1).unwrap();
        assert_eq!(old, 41);
        assert_eq!(f.mem(W2).read_u64_local(0x3008).unwrap(), 42);
        // Unloaded software FAA = 9.8K cycles.
        assert_eq!(done, Cycles(9_800));
    }

    #[test]
    fn faa_misaligned_rejected() {
        let mut f = fabric2();
        f.register(W2, 0x3000, 64).unwrap();
        assert!(matches!(
            f.fetch_add_u64(Cycles(0), W0, W2, 0x3004, 1),
            Err(RdmaError::Misaligned { .. })
        ));
    }

    #[test]
    fn faa_contention_queues_at_comm_server() {
        let mut f = fabric2();
        f.register(W2, 0x3000, 64).unwrap();
        // Two FAAs to the same node issued simultaneously: the second
        // waits for the server.
        let (_, d1) = f.fetch_add_u64(Cycles(0), W0, W2, 0x3000, 1).unwrap();
        let (_, d2) = f.fetch_add_u64(Cycles(0), W1, W2, 0x3000, 1).unwrap();
        assert_eq!(d1, Cycles(9_800));
        assert_eq!(d2, Cycles(9_800 + 1_400), "queued behind one service");
        assert_eq!(f.stats().faa_queue_cycles, 1_400);
        // A different node's server is independent.
        f.register(W0, 0x3000, 64).unwrap();
        let (_, d3) = f.fetch_add_u64(Cycles(0), W2, W0, 0x3000, 1).unwrap();
        assert_eq!(d3, Cycles(9_800));
    }

    #[test]
    fn hardware_faa_ablation() {
        let mut cost = CostModel::fx10();
        cost.hardware_faa = true;
        let mut f = Fabric::new(Topology::new(2, 2), cost);
        f.register(W2, 0x3000, 64).unwrap();
        let (_, d1) = f.fetch_add_u64(Cycles(0), W0, W2, 0x3000, 1).unwrap();
        let (_, d2) = f.fetch_add_u64(Cycles(0), W1, W2, 0x3000, 1).unwrap();
        assert_eq!(d1, Cycles(3_000));
        assert_eq!(d2, Cycles(3_000), "NIC-side FAA does not serialize");
    }

    #[test]
    fn intra_node_ops_are_faster() {
        let mut f = fabric2();
        f.register(W1, 0x1000, 64).unwrap();
        f.register(W2, 0x1000, 64).unwrap();
        let mut buf = [0u8; 32];
        let intra = f.read(Cycles(0), W0, W1, 0x1000, &mut buf).unwrap();
        let inter = f.read(Cycles(0), W0, W2, 0x1000, &mut buf).unwrap();
        assert!(intra < inter);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric2();
        f.register(W1, 0x1000, 128).unwrap();
        let mut buf = [0u8; 100];
        f.read(Cycles(0), W0, W1, 0x1000, &mut buf).unwrap();
        f.write(Cycles(0), W0, W1, 0x1000, &buf[..50]).unwrap();
        f.fetch_add_u64(Cycles(0), W0, W1, 0x1000, 1).unwrap();
        let s = f.stats();
        assert_eq!((s.reads, s.writes, s.faas), (1, 1, 1));
        assert_eq!(s.read_bytes, 100);
        assert_eq!(s.write_bytes, 50);
        f.reset_stats();
        assert_eq!(f.stats(), FabricStats::default());
    }

    #[test]
    fn fabric_stats_json_round_trip() {
        let mut f = fabric2();
        f.register(W1, 0x1000, 128).unwrap();
        let mut buf = [0u8; 64];
        f.read(Cycles(0), W0, W1, 0x1000, &mut buf).unwrap();
        f.write(Cycles(0), W0, W1, 0x1000, &buf[..16]).unwrap();
        f.fetch_add_u64(Cycles(0), W0, W1, 0x1000, 1).unwrap();
        f.fetch_add_u64(Cycles(0), W2, W1, 0x1000, 1).unwrap();
        let s = f.stats();
        assert!(s.faa_queue_cycles > 0, "second FAA must queue");
        let text = s.to_json().to_string();
        let back = FabricStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn tracing_records_ops_and_faa_queue_waits() {
        use uat_trace::{EventKind, RdmaOpKind};

        let mut f = fabric2();
        f.enable_trace(1024);
        f.register(W2, 0x1000, 128).unwrap();
        let mut buf = [0u8; 32];
        f.read(Cycles(0), W0, W2, 0x1000, &mut buf).unwrap();
        f.write(Cycles(10), W0, W2, 0x1000, &buf[..8]).unwrap();
        f.fetch_add_u64(Cycles(0), W0, W2, 0x1000, 1).unwrap();
        f.fetch_add_u64(Cycles(0), W1, W2, 0x1000, 1).unwrap();
        let events = f.take_trace();
        let ops: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::RdmaOp { op, bytes, .. } => Some((op, bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                (RdmaOpKind::Read, 32),
                (RdmaOpKind::Write, 8),
                (RdmaOpKind::FetchAdd, 8),
                (RdmaOpKind::FetchAdd, 8),
            ]
        );
        // The second FAA queued behind the first; its wait is traced and
        // matches the stats counter.
        let waits: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FaaQueueWait { wait, server } => Some((wait.get(), server)),
                _ => None,
            })
            .collect();
        assert_eq!(
            waits.iter().map(|(w, _)| w).sum::<u64>(),
            f.stats().faa_queue_cycles
        );
        assert_eq!(waits.len(), 1);
        // The wait queued at W2's node's comm server.
        assert_eq!(waits[0].1, f.topology().node_of(W2));
        // Tracing is one-shot: taking it disables further recording.
        f.read(Cycles(0), W0, W2, 0x1000, &mut buf).unwrap();
        assert!(f.take_trace().is_empty());
    }

    #[test]
    fn latency_cache_matches_cost_model() {
        // The cached fabric latencies must equal CostModel's direct
        // computation for every (op, locality, size) combination —
        // including sizes past the memoization cap, which fall back to
        // direct computation. Exercise well over MAX_MEMO_SIZES distinct
        // sizes, revisiting early (memoized) ones along the way.
        let cost = CostModel::fx10();
        let mut lat = LatencyCache::new(&cost);
        let sizes: Vec<usize> = (0..2 * MAX_MEMO_SIZES).map(|i| 8 + 13 * i).collect();
        for pass in 0..2 {
            for &sz in &sizes {
                for intra in [false, true] {
                    assert_eq!(
                        lat.read(sz, intra),
                        cost.rdma_read(sz, intra),
                        "read sz={sz} intra={intra} pass={pass}"
                    );
                    assert_eq!(
                        lat.write(sz, intra),
                        cost.rdma_write(sz, intra),
                        "write sz={sz} intra={intra} pass={pass}"
                    );
                }
            }
        }
        assert_eq!(lat.sizes.len(), MAX_MEMO_SIZES, "memo table is capped");
    }

    #[test]
    fn local_access_helpers() {
        let mut f = fabric2();
        f.register(W0, 0x5000, 64).unwrap();
        f.mem_mut(W0).write_u64_local(0x5010, 0xdead_beef).unwrap();
        assert_eq!(f.mem(W0).read_u64_local(0x5010).unwrap(), 0xdead_beef);
        assert!(f.mem(W0).read_u64_local(0x9000).is_err());
        assert_eq!(f.mem(W0).registered_bytes(), 64);
    }
}
