//! Simulated RDMA fabric.
//!
//! The paper's work stealing is *one-sided*: a thief manipulates the
//! victim's task queue and reads the victim's stack bytes with RDMA READ,
//! WRITE and fetch-and-add, never involving the victim's CPU (Section 5.3).
//! FX10's Tofu interconnect has no hardware fetch-and-add, so one core per
//! node runs a *communication server* and FAA requests travel as "RDMA
//! WRITE with remote notice" (Section 6, 9.8K cycles average).
//!
//! This crate reproduces that substrate in simulation:
//!
//! - Every simulated process registers pinned memory regions with the
//!   [`Fabric`]; remote operations address `(process, virtual address)`
//!   pairs and **actually move bytes** between backing buffers, so the
//!   protocols built on top (THE deque, stack transfer) are real code
//!   paths, not statistical stand-ins.
//! - Every operation returns the cycle instant at which it completes,
//!   computed from the calibrated [`CostModel`](uat_base::CostModel)
//!   (Figure 9 latency shape).
//! - Fetch-and-add goes through a per-node comm server with an explicit
//!   busy-until clock, so FAA *queueing delay under contention* emerges in
//!   the simulation exactly as it would on the FX10 comm-server core.
//! - Accessing unregistered (unpinned) memory is an error — the pinning
//!   requirement that dooms iso-address (Section 4, problem 3) is enforced,
//!   not just documented.

// `deny`, not `forbid`: the `backend` module's `ShmFabric` is the one
// place this crate touches raw memory (loads/stores/FAA on registered
// process-shared windows) and locally re-allows it with documented
// [I13] obligations; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod fabric;
pub mod latency;

pub use backend::{OneSidedFabric, ShmFabric};
pub use fabric::{Fabric, FabricStats, ProcMem, RdmaError};
pub use latency::LatencyModel;
