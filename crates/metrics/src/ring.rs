//! Flight-recorder event ring: the last N scheduler events per worker.
//!
//! The simulator's audit feature keeps a bounded trace ring and dumps it
//! when an invariant trips (`target/flight/*.trace.json`). The native
//! watchdog needs the same post-mortem story for a runtime that may be
//! mid-wedge: each worker records compact `(timestamp, code, payload)`
//! triples into its own ring with plain relaxed stores (single writer),
//! and the sampler thread takes a racy read-only [`EventRing::snapshot`]
//! when it decides to dump. A torn read can at worst mispair one slot's
//! timestamp with the next event's code — acceptable for a crash dump,
//! and the alternative (locks on the scheduler hot path) is not.

use std::sync::atomic::{AtomicU64, Ordering};

/// One decoded flight-recorder entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Raw timestamp (TSC cycles on the native runtime).
    pub at: u64,
    /// Event code; the recording layer owns the code → name mapping.
    pub code: u8,
    /// Event-specific payload (victim id, task count, ...).
    pub payload: u64,
}

struct Slot {
    at: AtomicU64,
    /// `code` in the top byte, `payload` in the low 56 bits.
    packed: AtomicU64,
}

/// A fixed-capacity single-writer ring of [`FlightEvent`]s.
pub struct EventRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// A ring holding the newest `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        EventRing {
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    at: AtomicU64::new(0),
                    packed: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Record one event, evicting the oldest when full. Intended for a
    /// single writer (the owning worker); `payload` is truncated to 56
    /// bits.
    #[inline]
    pub fn push(&self, at: u64, code: u8, payload: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (self.slots.len() - 1)];
        slot.at.store(at, Ordering::Relaxed);
        slot.packed.store(
            ((code as u64) << 56) | (payload & ((1 << 56) - 1)),
            Ordering::Relaxed,
        );
        self.head.store(h + 1, Ordering::Relaxed);
    }

    /// Total events ever pushed (not just the retained window).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The retained window, oldest first. Racy against a concurrent
    /// writer by design (see module docs); with the writer quiesced the
    /// result is exact.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .map(|i| {
                let slot = &self.slots[(i as usize) & (self.slots.len() - 1)];
                let packed = slot.packed.load(Ordering::Relaxed);
                FlightEvent {
                    at: slot.at.load(Ordering::Relaxed),
                    code: (packed >> 56) as u8,
                    payload: packed & ((1 << 56) - 1),
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_window_in_order() {
        let r = EventRing::new(4);
        for i in 0..10u64 {
            r.push(i * 100, i as u8, i);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap,
            (6..10u64)
                .map(|i| FlightEvent {
                    at: i * 100,
                    code: i as u8,
                    payload: i
                })
                .collect::<Vec<_>>()
        );
        assert_eq!(r.pushed(), 10);
    }

    #[test]
    fn partial_fill_returns_only_pushed_events() {
        let r = EventRing::new(8);
        r.push(1, 2, 3);
        assert_eq!(
            r.snapshot(),
            vec![FlightEvent {
                at: 1,
                code: 2,
                payload: 3
            }]
        );
    }

    #[test]
    fn payload_truncates_to_56_bits() {
        let r = EventRing::new(2);
        r.push(0, 0xAB, u64::MAX);
        let e = r.snapshot()[0];
        assert_eq!(e.code, 0xAB);
        assert_eq!(e.payload, (1 << 56) - 1);
    }
}
