//! Shared-memory metrics segment: the layout contract between the
//! multiprocess runtime and the parent-side exporter.
//!
//! The multiprocess backend cannot hand a [`Registry`](crate::Registry)
//! across `fork` — its shards are heap cells of one address space. It
//! instead reserves a *segment* of the shared uni-address region as a
//! bank of per-worker `u64` counter cells, laid out by
//! [`SegmentLayout`]. Workers bump their own cells with process-shared
//! atomics (single-writer, like registry shards); the parent reads the
//! cells — through its RDMA-window abstraction
//! (`uat_rdma::OneSidedFabric`), no RPC, no pipes — and rebuilds an
//! ordinary [`Snapshot`](crate::Snapshot) with
//! [`SegmentLayout::snapshot`], so every downstream exporter
//! (Prometheus text, JSON, deltas) works on multiprocess runs
//! unchanged.
//!
//! This module is pure layout arithmetic and snapshot assembly — it
//! never touches the mapping itself (this crate forbids `unsafe`; the
//! mapped-memory side lives with the runtime in `uat-fiber`).

use crate::names;
use crate::registry::{MetricSnapshot, Snapshot, ValueSnapshot};

/// The per-worker counters the multiprocess runtime publishes, in cell
/// order. Index in this table == cell index within a worker's row
/// (asserted against the runtime's hard-coded indices by a `uat-fiber`
/// test, so the two cannot drift apart silently).
pub const SEGMENT_COUNTERS: &[(&str, &str)] = &[
    (
        names::HEARTBEATS,
        "Scheduler loop iterations per worker (heartbeat epochs)",
    ),
    (
        names::STEALS_COMPLETED,
        "Steal attempts that took an entry and resumed the stolen thread",
    ),
    (
        names::STEALS_FAILED,
        "Steal attempts that aborted (victim empty, lock busy, or raced)",
    ),
    (
        names::PARKS,
        "Workers that crossed the idle spin threshold into a sleep cycle",
    ),
    (
        names::UNPARKS,
        "Parked workers that subsequently found work",
    ),
    (names::TASKS, "Tasks run to completion"),
];

/// Cells per worker row, padded so each worker's row is its own
/// 64-byte cache line (single-writer rows must not false-share).
pub const ROW_STRIDE: usize = 8;

const _: () = assert!(SEGMENT_COUNTERS.len() <= ROW_STRIDE);

/// Shape of one run's shared metrics segment: `workers` rows of
/// [`ROW_STRIDE`] `u64` cells, worker-major (worker `w`'s cells are the
/// contiguous row starting at word `w * ROW_STRIDE`), counters within a
/// row ordered as [`SEGMENT_COUNTERS`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentLayout {
    workers: usize,
}

impl SegmentLayout {
    /// Layout for a run with `workers` worker processes.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "segment needs at least one worker");
        SegmentLayout { workers }
    }

    /// Worker rows in the segment.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total `u64` cells in the segment.
    pub fn words(&self) -> usize {
        self.workers * ROW_STRIDE
    }

    /// Total bytes of the segment.
    pub fn bytes(&self) -> usize {
        self.words() * 8
    }

    /// Byte offset of worker `w`'s row within the segment (the window a
    /// parent-side fabric registers per worker).
    pub fn row_offset(&self, w: usize) -> usize {
        assert!(w < self.workers);
        w * ROW_STRIDE * 8
    }

    /// Bytes of one worker row.
    pub const fn row_bytes() -> usize {
        ROW_STRIDE * 8
    }

    /// Word index of counter `c` (a [`SEGMENT_COUNTERS`] index) for
    /// worker `w`.
    pub fn cell(&self, w: usize, c: usize) -> usize {
        assert!(w < self.workers);
        assert!(c < SEGMENT_COUNTERS.len());
        w * ROW_STRIDE + c
    }

    /// Assemble an ordinary registry [`Snapshot`] from the segment's
    /// cell values (`words` must be the whole segment, [`words`] long,
    /// as read by the parent). Cell order and naming come from
    /// [`SEGMENT_COUNTERS`], so exporters cannot tell a multiprocess
    /// snapshot from an in-process one.
    ///
    /// [`words`]: Self::words
    pub fn snapshot(&self, words: &[u64]) -> Snapshot {
        assert_eq!(
            words.len(),
            self.words(),
            "segment snapshot needs the whole cell bank"
        );
        let metrics = SEGMENT_COUNTERS
            .iter()
            .enumerate()
            .map(|(c, (name, help))| MetricSnapshot {
                name: (*name).into(),
                help: (*help).into(),
                value: ValueSnapshot::Counter {
                    per_worker: (0..self.workers).map(|w| words[self.cell(w, c)]).collect(),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_worker_major_and_padded() {
        let l = SegmentLayout::new(3);
        assert_eq!(l.words(), 24);
        assert_eq!(l.bytes(), 192);
        assert_eq!(l.row_offset(2), 128);
        assert_eq!(l.cell(0, 0), 0);
        assert_eq!(l.cell(1, 0), ROW_STRIDE);
        assert_eq!(l.cell(2, 5), 2 * ROW_STRIDE + 5);
    }

    #[test]
    fn snapshot_round_trips_cells() {
        let l = SegmentLayout::new(2);
        let mut words = vec![0u64; l.words()];
        // worker 0: 7 tasks; worker 1: 5 tasks, 2 steals.
        words[l.cell(0, 5)] = 7;
        words[l.cell(1, 5)] = 5;
        words[l.cell(1, 1)] = 2;
        let snap = l.snapshot(&words);
        assert_eq!(snap.total(names::TASKS), 12);
        assert_eq!(snap.per_worker(names::TASKS).unwrap(), &[7, 5]);
        assert_eq!(snap.total(names::STEALS_COMPLETED), 2);
        assert_eq!(snap.per_worker(names::STEALS_COMPLETED).unwrap(), &[0, 2]);
        // The snapshot is a plain registry snapshot: exporters work.
        let text = snap.prometheus_text();
        assert!(text.contains(names::TASKS));
    }

    #[test]
    #[should_panic(expected = "whole cell bank")]
    fn short_bank_rejected() {
        let l = SegmentLayout::new(2);
        l.snapshot(&[0u64; 3]);
    }
}
