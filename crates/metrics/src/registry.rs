//! Named metric registry with snapshot/delta semantics.
//!
//! A [`Registry`] is created once per run with the worker count; hot
//! paths hold `Arc`s to the individual [`Counter`]s / [`Gauge`]s /
//! [`LogHistogram`]s (no name lookup after registration), while
//! samplers and exporters call [`Registry::snapshot`] to freeze a
//! coherent-enough view. Two snapshots subtract into a delta
//! ([`Snapshot::delta_since`]), which is what a periodic scraper wants.

use std::sync::{Arc, Mutex};

use crate::hist::HistSnapshot;
use crate::{Counter, Gauge, LogHistogram};
use uat_base::json::{Json, ToJson};

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named collection of metrics for one run.
pub struct Registry {
    workers: usize,
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// A registry whose sharded metrics get one shard per worker.
    pub fn new(workers: usize) -> Self {
        Registry {
            workers: workers.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Worker (shard) count this registry was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().expect("metrics registry poisoned")
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.instrument {
                Instrument::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let c = Arc::new(Counter::new(self.workers));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Get or create the gauge `name`. Panics on a kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.instrument {
                Instrument::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let g = Arc::new(Gauge::new(self.workers));
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Get or create the histogram `name`. Panics on a kind mismatch.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<LogHistogram> {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.instrument {
                Instrument::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let h = Arc::new(LogHistogram::new());
        entries.push(Entry {
            name: name.into(),
            help: help.into(),
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Freeze every registered metric. Concurrent updates land in this
    /// snapshot or the next — each shard read is atomic, so nothing
    /// tears and counters never go backwards across snapshots.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self
            .lock()
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => ValueSnapshot::Counter {
                        per_worker: c.per_worker(),
                    },
                    Instrument::Gauge(g) => ValueSnapshot::Gauge {
                        per_worker: g.per_worker(),
                    },
                    Instrument::Histogram(h) => ValueSnapshot::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("workers", &self.workers)
            .field("metrics", &self.lock().len())
            .finish()
    }
}

/// One metric's frozen value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueSnapshot {
    /// Monotone counter shards, indexed by worker.
    Counter {
        /// Shard values, indexed by worker.
        per_worker: Vec<u64>,
    },
    /// Gauge shards, indexed by worker.
    Gauge {
        /// Shard values, indexed by worker.
        per_worker: Vec<u64>,
    },
    /// A frozen histogram.
    Histogram(HistSnapshot),
}

impl ValueSnapshot {
    /// Aggregate value: shard sum for counters/gauges, sample count for
    /// histograms.
    pub fn total(&self) -> u64 {
        match self {
            ValueSnapshot::Counter { per_worker } | ValueSnapshot::Gauge { per_worker } => {
                per_worker.iter().sum()
            }
            ValueSnapshot::Histogram(h) => h.count(),
        }
    }
}

/// A named frozen metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus-style, e.g. `uat_steals_completed_total`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// The frozen value.
    pub value: ValueSnapshot,
}

/// A frozen view of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Every registered metric, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Aggregate value of `name` (see [`ValueSnapshot::total`]);
    /// 0 when absent.
    pub fn total(&self, name: &str) -> u64 {
        self.get(name).map_or(0, |m| m.value.total())
    }

    /// Per-worker shard values of a counter or gauge; `None` for
    /// histograms or absent names.
    pub fn per_worker(&self, name: &str) -> Option<&[u64]> {
        match &self.get(name)?.value {
            ValueSnapshot::Counter { per_worker } | ValueSnapshot::Gauge { per_worker } => {
                Some(per_worker)
            }
            ValueSnapshot::Histogram(_) => None,
        }
    }

    /// The frozen histogram registered as `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match &self.get(name)?.value {
            ValueSnapshot::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating), gauges keep their current
    /// value. Metrics absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let value = match (&m.value, earlier.get(&m.name).map(|e| &e.value)) {
                    (
                        ValueSnapshot::Counter { per_worker },
                        Some(ValueSnapshot::Counter { per_worker: before }),
                    ) => ValueSnapshot::Counter {
                        per_worker: per_worker
                            .iter()
                            .zip(before.iter().chain(std::iter::repeat(&0)))
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                    },
                    (ValueSnapshot::Histogram(h), Some(ValueSnapshot::Histogram(before))) => {
                        ValueSnapshot::Histogram(h.delta_since(before))
                    }
                    (v, _) => v.clone(),
                };
                MetricSnapshot {
                    name: m.name.clone(),
                    help: m.help.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { metrics }
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let metrics: Vec<Json> = self
            .metrics
            .iter()
            .map(|m| {
                let (kind, value) = match &m.value {
                    ValueSnapshot::Counter { per_worker } => (
                        "counter",
                        Json::obj([
                            ("total", Json::UInt(per_worker.iter().sum())),
                            (
                                "per_worker",
                                Json::Arr(per_worker.iter().map(|&v| Json::UInt(v)).collect()),
                            ),
                        ]),
                    ),
                    ValueSnapshot::Gauge { per_worker } => (
                        "gauge",
                        Json::obj([
                            ("total", Json::UInt(per_worker.iter().sum())),
                            (
                                "per_worker",
                                Json::Arr(per_worker.iter().map(|&v| Json::UInt(v)).collect()),
                            ),
                        ]),
                    ),
                    ValueSnapshot::Histogram(h) => ("histogram", h.to_json()),
                };
                Json::obj([
                    ("name", Json::str(&m.name)),
                    ("help", Json::str(&m.help)),
                    ("kind", Json::str(kind)),
                    ("value", value),
                ])
            })
            .collect();
        Json::obj([("metrics", Json::Arr(metrics))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new(2);
        let a = r.counter("uat_steals_total", "steals");
        let b = r.counter("uat_steals_total", "steals");
        a.inc(0);
        b.inc(1);
        assert_eq!(r.snapshot().total("uat_steals_total"), 2);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new(2);
        r.counter("uat_x", "");
        r.gauge("uat_x", "");
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let r = Registry::new(2);
        let c = r.counter("uat_c_total", "");
        let g = r.gauge("uat_g", "");
        let h = r.histogram("uat_h_cycles", "");
        c.add(0, 10);
        g.set(1, 5);
        h.record(100);
        let before = r.snapshot();
        c.add(1, 7);
        g.set(1, 9);
        h.record(200);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.per_worker("uat_c_total").unwrap(), &[0, 7]);
        assert_eq!(delta.per_worker("uat_g").unwrap(), &[0, 9]);
        let dh = delta.histogram("uat_h_cycles").unwrap();
        assert_eq!(dh.count(), 1);
        assert_eq!(dh.sum(), 200);
    }

    #[test]
    fn json_export_names_every_metric() {
        let r = Registry::new(1);
        r.counter("uat_a_total", "a");
        r.histogram("uat_b_cycles", "b").record(42);
        let json = r.snapshot().to_json();
        let text = json.pretty();
        assert!(text.contains("uat_a_total"));
        assert!(text.contains("uat_b_cycles"));
        // Round-trips through the parser.
        uat_base::json::Json::parse(&text).unwrap();
    }
}
