//! Canonical metric names shared by both backends.
//!
//! The simulator and the native fiber runtime register the *same*
//! scheduler metrics under these names, so exporters, the CI smoke
//! checks, and the sim-vs-native comparison scripts never have to map
//! between two vocabularies. Cycle-valued histograms count simulated
//! cycles on the sim backend and calibrated TSC cycles on the native
//! one — same shape, different clock.

/// Scheduler loop iterations per worker — the watchdog's heartbeat
/// epochs. A worker whose shard freezes while others advance is stalled.
pub const HEARTBEATS: &str = "uat_heartbeats_total";

/// Steal attempts that took an entry and resumed the stolen thread.
pub const STEALS_COMPLETED: &str = "uat_steals_completed_total";

/// Steal attempts that aborted (victim empty, lock busy, or raced).
pub const STEALS_FAILED: &str = "uat_steals_failed_total";

/// Workers that crossed the idle spin threshold into a sleep cycle.
pub const PARKS: &str = "uat_parks_total";

/// Parked workers that subsequently found work.
pub const UNPARKS: &str = "uat_unparks_total";

/// Tasks run to completion.
pub const TASKS: &str = "uat_tasks_total";

/// Trace events evicted from full per-worker rings.
pub const TRACE_DROPPED: &str = "uat_trace_dropped_total";

/// End-to-end steal-attempt latency in cycles (first protocol phase
/// through the result, all outcomes).
pub const STEAL_LATENCY: &str = "uat_steal_latency_cycles";

/// Task run length in cycles, begin to completion.
pub const TASK_RUN: &str = "uat_task_run_cycles";

/// Duration of one park episode in cycles (sleep entry to the wake that
/// found work).
pub const PARK_DURATION: &str = "uat_park_duration_cycles";

/// Sampled deque depth distribution (entries observed per sample).
pub const DEQUE_DEPTH: &str = "uat_deque_depth";

/// Most recently sampled deque depth per worker.
pub const DEQUE_DEPTH_NOW: &str = "uat_deque_depth_current";
