//! Online metrics for the uni-address runtime.
//!
//! The trace layer (`uat-trace`) reconstructs a run *after* it finished;
//! this crate is the *during* view: counters a live sampler or an
//! exporter can read while workers are still running. Everything is
//! built from three primitives:
//!
//! - [`Counter`] / [`Gauge`]: per-worker shards, one cache line each, so
//!   a worker's hot-path increment is a relaxed load + store on a line
//!   no other core writes (shards are single-writer — no `lock` prefix
//!   needed). Aggregation happens on the (rare) read side.
//! - [`LogHistogram`]: an HDR-style log-bucketed histogram — each
//!   power-of-two range is split into `2^`[`SUB_BITS`] linear
//!   sub-buckets, bounding the relative error of any quantile by one
//!   sub-bucket width (≤ 1/2^[`SUB_BITS`] of the value). Snapshots are
//!   plain arrays: mergeable, subtractable, and queryable for
//!   p50/p90/p99/p999 without touching the live atomics again.
//! - [`Registry`]: a named collection of the above with
//!   snapshot/delta semantics and two exporters — Prometheus text
//!   ([`Snapshot::prometheus_text`]) and `uat_base::json`
//!   ([`uat_base::json::ToJson`] on [`Snapshot`]).
//!
//! [`EventRing`] is the odd one out: a tiny per-worker flight-recorder
//! ring (single writer, racy reader) the native watchdog dumps when a
//! worker's heartbeat stalls — "what was each worker last doing" for a
//! runtime that can no longer answer politely.
//!
//! The crate is dependency-free beyond `uat-base` (for the JSON model)
//! and contains no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
pub mod names;
mod registry;
mod ring;
pub mod shm;

pub use hist::{
    bucket_index, bucket_lower, bucket_upper, HistSnapshot, HistSummary, LogHistogram, NUM_BUCKETS,
    SUB_BITS,
};
pub use registry::{MetricSnapshot, Registry, Snapshot, ValueSnapshot};
pub use ring::{EventRing, FlightEvent};

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads (and aligns) a value to a cache line so per-worker shards never
/// share one — the whole point of sharding is that a worker's relaxed
/// `fetch_add` stays local to a line no other core writes.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// A monotonically increasing counter, sharded per worker.
///
/// Each shard is **single-writer**: only worker `w` increments shard
/// `w`, so `add` is a relaxed load + store (no `lock` prefix) on a line
/// no other core writes — concurrent `add`s to the *same* shard may lose
/// increments. `total` and `per_worker` aggregate on read; readers see a
/// racy-but-coherent view (each shard monotone, no tearing within a
/// shard), which is all snapshot/delta semantics need.
#[derive(Debug)]
pub struct Counter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl Counter {
    /// A counter with one shard per worker.
    pub fn new(workers: usize) -> Self {
        Counter {
            shards: (0..workers.max(1))
                .map(|_| CachePadded::default())
                .collect(),
        }
    }

    /// Number of shards (workers) this counter was built for.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Add 1 to `worker`'s shard.
    #[inline]
    pub fn inc(&self, worker: usize) {
        self.add(worker, 1);
    }

    /// Add `n` to `worker`'s shard. Single-writer: the shard's owning
    /// worker only (a racing second writer can lose increments).
    #[inline]
    pub fn add(&self, worker: usize, n: u64) {
        let shard = &self.shards[worker].0;
        shard.store(
            shard.load(Ordering::Relaxed).wrapping_add(n),
            Ordering::Relaxed,
        );
    }

    /// Current value of one shard.
    pub fn get(&self, worker: usize) -> u64 {
        self.shards[worker].0.load(Ordering::Relaxed)
    }

    /// Sum over all shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// All shard values, indexed by worker.
    pub fn per_worker(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .collect()
    }
}

/// A last-written-value gauge, sharded per worker (e.g. current deque
/// depth). `total` sums the shards, which is the natural reading for
/// additive gauges like queue depths.
#[derive(Debug)]
pub struct Gauge {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl Gauge {
    /// A gauge with one shard per worker.
    pub fn new(workers: usize) -> Self {
        Gauge {
            shards: (0..workers.max(1))
                .map(|_| CachePadded::default())
                .collect(),
        }
    }

    /// Number of shards (workers) this gauge was built for.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Overwrite `worker`'s shard.
    #[inline]
    pub fn set(&self, worker: usize, value: u64) {
        self.shards[worker].0.store(value, Ordering::Relaxed);
    }

    /// Current value of one shard.
    pub fn get(&self, worker: usize) -> u64 {
        self.shards[worker].0.load(Ordering::Relaxed)
    }

    /// Sum over all shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// All shard values, indexed by worker.
    pub fn per_worker(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_are_cache_line_sized() {
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
    }

    #[test]
    fn counter_aggregates_across_shards() {
        let c = Counter::new(4);
        c.inc(0);
        c.add(1, 10);
        c.add(3, 5);
        c.inc(3);
        assert_eq!(c.total(), 17);
        assert_eq!(c.per_worker(), vec![1, 10, 0, 6]);
        assert_eq!(c.get(3), 6);
    }

    #[test]
    fn gauge_overwrites_and_sums() {
        let g = Gauge::new(3);
        g.set(0, 7);
        g.set(0, 2);
        g.set(2, 40);
        assert_eq!(g.total(), 42);
        assert_eq!(g.per_worker(), vec![2, 0, 40]);
    }

    #[test]
    fn zero_worker_count_still_has_one_shard() {
        let c = Counter::new(0);
        c.inc(0);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 40_000);
    }
}
