//! Prometheus text exposition for [`Snapshot`].
//!
//! Counters and gauges are emitted per worker (label `worker="N"`);
//! histograms use the standard cumulative `_bucket{le="..."}` series,
//! listing only populated buckets plus the mandatory `+Inf` rail, with
//! `_sum` and `_count`. The output parses under the Prometheus text
//! format v0.0.4 (one scrape's worth — this crate has no HTTP listener;
//! the bins print it to stderr and the sampler can hand it to any
//! push-gateway shim).

use std::fmt::Write as _;

use crate::hist::bucket_upper;
use crate::registry::{Snapshot, ValueSnapshot};

impl Snapshot {
    /// Render the whole snapshot in Prometheus text format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            match &m.value {
                ValueSnapshot::Counter { per_worker } => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    for (w, v) in per_worker.iter().enumerate() {
                        let _ = writeln!(out, "{}{{worker=\"{w}\"}} {v}", m.name);
                    }
                }
                ValueSnapshot::Gauge { per_worker } => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    for (w, v) in per_worker.iter().enumerate() {
                        let _ = writeln!(out, "{}{{worker=\"{w}\"}} {v}", m.name);
                    }
                }
                ValueSnapshot::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cumulative}",
                            m.name,
                            bucket_upper(i)
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", m.name, h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new(2);
        let c = r.counter("uat_steals_completed_total", "Completed steals.");
        c.add(0, 3);
        c.add(1, 4);
        let g = r.gauge("uat_deque_depth", "Entries in each worker's deque.");
        g.set(1, 9);
        let h = r.histogram("uat_steal_latency_cycles", "Steal latency.");
        h.record(10);
        h.record(10);
        h.record(5_000);

        let text = r.snapshot().prometheus_text();
        assert!(text.contains("# TYPE uat_steals_completed_total counter"));
        assert!(text.contains("uat_steals_completed_total{worker=\"0\"} 3"));
        assert!(text.contains("uat_steals_completed_total{worker=\"1\"} 4"));
        assert!(text.contains("# TYPE uat_deque_depth gauge"));
        assert!(text.contains("uat_deque_depth{worker=\"1\"} 9"));
        assert!(text.contains("# TYPE uat_steal_latency_cycles histogram"));
        assert!(text.contains("uat_steal_latency_cycles_bucket{le=\"10\"} 2"));
        assert!(text.contains("uat_steal_latency_cycles_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("uat_steal_latency_cycles_sum 5020"));
        assert!(text.contains("uat_steal_latency_cycles_count 3"));
        // Cumulative: the second populated bucket's value includes the first.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("uat_steal_latency_cycles_bucket"))
            .collect();
        assert_eq!(lines.len(), 3); // two populated + +Inf
        assert!(lines[1].ends_with(" 3"));
    }
}
