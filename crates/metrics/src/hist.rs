//! HDR-style log-bucketed histogram.
//!
//! `uat_base::stats::Histogram` is a plain 64-bucket power-of-two
//! histogram: one bucket per binary order of magnitude, so a p999 query
//! can be off by almost 2x. This one splits every power-of-two range
//! into `2^`[`SUB_BITS`] *linear* sub-buckets (the HdrHistogram trick),
//! bounding any quantile's relative error by `1/2^SUB_BITS` (≤ 3.2% at
//! the default of 5) while still covering the whole `u64` range in a
//! fixed [`NUM_BUCKETS`]-slot array.
//!
//! The live [`LogHistogram`] records with relaxed atomics (any thread
//! may record; the runtime shards hot histograms per worker anyway);
//! [`HistSnapshot`] is the frozen plain-array form that merges,
//! subtracts (delta-since), and answers quantile queries.

use std::sync::atomic::{AtomicU64, Ordering};
use uat_base::json::{Json, JsonError, ToJson};

/// Sub-bucket resolution: each power-of-two range gets `2^SUB_BITS`
/// linear sub-buckets, so relative quantile error is ≤ `1/2^SUB_BITS`.
pub const SUB_BITS: u32 = 5;

const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`:
/// one exact region for values `< 2^SUB_BITS` plus one `2^SUB_BITS`-wide
/// region per remaining binary order of magnitude.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index holding `v`. Values below `2^SUB_BITS` map exactly
/// (bucket width 1); above, the top `SUB_BITS + 1` significant bits
/// select the bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // 2^h <= v, h >= SUB_BITS
    let sub = (v >> (h - SUB_BITS)) as usize - SUB;
    (((h - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Smallest value mapping to bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    let r = i >> SUB_BITS;
    let sub = (i & (SUB - 1)) as u64;
    if r == 0 {
        sub
    } else {
        (SUB as u64 + sub) << (r - 1)
    }
}

/// Largest value mapping to bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// A concurrently recordable log-bucketed histogram.
///
/// ~15 KiB of relaxed atomics; `record` is two `fetch_add`s (bucket +
/// running sum). Reads go through [`LogHistogram::snapshot`].
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Freeze the current contents. Concurrent `record`s may or may not
    /// be included (racy read), but each included sample is counted
    /// exactly once.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: plain counts, mergeable and subtractable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total recorded samples.
    count: u64,
    /// Sum of all recorded values.
    sum: u64,
    /// Per-bucket sample counts (dense, [`NUM_BUCKETS`] long).
    buckets: Vec<u64>,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Build directly from samples (test/offline convenience).
    pub fn of_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut s = Self::empty();
        for v in samples {
            s.buckets[bucket_index(v)] += 1;
            s.count += 1;
            // Wrapping, to match the live histogram's atomic adds.
            s.sum = s.sum.wrapping_add(v);
        }
        s
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (dense).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Add `other`'s samples into `self`. The result is identical to a
    /// histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Samples recorded since `earlier` (a previous snapshot of the same
    /// histogram). Saturating per bucket, so a mismatched pair degrades
    /// to zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        HistSnapshot {
            count: buckets.iter().sum(),
            // Wrapping: inverts the wrapping adds on the record side.
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets,
        }
    }

    /// The upper bound of the bucket holding the `ceil(q·count)`-th
    /// smallest sample — i.e. at most one sub-bucket's width above the
    /// exact q-quantile (relative error ≤ `1/2^`[`SUB_BITS`]).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Upper bound of the highest populated bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper)
    }

    /// The standard quantile digest: count, p50/p90/p99/p999, max.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// Quantile digest of a [`HistSnapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Upper bound of the highest populated bucket.
    pub max: u64,
}

impl ToJson for HistSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("p50", Json::UInt(self.p50)),
            ("p90", Json::UInt(self.p90)),
            ("p99", Json::UInt(self.p99)),
            ("p999", Json::UInt(self.p999)),
            ("max", Json::UInt(self.max)),
        ])
    }
}

impl ToJson for HistSnapshot {
    /// Sparse encoding: only populated buckets, as
    /// `[[index, upper_bound, count], ...]`, plus the digest.
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::Arr(vec![
                    Json::UInt(i as u64),
                    Json::UInt(bucket_upper(i)),
                    Json::UInt(c),
                ])
            })
            .collect();
        Json::obj([
            ("summary", self.summary().to_json()),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

impl uat_base::json::FromJson for HistSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut s = HistSnapshot::empty();
        for entry in v.field("buckets")?.as_arr()? {
            let e = entry.as_arr()?;
            if e.len() != 3 {
                return Err(JsonError {
                    msg: "histogram bucket entry must be [index, upper, count]".into(),
                });
            }
            let i = e[0].as_u64()? as usize;
            if i >= NUM_BUCKETS {
                return Err(JsonError {
                    msg: format!("bucket index {i} out of range"),
                });
            }
            let c = e[2].as_u64()?;
            s.buckets[i] += c;
            s.count += c;
        }
        s.sum = v.field("summary")?.field("sum")?.as_u64()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::json::FromJson;

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every bucket's range starts where the previous one ended.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower(i),
                bucket_upper(i - 1) + 1,
                "gap or overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_inverts_bounds() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            let s = HistSnapshot::of_samples([v]);
            assert_eq!(s.quantile(0.5), v);
            assert_eq!(s.max(), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 0..58 {
            let v = 1_234_567u64.rotate_left(shift) | 1;
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i) + 1;
            if v >= SUB as u64 {
                assert!(
                    width <= v / SUB as u64 + 1,
                    "bucket width {width} too wide for value {v}"
                );
            }
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        // 1..=1000: p50 lands in the bucket holding 500, p999 in 1000's.
        let s = HistSnapshot::of_samples(1..=1000);
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        let within = |q: f64, exact: u64| {
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                got - exact <= exact / SUB as u64,
                "q{q}: {got} more than one sub-bucket above {exact}"
            );
        };
        within(0.5, 500);
        within(0.9, 900);
        within(0.99, 990);
        within(0.999, 999);
        within(1.0, 1000);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let b: Vec<u64> = (0..300).map(|i| i * i + 3).collect();
        let mut merged = HistSnapshot::of_samples(a.iter().copied());
        merged.merge(&HistSnapshot::of_samples(b.iter().copied()));
        let concat = HistSnapshot::of_samples(a.into_iter().chain(b));
        assert_eq!(merged, concat);
    }

    #[test]
    fn delta_since_recovers_the_increment() {
        let live = LogHistogram::new();
        for v in [3u64, 99, 1_000_000] {
            live.record(v);
        }
        let before = live.snapshot();
        for v in [7u64, 7, 12_345] {
            live.record(v);
        }
        let delta = live.snapshot().delta_since(&before);
        assert_eq!(delta, HistSnapshot::of_samples([7u64, 7, 12_345]));
    }

    #[test]
    fn json_round_trip_preserves_buckets() {
        let s = HistSnapshot::of_samples([0u64, 1, 31, 32, 1000, u64::MAX]);
        let back = HistSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.summary(), HistSummary::default());
    }
}
