//! Property tests for the log-bucketed histogram (ISSUE 9 satellite):
//!
//! 1. for random sample sets drawn from several distribution shapes,
//!    every reported quantile is within one sub-bucket's relative error
//!    of the exact sorted-sample quantile;
//! 2. merging snapshots is exactly the histogram of the concatenated
//!    samples.

use proptest::prelude::*;
use uat_metrics::{bucket_index, bucket_lower, bucket_upper, HistSnapshot, SUB_BITS};

/// Exact quantile with the same rank convention the histogram uses:
/// the `ceil(q·n)`-th smallest sample (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Shape raw draws into different distributions so the property is not
/// only exercised on uniform data: identity, squared (right-skewed),
/// low-bits (clustered small values), and exponential-ish (bit-shifted).
fn shape(raw: u64, dist: u8) -> u64 {
    match dist % 4 {
        0 => raw % 100_000,
        1 => (raw % 65_536).pow(2),
        2 => raw % 32,
        _ => (raw % 1_024) << (raw % 40),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_one_bucket_of_exact(
        raw in proptest::collection::vec(any::<u64>(), 1..400),
        dist in any::<u8>(),
    ) {
        let samples: Vec<u64> = raw.iter().map(|&r| shape(r, dist)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let hist = HistSnapshot::of_samples(samples.iter().copied());
        prop_assert_eq!(hist.count(), samples.len() as u64);

        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let got = hist.quantile(q);
            // The histogram answers with the upper bound of the bucket
            // holding the exact sample: same bucket, so the error is at
            // most the bucket width, i.e. exact / 2^SUB_BITS.
            prop_assert_eq!(bucket_index(got), bucket_index(exact));
            prop_assert!(got >= exact);
            prop_assert!(
                got - exact <= (exact >> SUB_BITS),
                "q{} off by {} on exact {} (bucket width {})",
                q, got - exact, exact,
                bucket_upper(bucket_index(exact)) - bucket_lower(bucket_index(exact)) + 1
            );
        }
    }

    #[test]
    fn merge_is_concatenation(
        raw_a in proptest::collection::vec(any::<u64>(), 0..200),
        raw_b in proptest::collection::vec(any::<u64>(), 0..200),
        dist in any::<u8>(),
    ) {
        let a: Vec<u64> = raw_a.iter().map(|&r| shape(r, dist)).collect();
        let b: Vec<u64> = raw_b.iter().map(|&r| shape(r, dist.wrapping_add(1))).collect();
        let mut merged = HistSnapshot::of_samples(a.iter().copied());
        merged.merge(&HistSnapshot::of_samples(b.iter().copied()));
        let concat = HistSnapshot::of_samples(a.iter().chain(&b).copied());
        prop_assert_eq!(&merged, &concat);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(merged.quantile(q), concat.quantile(q));
        }
    }

    #[test]
    fn delta_since_is_exact_for_supersets(
        raw_a in proptest::collection::vec(any::<u64>(), 0..150),
        raw_b in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        // Snapshot after A, then after A+B: the delta must be exactly B.
        let before = HistSnapshot::of_samples(raw_a.iter().copied());
        let mut after = before.clone();
        after.merge(&HistSnapshot::of_samples(raw_b.iter().copied()));
        let delta = after.delta_since(&before);
        prop_assert_eq!(delta, HistSnapshot::of_samples(raw_b.iter().copied()));
    }
}
