//! The stall watchdog, exercised both ways: a run with a deliberately
//! wedged worker must trip (with a usable post-mortem dump), and a
//! healthy run under the same sampler must never trip.
//!
//! The sabotage knob (`Runtime::with_stalled_worker`) wedges one worker
//! before it enters the scheduler loop: it stays alive (so the run
//! completes on the remaining workers) but never bumps its heartbeat
//! epoch — exactly the signature of the `fib_across_worker_counts`
//! segfault precursor the watchdog exists to catch.

#![cfg(feature = "metrics")]

use std::sync::Arc;
use std::time::{Duration, Instant};
use uat_fiber::runtime::{spawn, Runtime};
use uat_fiber::{WatchdogAction, WatchdogCfg, WatchdogReport};
use uat_metrics::names;

#[test]
fn sabotaged_worker_trips_watchdog() {
    let report = Arc::new(WatchdogReport::default());
    let rt = Runtime::new(4)
        .with_stalled_worker(2)
        .with_sampler(Duration::from_millis(2))
        .with_watchdog(WatchdogCfg {
            stall_after: Duration::from_millis(100),
            action: WatchdogAction::Report(Arc::clone(&report)),
        });
    // Keep the machine busy with real fork-join work until the trip is
    // recorded (bounded, so a broken watchdog fails the assert instead
    // of hanging the suite).
    let r2 = Arc::clone(&report);
    rt.run(move || {
        let t0 = Instant::now();
        while !r2.tripped() && t0.elapsed() < Duration::from_secs(30) {
            let handles: Vec<_> = (0..8)
                .map(|i| spawn(move || std::hint::black_box(i)))
                .collect();
            for h in handles {
                h.join();
            }
        }
    });
    assert!(
        report.tripped(),
        "watchdog never tripped on a stalled worker"
    );
    let dump = report.take().expect("trip recorded a dump");
    assert_eq!(dump.worker, 2, "watchdog blamed the wrong worker");
    assert_eq!(dump.heartbeats.len(), 4);
    assert_eq!(dump.heartbeats[2], 0, "the wedged worker never heartbeats");
    assert!(
        dump.heartbeats[0] > 0,
        "healthy workers advanced while the wedged one stalled"
    );
    // The dump is a usable post-mortem: full metrics snapshot plus one
    // flight ring per worker, and it renders to JSON.
    assert_eq!(dump.flight.len(), 4);
    assert!(dump.snapshot.total(names::TASKS) > 0);
    assert!(dump.snapshot.get(names::HEARTBEATS).is_some());
    let doc = dump.to_json().pretty();
    assert!(doc.contains("stalled_worker"));
    uat_base::json::Json::parse(&doc).expect("dump JSON round-trips");
}

#[test]
fn clean_run_never_trips() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let a = spawn(move || fib(n - 1));
        let b = fib(n - 2);
        a.join() + b
    }
    let report = Arc::new(WatchdogReport::default());
    let rt = Runtime::new(4)
        .with_sampler(Duration::from_millis(2))
        .with_watchdog(WatchdogCfg {
            // Wide enough that OS scheduling jitter on an oversubscribed
            // CI host cannot fake a stall; the run below spans several
            // such windows, so a trigger-happy watchdog still fails.
            stall_after: Duration::from_millis(500),
            action: WatchdogAction::Report(Arc::clone(&report)),
        });
    let (out, _sched, snap) = rt.run_metered(|| {
        let t0 = Instant::now();
        let mut acc = 0u64;
        while t0.elapsed() < Duration::from_millis(1_500) {
            acc = acc.wrapping_add(fib(15));
        }
        acc
    });
    assert!(out > 0);
    assert!(!report.tripped(), "watchdog tripped on a healthy run");
    assert!(report.take().is_none());
    // The sampler ran: heartbeats advanced and deque depths were
    // sampled; the timed tier recorded task run lengths.
    assert!(snap.total(names::HEARTBEATS) > 0);
    assert!(snap.get(names::DEQUE_DEPTH).is_some());
    assert!(
        snap.histogram(names::TASK_RUN)
            .expect("task-run histogram")
            .count()
            > 0
    );
    assert!(snap.total(names::TASKS) > 0);
}
