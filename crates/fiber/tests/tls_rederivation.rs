//! Regression lock for the TLS-across-context-switch bug (DESIGN.md
//! §10.3): `current()` reads a thread-local `Worker` pointer on both
//! sides of suspension points, and a resumed fiber may be on a
//! *different* OS thread. When the TLS lookup inlined into the
//! suspending frame, LLVM CSE'd the post-resume lookup into the
//! pre-suspend address — handing resumed code the previous thread's
//! worker, which retired stacks into the wrong pool and eventually
//! resumed a fiber onto reused stack memory.
//!
//! The fix is `#[inline(never)]` on `current()`. The static side of
//! the lock is `uat-lint`'s `tls-in-crossing-fn` / `tls-helper-inlinable`
//! rules (CI gates the real tree). This file is the dynamic side: under
//! multi-worker churn, worker identity observed *after* a join must be
//! re-derived fresh — so across many suspensions we must observe
//! migration (post-resume id differing from pre-suspend id), which a
//! cached pre-suspend lookup can never report, while every id stays in
//! range and the computation stays correct.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uat_fiber::{current_worker_id, spawn, Runtime};

/// Fork-join churn that records worker identity around every join.
fn churn(depth: u32, migrations: &Arc<AtomicUsize>, nworkers: usize) -> u64 {
    if depth == 0 {
        return 1;
    }
    let m = Arc::clone(migrations);
    let child = spawn(move || churn(depth - 1, &m, nworkers));
    let local = churn(depth - 1, migrations, nworkers);

    let before = current_worker_id();
    assert!(before < nworkers, "worker id {before} out of range");
    let stolen = child.join(); // suspension point: may resume elsewhere
    let after = current_worker_id();
    assert!(
        after < nworkers,
        "post-resume worker id {after} out of range (stale TLS?)"
    );
    if after != before {
        migrations.fetch_add(1, Ordering::Relaxed);
    }
    local + stolen
}

#[test]
fn worker_identity_is_rederived_after_every_resume() {
    let nworkers = 4;
    let rt = Runtime::new(nworkers);
    let migrations = Arc::new(AtomicUsize::new(0));
    // Repeat runs until migration is observed: each run performs 2^12-ish
    // joins across 4 workers, so a single run nearly always suffices; the
    // retry bound keeps the test deterministic-ish without flakiness.
    let mut seen = 0;
    for round in 0..10 {
        let m = Arc::clone(&migrations);
        let total = rt.run(move || churn(12, &m, nworkers));
        assert_eq!(total, 1 << 12, "fork-join result corrupted (round {round})");
        seen = migrations.load(Ordering::Relaxed);
        if seen > 0 {
            break;
        }
    }
    // The load-bearing assertion: a CSE'd (stale) TLS lookup reports the
    // pre-suspend worker forever, so migrations would read 0 under any
    // amount of churn. Fresh re-derivation observes stealing.
    assert!(
        seen > 0,
        "no fiber ever observed migration across {nworkers} workers — \
         post-resume worker lookup appears cached (the DESIGN.md §10.3 bug)"
    );
}

/// Single-worker sanity: with one worker there is nowhere to migrate,
/// and the id must be identically 0 on both sides of every suspension.
#[test]
fn single_worker_identity_is_stable() {
    let rt = Runtime::new(1);
    let migrations = Arc::new(AtomicUsize::new(0));
    let m = Arc::clone(&migrations);
    let total = rt.run(move || churn(8, &m, 1));
    assert_eq!(total, 1 << 8);
    assert_eq!(
        migrations.load(Ordering::Relaxed),
        0,
        "phantom migration with a single worker"
    );
}
