//! The Appendix A context switch, ported instruction for instruction.
//!
//! `save_context_and_call(parent, f, arg)` pushes the parent-context
//! pointer, the six callee-saved registers, the stack pointer and a
//! resume address onto the *current* stack — that 72-byte record *is* the
//! [`Context`] — then calls `f(ctx, arg)` on the same stack. If `f`
//! returns normally, the record is popped and the function returns to its
//! caller. Alternatively, any thread that owns the record (possibly
//! another worker, possibly after the record's stack bytes were copied
//! back into place) can jump into it with `resume_context(ctx)`, which
//! lands at the same epilogue.
//!
//! This is the entire machinery the paper needs from assembly ("The
//! library is implemented in C++ and a few assembly codes", Section 7).

use std::arch::global_asm;

/// The 72-byte on-stack context record (Appendix A's `context_t`).
///
/// Field order matches the push sequence in the assembly below — do not
/// reorder.
#[repr(C)]
#[derive(Debug)]
pub struct Context {
    /// Resume instruction pointer (the label after the call site).
    pub rip: u64,
    /// Saved stack pointer; always equals the address of this record.
    pub rsp: u64,
    /// Callee-saved registers.
    pub rbp: u64,
    /// Callee-saved.
    pub rbx: u64,
    /// Callee-saved.
    pub r12: u64,
    /// Callee-saved.
    pub r13: u64,
    /// Callee-saved.
    pub r14: u64,
    /// Callee-saved.
    pub r15: u64,
    /// The parent thread's context (Figure 4's bookkeeping).
    pub parent: *mut Context,
}

/// `f(ctx, arg)` — the function `save_context_and_call` transfers to.
pub type ContextFn = unsafe extern "C" fn(*mut Context, *mut core::ffi::c_void);

unsafe extern "C" {
    /// Save the current continuation as a [`Context`] on this stack and
    /// call `f(ctx, arg)`.
    ///
    /// Returns when either `f` returns normally or someone calls
    /// [`resume_context`] on `ctx`.
    ///
    /// # Safety
    /// `f` must either return normally exactly once *or* never return
    /// (having transferred control elsewhere); `ctx` may be resumed at
    /// most once, and only while the 72 bytes at `ctx` hold the saved
    /// record (they may have been copied out and back in the meantime —
    /// that is the uni-address trick). No unwinding may cross this frame.
    pub fn save_context_and_call(parent: *mut Context, f: ContextFn, arg: *mut core::ffi::c_void);

    /// Jump into a saved context: `rsp = ctx; ret`.
    ///
    /// # Safety
    /// `ctx` must be a live record produced by [`save_context_and_call`]
    /// whose stack memory above it is intact, and must not be resumed
    /// twice. Never returns.
    pub fn resume_context(ctx: *mut Context) -> !;

    /// Move the stack pointer to `new_sp` (16-byte aligned, top of a
    /// fresh stack) and call `f(arg)` there. `f` must never return —
    /// the fresh stack has no frame to return to (this is the paper's
    /// `CALL_WITH_SAFE_SP`, Figure 7).
    ///
    /// # Safety
    /// `new_sp` must be the top of a mapped, writable stack; `f` must
    /// transfer control away (e.g. via [`resume_context`]) instead of
    /// returning.
    pub fn switch_stack_and_call(
        new_sp: *mut u8,
        f: unsafe extern "C" fn(*mut core::ffi::c_void) -> !,
        arg: *mut core::ffi::c_void,
    ) -> !;
}

// The Appendix A listing, in AT&T syntax as printed in the paper.
global_asm!(
    r#"
    .text
    .globl save_context_and_call
    .type save_context_and_call, @function
save_context_and_call:
    .cfi_startproc
    push %rdi              /* save parent context */
    push %r15              /* save callee-saved regs */
    push %r14
    push %r13
    push %r12
    push %rbx
    push %rbp
    lea  -16(%rsp), %rax   /* save current SP (== &ctx after 2 pushes) */
    push %rax
    lea  1f(%rip), %rax    /* save IP for resume */
    push %rax
    /* call a thread start function */
    mov  %rsi, %rax        /* function f */
    mov  %rsp, %rdi        /* argument ctx */
    mov  %rdx, %rsi        /* argument arg */
    call *%rax
    add  $8, %rsp          /* pop IP */
1:  /* here, jumped from resume_context */
    add  $8, %rsp          /* pop SP */
    pop  %rbp              /* restore callee-saved regs */
    pop  %rbx
    pop  %r12
    pop  %r13
    pop  %r14
    pop  %r15
    add  $8, %rsp          /* pop parent context */
    ret
    .cfi_endproc
    .size save_context_and_call, . - save_context_and_call

    .globl resume_context
    .type resume_context, @function
resume_context:
    .cfi_startproc
    mov  %rdi, %rsp        /* restore SP (== ctx) */
    ret                    /* pop IP and restore it */
    .cfi_endproc
    .size resume_context, . - resume_context

    .globl switch_stack_and_call
    .type switch_stack_and_call, @function
switch_stack_and_call:
    .cfi_startproc
    mov  %rdi, %rsp        /* SP = top of the fresh stack (16-aligned) */
    mov  %rsi, %rax        /* f */
    mov  %rdx, %rdi        /* arg */
    call *%rax             /* f(arg); leaves SP ≡ 8 (mod 16) per ABI */
    ud2                    /* f must not return */
    .cfi_endproc
    .size switch_stack_and_call, . - switch_stack_and_call
"#,
    options(att_syntax)
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::c_void;

    /// f returns normally: save_context_and_call behaves like a call.
    #[test]
    fn normal_return_path() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static HIT: AtomicU64 = AtomicU64::new(0);
        unsafe extern "C" fn f(ctx: *mut Context, arg: *mut c_void) {
            HIT.store(arg as u64, Ordering::Relaxed);
            // SAFETY: [I5] ctx points at the record save_context_and_call just
            // built on the caller's stack, live until f returns.
            unsafe {
                // The context records this very stack: rsp == ctx.
                assert_eq!((*ctx).rsp, ctx as u64);
                assert!((*ctx).rip != 0);
            }
        }
        // SAFETY: [I5] f returns normally, so this behaves as a plain call.
        unsafe {
            save_context_and_call(std::ptr::null_mut(), f, 42usize as *mut c_void);
        }
        assert_eq!(HIT.load(Ordering::Relaxed), 42);
        // Callee-saved state survived (the compiler checks this for us by
        // the test simply not crashing, but exercise some register
        // pressure to be sure).
        let vals: Vec<u64> = (0..64).collect();
        // SAFETY: [I5] as above; f returns normally.
        unsafe {
            save_context_and_call(std::ptr::null_mut(), f, 7 as *mut c_void);
        }
        assert_eq!(vals.iter().sum::<u64>(), 2016);
    }

    /// f never returns; instead the saved context is resumed explicitly —
    /// the runtime's suspend path in miniature.
    #[test]
    fn resume_path() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static STAGE: AtomicU64 = AtomicU64::new(0);
        unsafe extern "C" fn f(ctx: *mut Context, _arg: *mut c_void) {
            STAGE.store(1, Ordering::Relaxed);
            // SAFETY: [I5] ctx is the caller's live continuation, resumed
            // exactly once, with only Copy locals live in f.
            unsafe { resume_context(ctx) }
        }
        // SAFETY: [I5] f diverges into the saved context; control returns
        // here exactly once via that resume.
        unsafe {
            save_context_and_call(std::ptr::null_mut(), f, std::ptr::null_mut());
        }
        assert_eq!(
            STAGE.load(Ordering::Relaxed),
            1,
            "f ran, then jumped back here via resume"
        );
    }

    /// The parent pointer rides along in the record.
    #[test]
    fn parent_pointer_stored() {
        unsafe extern "C" fn f(ctx: *mut Context, arg: *mut c_void) {
            // SAFETY: [I5] ctx is the live record on the caller's stack; the
            // parent field is only compared, never dereferenced.
            unsafe {
                assert_eq!((*ctx).parent, arg as *mut Context);
            }
        }
        let fake_parent = 0x1234_5678usize as *mut Context;
        // SAFETY: [I5] f returns normally; the fake parent pointer is stored
        // in the record but never dereferenced.
        unsafe {
            save_context_and_call(fake_parent, f, fake_parent as *mut c_void);
        }
    }

    /// Nested saves: a context within a context, resumed inner-first.
    #[test]
    fn nested_contexts() {
        static mut TRACE: Vec<u32> = Vec::new();
        unsafe extern "C" fn inner(ctx: *mut Context, _arg: *mut c_void) {
            // SAFETY: [I5] single-threaded test, so the static TRACE has no
            // concurrent access; ctx is outer's live continuation,
            // resumed exactly once.
            unsafe {
                (*std::ptr::addr_of_mut!(TRACE)).push(2);
                resume_context(ctx);
            }
        }
        unsafe extern "C" fn outer(ctx: *mut Context, _arg: *mut c_void) {
            // SAFETY: [I5] same single-threaded TRACE access; the nested save
            // returns here via inner's resume, then ctx (the test body's
            // continuation) is resumed exactly once.
            unsafe {
                (*std::ptr::addr_of_mut!(TRACE)).push(1);
                save_context_and_call(std::ptr::null_mut(), inner, std::ptr::null_mut());
                (*std::ptr::addr_of_mut!(TRACE)).push(3);
                resume_context(ctx);
            }
        }
        // SAFETY: [I5] outer diverges into the saved context; TRACE is only
        // touched from this one thread.
        unsafe {
            save_context_and_call(std::ptr::null_mut(), outer, std::ptr::null_mut());
            (*std::ptr::addr_of_mut!(TRACE)).push(4);
            assert_eq!(&*std::ptr::addr_of!(TRACE), &vec![1, 2, 3, 4]);
        }
    }

    /// The record layout matches the assembly's push order.
    #[test]
    fn record_layout() {
        assert_eq!(std::mem::size_of::<Context>(), 72);
        assert_eq!(std::mem::offset_of!(Context, rip), 0);
        assert_eq!(std::mem::offset_of!(Context, rsp), 8);
        assert_eq!(std::mem::offset_of!(Context, rbp), 16);
        assert_eq!(std::mem::offset_of!(Context, parent), 64);
    }
}
