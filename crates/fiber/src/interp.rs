//! Native interpreter for the backend-neutral task model: run any
//! `uat-model` [`Workload`] on real fibers.
//!
//! This is the second backend of the workspace (the first is the
//! discrete-event simulator in `uat-cluster`): the *same* `Action`
//! programs the simulator times against the FX10 cost model execute here
//! on real x86-64 lightweight threads with real work stealing —
//!
//! - [`Action::Work`]`(c)` is calibrated spinning of `c` timestamp-counter
//!   ticks ([`tsc::spin_cycles`]), optionally scaled down for tests;
//! - [`Action::Spawn`]`(d)` is a child-first fiber creation
//!   ([`runtime::spawn`]): the child's interpreter starts immediately on
//!   a fresh stack while the parent's continuation is pushed on the
//!   `NativeDeque`, stealable by any idle worker;
//! - [`Action::JoinAll`] joins every child spawned so far — one done-flag
//!   load on the fast path, else the Figure 7 suspend while the worker
//!   finds other work;
//! - [`Workload::frame_size`] is honored by *really reserving* that many
//!   bytes of the task's stack before the program runs, so stack-depth
//!   behaviour (and guard-page faults on overflow) are genuine.
//!
//! The run reports [`NativeRunStats`] with the same unit accounting as
//! the simulator's `RunStats` (`total_units`, `total_tasks`,
//! `total_work_cycles`), plus a schedule-independent
//! [join-tree fingerprint](uat_model::join_tree_fingerprint) — the basis
//! of the differential sim-vs-native harness in the root package's
//! `tests/differential.rs`.

use crate::runtime::{spawn, JoinHandle, Runtime};
use crate::tsc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uat_model::{task_shape_hash, Action, Workload};

/// Bytes of genuine stack reserved per recursion step of
/// [`with_reserved_frame`]. Small enough that the reservation tracks
/// `frame_size` closely; large enough that the recursion overhead stays
/// a minor fraction.
const FRAME_CHUNK: usize = 256;

/// Run `f` with (at least) `bytes` bytes of the current stack reserved
/// below it — the native realisation of a task's uni-address frame
/// claim. The reservation is real: each step places a touched buffer on
/// the stack, so a `frame_size` that exceeds the runtime's stack size
/// faults on the guard page instead of silently lying.
#[inline(never)]
pub(crate) fn with_reserved_frame<R, F: FnOnce() -> R>(bytes: u64, f: F) -> R {
    if bytes == 0 {
        return f();
    }
    let mut pad = [0u8; FRAME_CHUNK];
    std::hint::black_box(pad.as_mut_ptr());
    with_reserved_frame(bytes.saturating_sub(FRAME_CHUNK as u64), f)
}

/// Atomic accumulators shared by every task of one native run.
#[derive(Default)]
struct Counters {
    tasks: AtomicU64,
    units: AtomicU64,
    work_cycles: AtomicU64,
    joins: AtomicU64,
    spawns: AtomicU64,
    frame_bytes_total: AtomicU64,
    live_frame_bytes: AtomicU64,
    peak_frame_bytes: AtomicU64,
    join_fingerprint: AtomicU64,
}

/// Interpret one task: expand its program and execute it on this fiber.
fn exec<W>(w: &Arc<W>, d: &W::Desc, c: &Arc<Counters>, work_divisor: u64)
where
    W: Workload + Send + Sync + 'static,
    W::Desc: 'static,
{
    let frame = w.frame_size(d);
    let units = w.units(d);
    // Machine-wide live-frame high-water (the analogue of the sim's
    // peak stack usage, summed across workers rather than per-region).
    let live = c.live_frame_bytes.fetch_add(frame, Ordering::AcqRel) + frame;
    c.peak_frame_bytes.fetch_max(live, Ordering::AcqRel);

    let mut prog = Vec::new();
    w.program(d, &mut prog);
    let children = prog
        .iter()
        .filter(|a| matches!(a, Action::Spawn(_)))
        .count() as u64;

    c.tasks.fetch_add(1, Ordering::Relaxed);
    c.units.fetch_add(units, Ordering::Relaxed);
    c.frame_bytes_total.fetch_add(frame, Ordering::Relaxed);
    c.join_fingerprint
        .fetch_add(task_shape_hash(children, units, frame), Ordering::Relaxed);

    with_reserved_frame(frame, move || {
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for a in prog {
            match a {
                Action::Work(cycles) => {
                    c.work_cycles.fetch_add(cycles, Ordering::Relaxed);
                    tsc::spin_cycles(cycles / work_divisor);
                }
                Action::Spawn(child) => {
                    c.spawns.fetch_add(1, Ordering::Relaxed);
                    let w2 = Arc::clone(w);
                    let c2 = Arc::clone(c);
                    // Child-first: `exec(child)` starts right now on a
                    // fresh stack; our continuation (the rest of this
                    // loop) becomes stealable.
                    handles.push(spawn(move || exec(&w2, &child, &c2, work_divisor)));
                }
                Action::JoinAll => {
                    c.joins.fetch_add(1, Ordering::Relaxed);
                    for h in handles.drain(..) {
                        h.join();
                    }
                }
            }
        }
        // Fork-join programs end with every child joined (the simulator
        // asserts as much); join stragglers anyway so a malformed
        // workload cannot leak running tasks past its own completion.
        for h in handles {
            h.join();
        }
    });
    c.live_frame_bytes.fetch_sub(frame, Ordering::AcqRel);
}

/// Result of one native run — the fiber backend's counterpart of the
/// simulator's `RunStats`, restricted to the quantities that are
/// *backend-invariant* (task expansion) or native-measurable (wall
/// clock, steals, live-frame peak).
#[derive(Clone, Debug)]
pub struct NativeRunStats {
    /// Workload name.
    pub workload: String,
    /// Worker OS threads.
    pub workers: u32,
    /// Tasks executed (= the sim's `total_tasks`).
    pub total_tasks: u64,
    /// Reported workload units (= the sim's `total_units`).
    pub total_units: u64,
    /// Cycles of `Work` actions *accounted* (= the sim's
    /// `total_work_cycles`; the cycles actually spun are these divided
    /// by the configured work divisor).
    pub total_work_cycles: u64,
    /// `JoinAll` actions executed.
    pub joins: u64,
    /// `Spawn` actions executed (= `total_tasks - 1`).
    pub spawns: u64,
    /// Sum of every task's `frame_size`.
    pub frame_bytes_total: u64,
    /// High-water of simultaneously live frame bytes, machine-wide.
    pub peak_frame_bytes: u64,
    /// Schedule-independent join-tree digest; must equal
    /// [`uat_model::join_tree_fingerprint`] of the same workload.
    pub join_fingerprint: u64,
    /// Successful steals of a started thread between workers.
    pub steals: u64,
    /// Workers that crossed the idle spin threshold into a sleep cycle.
    pub parks: u64,
    /// Parked workers that subsequently found work.
    pub unparks: u64,
    /// Trace events evicted from full rings (0 for untraced runs and
    /// for traced runs whose rings sufficed — the accounts stay exact).
    pub trace_dropped: u64,
    /// Real elapsed time.
    pub wall: std::time::Duration,
}

impl NativeRunStats {
    /// Units per wall-clock second (the native Figure 11 axis).
    pub fn throughput(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.total_units as f64 / s
    }

    /// One-line summary for harness output.
    pub fn summary_line(&self) -> String {
        self.summary_line_as("Native")
    }

    /// [`summary_line`](Self::summary_line) with an explicit backend
    /// label — the same stats type serves both real executors (native
    /// threads and multiprocess workers).
    pub fn summary_line_as(&self, backend: &str) -> String {
        format!(
            "{:<24} {backend} w={:<3} tasks={:<10} units={:<10} wall={:>9.4}s thr={:>12.0}/s steals={} parks={} unparks={} drop={} peak_frames={}B",
            self.workload,
            self.workers,
            self.total_tasks,
            self.total_units,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.steals,
            self.parks,
            self.unparks,
            self.trace_dropped,
            self.peak_frame_bytes,
        )
    }
}

/// Driver that runs any [`Workload`] on the native fiber runtime.
#[derive(Clone, Debug)]
pub struct NativeRunner {
    workers: usize,
    stack_size: usize,
    work_divisor: u64,
    /// Per-worker event-ring capacity for [`run_traced`]
    /// (`None` = the runtime default).
    ///
    /// [`run_traced`]: Self::run_traced
    #[cfg(feature = "trace")]
    ring_capacity: Option<usize>,
    /// Caller-supplied metrics registry (turns on the timed tier).
    #[cfg(feature = "metrics")]
    registry: Option<Arc<uat_metrics::Registry>>,
    /// Sampler tick, when a sampler thread is wanted.
    #[cfg(feature = "metrics")]
    sampler: Option<std::time::Duration>,
    /// Stall-watchdog configuration, when armed.
    #[cfg(feature = "metrics")]
    watchdog: Option<crate::nmetrics::WatchdogCfg>,
}

impl NativeRunner {
    /// A runner with `workers` OS-thread workers.
    pub fn new(workers: usize) -> Self {
        NativeRunner {
            workers,
            stack_size: 128 << 10,
            work_divisor: 1,
            #[cfg(feature = "trace")]
            ring_capacity: None,
            #[cfg(feature = "metrics")]
            registry: None,
            #[cfg(feature = "metrics")]
            sampler: None,
            #[cfg(feature = "metrics")]
            watchdog: None,
        }
    }

    /// Override the per-worker event-ring capacity used by
    /// [`run_traced`](Self::run_traced).
    #[cfg(feature = "trace")]
    pub fn with_tracing(mut self, ring_capacity: usize) -> Self {
        self.ring_capacity = Some(ring_capacity);
        self
    }

    /// Record runs into `registry` (built for at least `workers`
    /// shards) with the timed metrics tier on; snapshot it afterwards.
    /// Composes with any run method, [`run_traced`](Self::run_traced)
    /// included.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, registry: Arc<uat_metrics::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Start a deque-depth sampler thread on every run, ticking each
    /// `interval`. Implies the timed metrics tier.
    #[cfg(feature = "metrics")]
    pub fn with_sampler(mut self, interval: std::time::Duration) -> Self {
        self.sampler = Some(interval);
        self
    }

    /// Arm the heartbeat stall watchdog on every run (implies a sampler
    /// at the default interval unless one is configured).
    #[cfg(feature = "metrics")]
    pub fn with_watchdog(mut self, cfg: crate::nmetrics::WatchdogCfg) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Override the per-task stack size (default 128 KiB). Must exceed
    /// the workload's largest `frame_size` with room for the
    /// interpreter's own frames.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Divide every `Work(c)` spin by `div` (accounting still records
    /// the full `c`). Differential tests compare task expansion, not
    /// timing, so they use a large divisor to skip the spinning.
    pub fn with_work_divisor(mut self, div: u64) -> Self {
        assert!(div >= 1, "work divisor must be at least 1");
        self.work_divisor = div;
        self
    }

    /// The configured [`Runtime`] for one run.
    fn runtime(&self) -> Runtime {
        let rt = Runtime::new(self.workers).with_stack_size(self.stack_size);
        #[cfg(feature = "metrics")]
        let rt = {
            let mut rt = rt;
            if let Some(reg) = &self.registry {
                rt = rt.with_metrics(Arc::clone(reg));
            }
            if let Some(interval) = self.sampler {
                rt = rt.with_sampler(interval);
            }
            if let Some(cfg) = &self.watchdog {
                rt = rt.with_watchdog(cfg.clone());
            }
            rt
        };
        rt
    }

    /// Run `w` to completion on real fibers and report its accounting.
    pub fn run<W>(&self, w: W) -> NativeRunStats
    where
        W: Workload + Send + Sync + 'static,
        W::Desc: 'static,
    {
        let workload = w.name();
        let w = Arc::new(w);
        let counters = Arc::new(Counters::default());
        let rt = self.runtime();
        let w2 = Arc::clone(&w);
        let c2 = Arc::clone(&counters);
        let div = self.work_divisor;
        let ((), sched) = rt.run_counted(move || {
            let root = w2.root();
            exec(&w2, &root, &c2, div);
        });
        let wall = sched.wall;
        self.stats(workload, &counters, sched, wall, 0)
    }

    /// Like [`run`](Self::run) with the timed metrics tier forced on,
    /// additionally returning the run's metrics snapshot (sharded
    /// scheduler counters plus steal-latency / task-run /
    /// park-duration histograms).
    #[cfg(feature = "metrics")]
    pub fn run_metered<W>(&self, w: W) -> (NativeRunStats, uat_metrics::Snapshot)
    where
        W: Workload + Send + Sync + 'static,
        W::Desc: 'static,
    {
        let workload = w.name();
        let w = Arc::new(w);
        let counters = Arc::new(Counters::default());
        let rt = self.runtime();
        let w2 = Arc::clone(&w);
        let c2 = Arc::clone(&counters);
        let div = self.work_divisor;
        let ((), sched, snapshot) = rt.run_metered(move || {
            let root = w2.root();
            exec(&w2, &root, &c2, div);
        });
        let wall = sched.wall;
        (self.stats(workload, &counters, sched, wall, 0), snapshot)
    }

    /// Like [`run`](Self::run) with per-worker event tracing on,
    /// additionally returning the finalized [`NativeTrace`]
    /// (exportable `TraceData` + per-worker bucket accounts).
    ///
    /// [`NativeTrace`]: crate::ntrace::NativeTrace
    #[cfg(feature = "trace")]
    pub fn run_traced<W>(&self, w: W) -> (NativeRunStats, crate::ntrace::NativeTrace)
    where
        W: Workload + Send + Sync + 'static,
        W::Desc: 'static,
    {
        let workload = w.name();
        let w = Arc::new(w);
        let counters = Arc::new(Counters::default());
        let mut rt = self.runtime();
        if let Some(cap) = self.ring_capacity {
            rt = rt.with_tracing(cap);
        }
        let w2 = Arc::clone(&w);
        let c2 = Arc::clone(&counters);
        let div = self.work_divisor;
        let ((), sched, trace) = rt.run_traced(move || {
            let root = w2.root();
            exec(&w2, &root, &c2, div);
        });
        let wall = sched.wall;
        let dropped = trace.data.workers.iter().map(|r| r.dropped()).sum();
        (self.stats(workload, &counters, sched, wall, dropped), trace)
    }

    fn stats(
        &self,
        workload: String,
        c: &Counters,
        sched: crate::runtime::SchedStats,
        wall: std::time::Duration,
        trace_dropped: u64,
    ) -> NativeRunStats {
        NativeRunStats {
            workload,
            workers: self.workers as u32,
            total_tasks: c.tasks.load(Ordering::Acquire),
            total_units: c.units.load(Ordering::Acquire),
            total_work_cycles: c.work_cycles.load(Ordering::Acquire),
            joins: c.joins.load(Ordering::Acquire),
            spawns: c.spawns.load(Ordering::Acquire),
            frame_bytes_total: c.frame_bytes_total.load(Ordering::Acquire),
            peak_frame_bytes: c.peak_frame_bytes.load(Ordering::Acquire),
            join_fingerprint: c.join_fingerprint.load(Ordering::Acquire),
            steals: sched.steals,
            parks: sched.parks,
            unparks: sched.unparks,
            trace_dropped,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::testutil::BinTree;
    use uat_model::{join_tree_fingerprint, sequential_profile};

    fn runner(workers: usize) -> NativeRunner {
        NativeRunner::new(workers).with_work_divisor(u64::MAX)
    }

    #[test]
    fn bintree_counts_match_sequential_profile() {
        let w = BinTree {
            depth: 6,
            work: 1_000,
            frame: 512,
        };
        let p = sequential_profile(&w);
        for workers in [1usize, 3] {
            let s = runner(workers).run(w.clone());
            assert_eq!(s.total_tasks, p.tasks, "workers={workers}");
            assert_eq!(s.total_units, p.units);
            assert_eq!(s.total_work_cycles, p.work_cycles);
            assert_eq!(s.joins, p.joins);
            assert_eq!(s.spawns, p.spawns);
            assert_eq!(s.frame_bytes_total, p.frame_bytes_total);
            assert_eq!(s.join_fingerprint, p.join_fingerprint);
            assert_eq!(s.join_fingerprint, join_tree_fingerprint(&w));
        }
    }

    #[test]
    fn work_is_accounted_undivided() {
        let w = BinTree {
            depth: 2,
            work: 10_000,
            frame: 64,
        };
        let s = runner(2).run(w);
        assert_eq!(s.total_work_cycles, 7 * 10_000);
    }

    #[test]
    fn frames_really_occupy_stack() {
        // A frame far beyond the chunk size still completes (the
        // reservation recursion works), and the peak reflects at least
        // the deepest single frame.
        let w = BinTree {
            depth: 1,
            work: 0,
            frame: 16 << 10,
        };
        let s = runner(1).run(w);
        assert!(s.peak_frame_bytes >= 16 << 10);
        assert_eq!(s.total_tasks, 3);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_run_tiles_the_makespan() {
        let w = BinTree {
            depth: 5,
            work: 2_000,
            frame: 256,
        };
        let (s, t) = NativeRunner::new(2)
            .with_work_divisor(8)
            .run_traced(w.clone());
        assert_eq!(s.total_tasks, 63);
        assert_eq!(s.trace_dropped, 0);
        let mk = t.data.makespan.get();
        assert!(mk > 0, "traced run has a zero makespan");
        assert_eq!(t.accounts.len(), 2);
        for (i, acc) in t.accounts.iter().enumerate() {
            assert_eq!(
                acc.total().get(),
                mk,
                "worker {i} buckets do not tile the makespan"
            );
        }
        // Counts must agree with the untraced accounting.
        let p = sequential_profile(&w);
        assert_eq!(s.total_tasks, p.tasks);
        assert_eq!(s.join_fingerprint, p.join_fingerprint);
    }

    #[test]
    fn multi_worker_runs_steal() {
        // On a single-CPU host a thief only runs when the OS preempts
        // the busy worker, so each run must span several scheduling
        // quanta (~70ms of spinning here); allow a few attempts and
        // require at least one observed steal overall.
        let mut stole = 0;
        for _ in 0..3 {
            let w = BinTree {
                depth: 10,
                work: 100_000,
                frame: 256,
            };
            let s = NativeRunner::new(4).run(w);
            assert_eq!(s.total_tasks, (1 << 11) - 1);
            stole += s.steals;
            if stole > 0 {
                break;
            }
        }
        assert!(stole > 0, "no steals across 3 runs on 4 workers");
    }
}
