//! The multiprocess uni-address backend: one **process** per worker,
//! the paper's actual deployment model, as a first-class runtime.
//!
//! [`ipc`](crate::ipc) demonstrates the mechanism once (fork + fixed
//! mapping + one steal); this module makes it a driver. The coordinator
//! (parent) creates a single `memfd` and maps it `MAP_SHARED` at
//! [`MP_BASE`] with `MAP_FIXED_NOREPLACE` **before forking**, so every
//! worker process inherits *the same physical pages at the same virtual
//! address* — the uni-address region. Everything the protocol touches
//! lives inside it:
//!
//! - the **THE deques** ([`uat_deque::ShmDeque`] placement blocks at the
//!   canonical `uat_deque::layout` offsets, one per worker);
//! - every **fiber stack** (fixed slots with guard pages), so a
//!   continuation's frames are already present in the thief's address
//!   space — a cross-process steal is deque atomics plus
//!   `resume_context`, zero messages *and* zero copies (the shared
//!   mapping is the transfer; compare [`ipc`](crate::ipc), where
//!   private mappings force a real `process_vm_readv`);
//! - each task's **program area** and its parent's **join block**, so
//!   no private-heap pointer is ever reachable from a migratable stack
//!   (invariant [I16]);
//! - the **metrics segment** ([`uat_metrics::shm`] layout), per-worker
//!   counter cells the parent reads back through
//!   [`uat_rdma::OneSidedFabric`] windows — per-worker metrics export
//!   with no RPC;
//! - the **control block**: live-task count, shutdown flag, the slot
//!   free list, and the global frame-bytes accounting.
//!
//! A steal is therefore exactly the paper's: one-sided loads/stores/CAS
//! on the victim's deque words, a one-sided `fetch_add` when a
//! completing child decrements a (possibly remote) parent's join block,
//! and a direct resume of the stolen thread at its original address.
//!
//! # Fork safety (invariant [I15])
//!
//! The test harness that forks us is multithreaded, so a child may not
//! allocate or take any lock between `fork` and its worker-loop entry
//! (another thread could hold the allocator lock at fork time; glibc's
//! `fork` re-initialises malloc, but the runtime does not rely on it
//! during the window). The bootstrap path ([`mp_bootstrap`]) touches
//! only shared-region atomics and per-process statics; `uat-lint`'s
//! `fork-safety` rule scans it (and its callees) for alloc/lock
//! constructs, and the `mp_fork_safety` integration test counts
//! allocations across the window with a probing global allocator.
//! After the worker loop is entered, allocation is permitted (task
//! programs expand through a transient `Vec` that never survives a
//! migration point, per [I16]).
//!
//! # Per-process state
//!
//! Worker identity, the scheduler context, and the retire/join hand-off
//! live in a per-process `static` behind the `#[inline(never)]`
//! accessor [`mp_proc`]. The indirection is load-bearing exactly like
//! the thread runtime's TLS accessor: a fiber migrates *between
//! processes* at every suspension point, and any value loaded before
//! the switch and kept in a callee-saved register is restored from the
//! context record with the *previous* process's value. Every access
//! after a potential migration re-derives through the opaque call.

use crate::ctx::{resume_context, save_context_and_call, switch_stack_and_call, Context};
use crate::interp::{with_reserved_frame, NativeRunStats};
use crate::tsc;
use std::ffi::c_void;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr::addr_of_mut;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use uat_base::{SplitMix64, WorkerId};
use uat_deque::ShmDeque;
use uat_model::{task_shape_hash, Action, Workload};
use uat_rdma::{OneSidedFabric, ShmFabric};

/// Fixed virtual address of the multiprocess uni-address region (same
/// in every worker process; distinct from [`crate::ipc::UNI_BASE`] so
/// the two demonstrations can coexist in one test binary).
pub const MP_BASE: usize = 0x7e00_0000_0000;

const PAGE: usize = 4096;
/// Entries per worker deque (matches the thread runtime's sizing).
const DEQ_CAP: usize = 8192;
/// Bytes at the top of each slot for the task header + program area —
/// sized for the widest paper program (a `Chain::fig10(n)` root emits
/// `2n` 16-byte actions). The mapping is sparse, so unused program
/// pages cost nothing.
const PROG_BYTES: usize = 128 << 10;
/// Hard cap on worker processes (sizes the control block).
pub const MAX_WORKERS: usize = 64;

// Per-worker stats cells (private accounting bank; *not* the exported
// metrics segment). Cell indices within a `STATS_STRIDE` row.
const SC_UNITS: usize = 0;
const SC_WORK_CYCLES: usize = 1;
const SC_JOINS: usize = 2;
const SC_SPAWNS: usize = 3;
const SC_FRAME_BYTES: usize = 4;
const SC_FINGERPRINT: usize = 5;
const STATS_STRIDE: usize = 8;

// Per-worker cells of the exported metrics segment. Indices MUST match
// `uat_metrics::shm::SEGMENT_COUNTERS` order (asserted by a test below)
// so the parent-side snapshot names each cell correctly.
const MC_HEARTBEATS: usize = 0;
const MC_STEALS_COMPLETED: usize = 1;
const MC_STEALS_FAILED: usize = 2;
const MC_PARKS: usize = 3;
const MC_UNPARKS: usize = 4;
const MC_TASKS: usize = 5;
const MC_STRIDE: usize = 8;

/// Shared control block, at the very start of the region.
#[repr(C)]
struct Ctrl {
    /// TTAS spinlock guarding the slot free list.
    slot_lock: AtomicU64,
    /// Head of the slot free list (index + 1; 0 = exhausted).
    slot_head: AtomicU64,
    /// Started-but-unfinished tasks, machine-wide (root counts from the
    /// start, so `root_done && live == 0` means the whole tree ran).
    live: AtomicU64,
    /// Coordinator → workers: exit your scheduler loop.
    shutdown_flag: AtomicU64,
    /// Set by the root task's completion.
    root_done: AtomicU64,
    /// Machine-wide live frame bytes (same accounting as the thread
    /// interpreter's global cells).
    live_frame_bytes: AtomicU64,
    /// High-water of `live_frame_bytes`.
    peak_frame_bytes: AtomicU64,
    /// Per-worker allocation count observed across the fork-safety
    /// window, written once at worker-loop entry (0 when no probe is
    /// installed; see [`set_bootstrap_alloc_probe`]).
    bootstrap_allocs: [AtomicU64; MAX_WORKERS],
}

const _: () = assert!(std::mem::size_of::<Ctrl>() <= PAGE);

/// Per-task header at the top of its stack slot (just below the
/// program area). `repr(C)` plain-old-data: it lives in the shared
/// region and crosses process boundaries by address.
#[repr(C)]
struct MpHeader<D> {
    /// Free-list link (meaningful only while the slot is free).
    next_free: u64,
    /// 1 for the root task (no join block, completion sets
    /// `root_done`).
    is_root: u64,
    /// The parent's [`JoinBlock`] (`*const JoinBlock` as u64; 0 for the
    /// root). Points into the *parent's* shm stack — valid in every
    /// process per [I16].
    join: u64,
    /// The spawner's saved continuation, written by the spawn
    /// trampoline and published by the child per [I12].
    parent_ctx: u64,
    /// This slot's index (so code on the slot's stack can retire it).
    slot_idx: u64,
    /// Number of `Action`s copied into the program area.
    prog_len: u64,
    /// The task descriptor (`Copy` plain data; [I16]).
    desc: MaybeUninit<D>,
}

/// Per-task join synchronisation, **a local on the parent's shm
/// stack**: outstanding-children count plus a single waiter slot.
///
/// The completing child's `pending.fetch_sub` is the protocol's
/// one-sided remote fetch-and-add: the block may live on a stack owned
/// by a fiber currently parked in a different process, and the
/// decrement needs nothing from that process's CPU. The waiter slot is
/// claimed by exactly one side (`swap` by the last child vs
/// `compare_exchange` reclaim by the parker's scheduler), so a parked
/// parent is resumed exactly once.
///
/// Ordering: the scheduler publishes the waiter then re-reads
/// `pending`, while the last child decrements `pending` then reads the
/// waiter — a store-buffering (Dekker) race across two locations, so
/// all four accesses are SeqCst (an AcqRel pair is insufficient: each
/// side may read the other's pre-store value and the parent is never
/// resumed).
#[repr(C)]
struct JoinBlock {
    pending: AtomicU64,
    waiter: AtomicU64,
}

/// Byte map of the region: every address any process computes comes
/// from this (pure arithmetic on `MP_BASE`), which is what makes the
/// layout a uni-address contract rather than per-process bookkeeping.
#[derive(Clone, Copy, Debug)]
struct RegionLayout {
    workers: usize,
    slots: usize,
    /// Whole slot: guard page + stack + header/program area.
    slot_size: usize,
    metrics_off: usize,
    stats_off: usize,
    deques_off: usize,
    slots_off: usize,
    total: usize,
}

fn round_page(b: usize) -> usize {
    b.div_ceil(PAGE) * PAGE
}

impl RegionLayout {
    fn new(workers: usize, slots: usize, stack_size: usize) -> RegionLayout {
        assert!((1..=MAX_WORKERS).contains(&workers));
        assert!(slots > workers, "need at least one slot per worker");
        let metrics_off = PAGE;
        let stats_off = metrics_off + round_page(workers * MC_STRIDE * 8);
        let deques_off = stats_off + round_page(workers * STATS_STRIDE * 8);
        let deq_block = ShmDeque::block_size(DEQ_CAP);
        let slots_off = deques_off + round_page(workers * deq_block);
        let slot_size = PAGE + round_page(stack_size) + PROG_BYTES;
        RegionLayout {
            workers,
            slots,
            slot_size,
            metrics_off,
            stats_off,
            deques_off,
            slots_off,
            total: slots_off + slots * slot_size,
        }
    }

    fn ctrl(&self) -> *const Ctrl {
        MP_BASE as *const Ctrl
    }

    fn metrics_cell_addr(&self, w: usize, c: usize) -> usize {
        debug_assert!(w < self.workers && c < MC_STRIDE);
        MP_BASE + self.metrics_off + (w * MC_STRIDE + c) * 8
    }

    fn stats_cell_addr(&self, w: usize, c: usize) -> usize {
        debug_assert!(w < self.workers && c < STATS_STRIDE);
        MP_BASE + self.stats_off + (w * STATS_STRIDE + c) * 8
    }

    /// Worker `w`'s deque handle (any process may construct any
    /// worker's handle — thieves do).
    fn deque(&self, w: usize) -> ShmDeque {
        debug_assert!(w < self.workers);
        let base = MP_BASE + self.deques_off + w * ShmDeque::block_size(DEQ_CAP);
        // SAFETY: [I14] the block is inside the zero-initialised shared
        // mapping (same virtual address in every process), 8-byte
        // aligned by construction, and only ever accessed through
        // THE-protocol operations.
        unsafe { ShmDeque::from_raw(base as *mut u8, DEQ_CAP) }
    }

    fn slot_base(&self, slot: usize) -> usize {
        debug_assert!(slot < self.slots);
        MP_BASE + self.slots_off + slot * self.slot_size
    }

    /// Top of the slot's stack == base of its header/program area.
    fn slot_stack_top(&self, slot: usize) -> usize {
        self.slot_base(slot) + self.slot_size - PROG_BYTES
    }

    fn header<D>(&self, slot: usize) -> *mut MpHeader<D> {
        self.slot_stack_top(slot) as *mut MpHeader<D>
    }

    /// First `Action<D>` of the slot's program area (just after the
    /// header, aligned).
    fn prog_ptr<D>(&self, slot: usize) -> *mut Action<D> {
        let a = std::mem::align_of::<Action<D>>();
        let off = std::mem::size_of::<MpHeader<D>>().div_ceil(a) * a;
        (self.slot_stack_top(slot) + off) as *mut Action<D>
    }

    /// `Action<D>`s the program area can hold.
    fn prog_capacity<D>(&self) -> usize {
        let a = std::mem::align_of::<Action<D>>();
        let off = std::mem::size_of::<MpHeader<D>>().div_ceil(a) * a;
        (PROG_BYTES - off) / std::mem::size_of::<Action<D>>()
    }
}

/// A cell of the region interpreted as a process-shared atomic.
#[inline]
fn cell(addr: usize) -> &'static AtomicU64 {
    debug_assert!(addr.is_multiple_of(8));
    // SAFETY: [I16] every `cell` call site passes an address computed by
    // `RegionLayout` inside the live mapping; the region outlives every
    // worker's use of it (the coordinator unmaps only after reaping).
    unsafe { &*(addr as *const AtomicU64) }
}

// ---------------------------------------------------------------------
// Per-process state.
// ---------------------------------------------------------------------

struct MpProc {
    worker: usize,
    layout: RegionLayout,
    /// This process's parked scheduler context (worker OS stack).
    sched_ctx: u64,
    /// Slot retired by the previously completed task (+1; 0 = none).
    pending_retire: u64,
    /// Join park hand-off: (`*const JoinBlock`, ctx) per [I12].
    pending_join_block: u64,
    pending_join_ctx: u64,
    rng: SplitMix64,
    divisor: u64,
    /// The workload, by pre-fork pointer (copy-on-write read-only data,
    /// same virtual address in every worker).
    env: u64,
}

/// The worker process's state. Plain per-process memory: every worker
/// process is single-threaded, and the parent never touches it.
static mut MP_PROC: Option<MpProc> = None;

/// Re-derive the per-process state. `inline(never)` is load-bearing for
/// the same reason as the thread runtime's TLS accessor (see the module
/// docs): fibers resume in *other processes*, where this static holds
/// different values, so no load may be CSE'd across a context switch.
#[inline(never)]
fn mp_proc() -> *mut MpProc {
    // SAFETY: [I15] MP_PROC is written once during single-threaded
    // bootstrap and only ever accessed from that process's only thread.
    match unsafe { &mut *addr_of_mut!(MP_PROC) } {
        Some(p) => p as *mut MpProc,
        None => panic!("multiprocess operation outside a worker process"),
    }
}

/// Bump a metrics-segment cell of the *current* worker.
#[inline]
fn mcell_add(c: usize, v: u64) {
    // SAFETY: [I15] mp_proc() is this process's live state.
    let p = unsafe { &*mp_proc() };
    cell(p.layout.metrics_cell_addr(p.worker, c)).fetch_add(v, Ordering::Relaxed);
}

/// Bump a stats-bank cell of the *current* worker.
#[inline]
fn scell_add(c: usize, v: u64) {
    // SAFETY: [I15] as in `mcell_add`.
    let p = unsafe { &*mp_proc() };
    cell(p.layout.stats_cell_addr(p.worker, c)).fetch_add(v, Ordering::Relaxed);
}

/// Free the slot retired by the previously completed task, if any. Must
/// run at every point control can land after a completion (mirrors the
/// thread runtime's `collect_retired`).
#[inline]
fn mp_collect_retired() {
    // SAFETY: [I15] exclusive access by this process's only thread.
    let p = unsafe { &mut *mp_proc() };
    if p.pending_retire != 0 {
        let idx = (p.pending_retire - 1) as usize;
        p.pending_retire = 0;
        free_slot(&p.layout, idx);
    }
}

// ---------------------------------------------------------------------
// Slot free list (spinlock + links through the free slots' headers).
// ---------------------------------------------------------------------

fn lock_slots(ctrl: &Ctrl) {
    loop {
        if ctrl.slot_lock.load(Ordering::Relaxed) == 0
            && ctrl
                .slot_lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        std::hint::spin_loop();
    }
}

fn unlock_slots(ctrl: &Ctrl) {
    ctrl.slot_lock.store(0, Ordering::Release);
}

fn alloc_slot(layout: &RegionLayout) -> usize {
    // SAFETY: [I16] ctrl is the mapped control block.
    let ctrl = unsafe { &*layout.ctrl() };
    lock_slots(ctrl);
    let head = ctrl.slot_head.load(Ordering::Relaxed);
    if head == 0 {
        unlock_slots(ctrl);
        panic!(
            "multiprocess stack slot pool exhausted ({} slots)",
            layout.slots
        );
    }
    let idx = (head - 1) as usize;
    // SAFETY: [I16] a free slot's header is owned by the free list; the
    // lock we hold orders this read after the corresponding write.
    let next = unsafe { (*layout.header::<()>(idx)).next_free };
    ctrl.slot_head.store(next, Ordering::Relaxed);
    unlock_slots(ctrl);
    idx
}

fn free_slot(layout: &RegionLayout, idx: usize) {
    // SAFETY: [I16] as in `alloc_slot`.
    let ctrl = unsafe { &*layout.ctrl() };
    lock_slots(ctrl);
    // SAFETY: [I16] the slot is dead (its task completed and control
    // left its stack); the free list owns its header from here.
    unsafe {
        (*layout.header::<()>(idx)).next_free = ctrl.slot_head.load(Ordering::Relaxed);
    }
    ctrl.slot_head.store(idx as u64 + 1, Ordering::Relaxed);
    unlock_slots(ctrl);
}

// ---------------------------------------------------------------------
// Fork-safety probe (test hook).
// ---------------------------------------------------------------------

/// Probe function installed by [`set_bootstrap_alloc_probe`], as a raw
/// fn pointer (0 = none). Inherited by workers across `fork`.
static BOOTSTRAP_PROBE: AtomicU64 = AtomicU64::new(0);

/// Install an allocation-count probe (e.g. a counting global
/// allocator's counter read). Each worker samples it immediately after
/// `fork` and again at worker-loop entry; the difference — which must
/// be 0 — lands in the shared control block and is reported as
/// [`MpReport::bootstrap_allocs`]. The probe must itself be
/// allocation-free and async-fork-safe (a plain atomic read).
pub fn set_bootstrap_alloc_probe(probe: fn() -> u64) {
    BOOTSTRAP_PROBE.store(probe as usize as u64, Ordering::SeqCst);
}

fn probe_allocs() -> u64 {
    let p = BOOTSTRAP_PROBE.load(Ordering::SeqCst);
    if p == 0 {
        return 0;
    }
    // SAFETY: [I15] p was stored from a `fn() -> u64` pointer by
    // `set_bootstrap_alloc_probe` in the pre-fork parent; fn pointers
    // survive fork unchanged.
    let f: fn() -> u64 = unsafe { std::mem::transmute::<usize, fn() -> u64>(p as usize) };
    f()
}

// ---------------------------------------------------------------------
// The per-worker scheduler (runs in each worker process).
// ---------------------------------------------------------------------

/// Worker bootstrap: everything between `fork` and the scheduler loop.
///
/// **Fork-safety window [I15]**: from entry until `mp_worker_loop`
/// records the probe delta, this path must not allocate, take any lock,
/// or call anything that might (the parent is multithreaded; another
/// thread may hold the allocator lock at fork time). `uat-lint`'s
/// `fork-safety` rule enforces the discipline statically over this
/// function and its direct callees; the `mp_fork_safety` test enforces
/// it dynamically.
unsafe fn mp_bootstrap<W>(id: usize, layout: RegionLayout, env: *const W, divisor: u64) -> !
where
    W: Workload,
    W::Desc: Copy,
{
    let before = probe_allocs();
    // SAFETY: [I15] single-threaded fresh child; first and only
    // initialisation of this process's state. In-place write, no heap.
    unsafe {
        *addr_of_mut!(MP_PROC) = Some(MpProc {
            worker: id,
            layout,
            sched_ctx: 0,
            pending_retire: 0,
            pending_join_block: 0,
            pending_join_ctx: 0,
            rng: SplitMix64::new(0x5EED ^ id as u64),
            divisor,
            env: env as u64,
        });
    }
    // SAFETY: [I16] ctrl is the mapped control block.
    let ctrl = unsafe { &*layout.ctrl() };
    ctrl.bootstrap_allocs[id].store(probe_allocs().wrapping_sub(before), Ordering::Release);
    // Window closed: from here on allocation is permitted again.
    // SAFETY: [I15] state initialised just above.
    unsafe { mp_worker_loop::<W>() }
}

/// The scheduler loop: seed the root (worker 0), then pop-own /
/// steal-random until shutdown. Never returns — the worker process
/// leaves via `_exit(0)`.
unsafe fn mp_worker_loop<W>() -> !
where
    W: Workload,
    W::Desc: Copy,
{
    // SAFETY: [I15] our own per-process state.
    let (layout, id) = unsafe {
        let p = &*mp_proc();
        (p.layout, p.worker)
    };
    // SAFETY: [I16] mapped control block.
    let ctrl = unsafe { &*layout.ctrl() };

    if id == 0 {
        // Seed the root task (its header was written pre-fork by the
        // coordinator into slot 0).
        // SAFETY: [I5] mp_fresh_tramp diverges into the root fiber; the
        // scheduler context saved here is resumed exactly once.
        unsafe {
            save_context_and_call(
                std::ptr::null_mut(),
                mp_fresh_tramp::<W>,
                layout.header::<W::Desc>(0) as *mut c_void,
            );
        }
        mp_collect_retired();
    }

    let n = layout.workers;
    let mut idle_spins = 0u32;
    let mut parked = false;
    loop {
        mp_collect_retired();
        mcell_add(MC_HEARTBEATS, 1);

        // Scheduler-side join park [I12]: a fiber that suspended on a
        // join handed us its (block, ctx); publish the waiter from this
        // OS stack. If every child already finished, reclaim and resume
        // it right away (exactly one side ever owns the ctx: the last
        // child's `swap` or this `compare_exchange`).
        // SAFETY: [I15] exclusive per-process state.
        let pending = unsafe {
            let p = &mut *mp_proc();
            let b = p.pending_join_block;
            let c = p.pending_join_ctx;
            p.pending_join_block = 0;
            p.pending_join_ctx = 0;
            (b, c)
        };
        if pending.0 != 0 {
            // SAFETY: [I16] the block lives on the parked parent's shm
            // stack, which stays live until the parent is resumed.
            let jb = unsafe { &*(pending.0 as *const JoinBlock) };
            // Publish-waiter then read-pending vs. the last child's
            // decrement-pending then read-waiter is a two-location
            // Dekker (store-buffering) pattern: both sides must be
            // SeqCst or each can miss the other's store and the parked
            // parent is never resumed. Same reasoning as the SeqCst
            // store/load pair in ShmDeque::pop.
            jb.waiter.store(pending.1, Ordering::SeqCst);
            if jb.pending.load(Ordering::SeqCst) == 0
                && jb
                    .waiter
                    .compare_exchange(pending.1, 0, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                idle_spins = 0;
                mp_run_ctx(pending.1);
                continue;
            }
        }

        // Own deque first, then a random victim (the one-sided steal:
        // the victim process's CPU is not involved).
        let target = layout.deque(id).pop().or_else(|| {
            if n == 1 {
                return None;
            }
            // SAFETY: [I15] exclusive per-process rng.
            let mut v = unsafe { (*mp_proc()).rng.below(n as u64 - 1) as usize };
            if v >= id {
                v += 1;
            }
            let got = layout.deque(v).steal();
            mcell_add(
                if got.is_some() {
                    MC_STEALS_COMPLETED
                } else {
                    MC_STEALS_FAILED
                },
                1,
            );
            got
        });
        match target {
            Some(ctx) => {
                idle_spins = 0;
                if parked {
                    parked = false;
                    mcell_add(MC_UNPARKS, 1);
                }
                mp_run_ctx(ctx);
            }
            None => {
                if ctrl.shutdown_flag.load(Ordering::Acquire) != 0 {
                    break;
                }
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins > 64 {
                    if !parked {
                        parked = true;
                        mcell_add(MC_PARKS, 1);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(20));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    // SAFETY: [I10] _exit skips atexit handlers and destructors — the
    // worker owns nothing outside the shared region worth destructing,
    // and must not run the parent's cloned cleanup.
    unsafe { libc::_exit(0) }
}

/// Resume a ready continuation, saving this scheduler's own context so
/// fibers can bail back to the loop.
fn mp_run_ctx(ctx: u64) {
    // SAFETY: [I5] mp_run_tramp diverges into `ctx`; the saved
    // scheduler context is resumed exactly once (by whichever fiber
    // next runs out of local work in this process).
    unsafe {
        save_context_and_call(std::ptr::null_mut(), mp_run_tramp, ctx as *mut c_void);
    }
    mp_collect_retired();
}

unsafe extern "C" fn mp_run_tramp(sched: *mut Context, arg: *mut c_void) {
    // SAFETY: [I15] exclusive per-process state; borrow ends before the
    // resume.
    unsafe {
        (*mp_proc()).sched_ctx = sched as u64;
    }
    // SAFETY: [I5] arg is a live continuation handed out by a deque.
    unsafe { resume_context(arg as *mut Context) }
}

unsafe extern "C" fn mp_fresh_tramp<W>(sched: *mut Context, arg: *mut c_void)
where
    W: Workload,
    W::Desc: Copy,
{
    // SAFETY: [I15] as in mp_run_tramp.
    let top = unsafe {
        (*mp_proc()).sched_ctx = sched as u64;
        let hdr = &*(arg as *const MpHeader<W::Desc>);
        (*mp_proc()).layout.slot_stack_top(hdr.slot_idx as usize) as *mut u8
    };
    // SAFETY: [I6][I9] the slot stack is mapped and fresh;
    // mp_child_main diverges.
    unsafe { switch_stack_and_call(top, mp_child_main::<W>, arg) }
}

// ---------------------------------------------------------------------
// Task execution on shm fiber stacks.
// ---------------------------------------------------------------------

unsafe extern "C" fn mp_child_main<W>(arg: *mut c_void) -> !
where
    W: Workload,
    W::Desc: Copy,
{
    let hdr = arg as *mut MpHeader<W::Desc>;
    // SAFETY: [I16] the header is this task's slot memory, ours until
    // retirement; reads of POD fields.
    let (slot, is_root, join, parent_ctx) = unsafe {
        (
            (*hdr).slot_idx as usize,
            (*hdr).is_root != 0,
            (*hdr).join,
            (*hdr).parent_ctx,
        )
    };
    if parent_ctx != 0 {
        // Publish the spawner's continuation: stealable (by any
        // process) from now on. Safe here per [I12] — we run on the
        // child's fresh stack; every parent-stack frame below the
        // record is already dead.
        // SAFETY: [I15] own process state for the deque handle.
        let (layout, id) = unsafe {
            let p = &*mp_proc();
            (p.layout, p.worker)
        };
        layout.deque(id).push(parent_ctx);
    }
    if catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: [I15][I16] slot header and env are live; exec_mp is
        // entered exactly once per task.
        unsafe { exec_mp::<W>(slot) }
    }))
    .is_err()
    {
        // Unwinding across a context switch is UB; mirror the thread
        // runtime (and the paper's C++ runtime) and die loudly. The
        // coordinator turns the exit status into a run failure.
        // eprintln! would take the stderr lock, which another parent
        // thread may have held at fork time — only async-signal-safe
        // calls are allowed here, so write(2) raw.
        let msg = b"uat-fiber(mp): task panicked; worker exiting\n";
        // SAFETY: [I10] async-signal-safe raw write + process exit.
        unsafe {
            libc::write(2, msg.as_ptr() as *const c_void, msg.len());
            libc::_exit(101)
        }
    }
    // Completion. Retire our own stack (freed once control left it),
    // then the one-sided join decrement on the (possibly remote)
    // parent.
    // SAFETY: [I15] exclusive per-process state (the worker this fiber
    // *ended* on, re-derived).
    let (layout, id) = unsafe {
        let p = &mut *mp_proc();
        debug_assert_eq!(p.pending_retire, 0);
        p.pending_retire = slot as u64 + 1;
        (p.layout, p.worker)
    };
    // SAFETY: [I16] mapped control block.
    let ctrl = unsafe { &*layout.ctrl() };
    if is_root {
        ctrl.root_done.store(1, Ordering::Release);
    } else {
        // SAFETY: [I16] the parent's join block outlives all its
        // children: the parent cannot leave its JoinAll scope while
        // `pending > 0`.
        let jb = unsafe { &*(join as *const JoinBlock) };
        // SeqCst on both halves: this decrement/read-waiter races the
        // scheduler's store-waiter/read-pending (the Dekker pair — see
        // mp_worker_loop); weaker orderings allow both sides to read
        // stale values and strand the parked parent.
        if jb.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let waiter = jb.waiter.swap(0, Ordering::SeqCst);
            if waiter != 0 {
                // The parked parent becomes runnable here, on the last
                // child's worker — and immediately stealable by anyone.
                layout.deque(id).push(waiter);
            }
        }
    }
    ctrl.live.fetch_sub(1, Ordering::AcqRel);
    // Figure 4 lines 13-15: pop the parent continuation; if stolen,
    // fall back to the scheduler.
    let target = match layout.deque(id).pop() {
        Some(c) => c as *mut Context,
        // SAFETY: [I15] this process's parked scheduler context.
        None => unsafe { (*mp_proc()).sched_ctx as *mut Context },
    };
    // SAFETY: [I5] target is resumed exactly once; only Copy locals
    // live here.
    unsafe { resume_context(target) }
}

/// Interpret one task on its shm fiber stack: expand the program into
/// the slot's program area, then execute it.
unsafe fn exec_mp<W>(slot: usize)
where
    W: Workload,
    W::Desc: Copy,
{
    // SAFETY: [I15] per-process state; values are Copy snapshots.
    let (layout, divisor, env) = unsafe {
        let p = &*mp_proc();
        (p.layout, p.divisor, p.env)
    };
    // SAFETY: [I16] the workload was constructed before fork and is
    // read-only for the whole run: the copy-on-write pages hold the
    // same bytes at the same address in every process.
    let w = unsafe { &*(env as *const W) };
    let hdr = layout.header::<W::Desc>(slot);
    // SAFETY: [I16] the slot header is ours; desc was written by the
    // spawner (or the coordinator, for the root).
    let d: W::Desc = unsafe { (*hdr).desc.assume_init() };

    let frame = w.frame_size(&d);
    let units = w.units(&d);
    // SAFETY: [I16] mapped control block.
    let ctrl = unsafe { &*layout.ctrl() };
    let live = ctrl.live_frame_bytes.fetch_add(frame, Ordering::AcqRel) + frame;
    ctrl.peak_frame_bytes.fetch_max(live, Ordering::AcqRel);

    // Expand the program through a transient Vec, then copy it into the
    // slot's program area and drop the Vec — no private-heap pointer
    // may survive to the first migration point below [I16].
    let mut prog: Vec<Action<W::Desc>> = Vec::new();
    w.program(&d, &mut prog);
    let n = prog.len();
    assert!(
        n <= layout.prog_capacity::<W::Desc>(),
        "task program ({n} actions) exceeds the slot program area"
    );
    let children = prog
        .iter()
        .filter(|a| matches!(a, Action::Spawn(_)))
        .count() as u64;
    let prog_ptr = layout.prog_ptr::<W::Desc>(slot);
    for (i, a) in prog.into_iter().enumerate() {
        // SAFETY: [I16] i < prog_capacity (asserted); the program area
        // is this slot's memory.
        unsafe { prog_ptr.add(i).write(a) };
    }
    // SAFETY: [I16] header is ours.
    unsafe { (*hdr).prog_len = n as u64 };

    mcell_add(MC_TASKS, 1);
    scell_add(SC_UNITS, units);
    scell_add(SC_FRAME_BYTES, frame);
    scell_add(SC_FINGERPRINT, task_shape_hash(children, units, frame));

    // The join block is a local of this frame — on the shm stack, so a
    // child completing in another process reaches it at the same
    // address [I16]. It lives exactly as long as the task.
    let jb = JoinBlock {
        pending: AtomicU64::new(0),
        waiter: AtomicU64::new(0),
    };

    with_reserved_frame(frame, || {
        for i in 0..n {
            // SAFETY: [I16] reading back the i-th action we wrote above;
            // Desc is Copy so the read copy has no drop obligations.
            let a: Action<W::Desc> = unsafe { prog_ptr.add(i).read() };
            match a {
                Action::Work(cycles) => {
                    scell_add(SC_WORK_CYCLES, cycles);
                    tsc::spin_cycles(cycles / divisor);
                }
                Action::Spawn(child) => {
                    scell_add(SC_SPAWNS, 1);
                    mp_spawn::<W>(child, &jb);
                }
                Action::JoinAll => {
                    scell_add(SC_JOINS, 1);
                    mp_join(&jb);
                }
            }
        }
        // Join stragglers so a malformed workload cannot leak running
        // tasks past its own completion (mirrors the thread interp).
        mp_join(&jb);
    });
    ctrl.live_frame_bytes.fetch_sub(frame, Ordering::AcqRel);
}

/// Spawn a child task, child-first: the child starts right now on a
/// fresh slot stack and the caller's continuation becomes stealable by
/// every process.
fn mp_spawn<W>(desc: W::Desc, jb: &JoinBlock)
where
    W: Workload,
    W::Desc: Copy,
{
    // SAFETY: [I15] per-process state snapshot.
    let layout = unsafe { (*mp_proc()).layout };
    jb.pending.fetch_add(1, Ordering::AcqRel);
    // SAFETY: [I16] mapped control block.
    unsafe { &*layout.ctrl() }
        .live
        .fetch_add(1, Ordering::AcqRel);
    let slot = alloc_slot(&layout);
    let hdr = layout.header::<W::Desc>(slot);
    // SAFETY: [I16] a freshly allocated slot's header is exclusively
    // ours until the child publishes/retires it.
    unsafe {
        (*hdr).is_root = 0;
        (*hdr).join = jb as *const JoinBlock as u64;
        (*hdr).parent_ctx = 0;
        (*hdr).slot_idx = slot as u64;
        (*hdr).prog_len = 0;
        (*hdr).desc = MaybeUninit::new(desc);
    }
    // SAFETY: [I5] mp_spawn_tramp never returns normally; the
    // continuation saved here is resumed exactly once (by the child's
    // pop or by a thief in any process).
    unsafe {
        save_context_and_call(
            std::ptr::null_mut(),
            mp_spawn_tramp::<W>,
            hdr as *mut c_void,
        );
    }
    // Resumed — possibly in a different process.
    mp_collect_retired();
}

unsafe extern "C" fn mp_spawn_tramp<W>(ctx: *mut Context, arg: *mut c_void)
where
    W: Workload,
    W::Desc: Copy,
{
    // [I12]: do NOT publish `ctx` here — this frame lives on the very
    // stack `ctx` points into. Stash it in the child's header and leave
    // this stack; mp_child_main publishes it from the child's stack.
    // SAFETY: [I16] the header is the child's slot, exclusively ours
    // until the switch below hands it to mp_child_main.
    let top = unsafe {
        let hdr = &mut *(arg as *mut MpHeader<W::Desc>);
        hdr.parent_ctx = ctx as u64;
        (*mp_proc()).layout.slot_stack_top(hdr.slot_idx as usize) as *mut u8
    };
    // SAFETY: [I6][I9] fresh slot stack; mp_child_main diverges.
    unsafe { switch_stack_and_call(top, mp_child_main::<W>, arg) }
}

/// Join every child spawned on `jb` so far: one pending-count load on
/// the fast path, else suspend and let this worker find other work
/// (Figure 7).
fn mp_join(jb: &JoinBlock) {
    if jb.pending.load(Ordering::Acquire) == 0 {
        return;
    }
    // SAFETY: [I5] mp_join_tramp either parks this continuation
    // (resumed exactly once by the last child) or the scheduler resumes
    // it inline after the reclaim CAS.
    unsafe {
        save_context_and_call(
            std::ptr::null_mut(),
            mp_join_tramp,
            jb as *const JoinBlock as *mut c_void,
        );
    }
    // Resumed — possibly in a different process, with all children done.
    mp_collect_retired();
    debug_assert_eq!(jb.pending.load(Ordering::Acquire), 0);
}

unsafe extern "C" fn mp_join_tramp(ctx: *mut Context, arg: *mut c_void) {
    // [I12]: publishing `ctx` in the waiter slot from here would let
    // the last child resume it while this very frame still runs on its
    // stack. Hand the park to the scheduler on the worker's OS stack.
    // SAFETY: [I15] exclusive per-process state; borrow ends before the
    // resume.
    let sched = unsafe {
        let p = &mut *mp_proc();
        debug_assert_eq!(p.pending_join_block, 0);
        p.pending_join_block = arg as u64;
        p.pending_join_ctx = ctx as u64;
        p.sched_ctx as *mut Context
    };
    // SAFETY: [I5] the scheduler context is parked in its loop and
    // resumed exactly once per lineage.
    unsafe { resume_context(sched) }
}

// ---------------------------------------------------------------------
// The coordinator-side driver.
// ---------------------------------------------------------------------

/// One multiprocess run's full report: the backend-invariant stats plus
/// the fork-safety probe readings and the raw metrics-segment cells the
/// parent read back through its fabric windows.
#[derive(Clone, Debug)]
pub struct MpReport {
    /// Same accounting as a [`NativeRunner`](crate::NativeRunner) run.
    pub stats: NativeRunStats,
    /// Allocations each worker observed between `fork` and worker-loop
    /// entry (all 0 unless a probe caught a fork-safety regression).
    pub bootstrap_allocs: Vec<u64>,
    /// The metrics segment's cells, worker-major with
    /// `uat_metrics::shm` layout, read via `uat_rdma::OneSidedFabric`.
    pub metric_words: Vec<u64>,
}

#[cfg(feature = "metrics")]
impl MpReport {
    /// The run's metrics as an ordinary registry snapshot.
    pub fn metrics_snapshot(&self) -> uat_metrics::Snapshot {
        uat_metrics::shm::SegmentLayout::new(self.stats.workers as usize)
            .snapshot(&self.metric_words)
    }
}

/// Serialises multiprocess runs within one OS process: the region lives
/// at a fixed virtual address, so two concurrent runs (e.g. parallel
/// `cargo test` threads) would collide on `MAP_FIXED_NOREPLACE`.
static MP_RUN_LOCK: Mutex<()> = Mutex::new(());

/// Driver that runs any [`Workload`] on the multiprocess uni-address
/// backend — same interface shape as [`NativeRunner`](crate::NativeRunner),
/// with `W::Desc: Copy` (descriptors cross process boundaries as plain
/// bytes in the shared region).
#[derive(Clone, Debug)]
pub struct MultiProcessRunner {
    workers: usize,
    stack_size: usize,
    work_divisor: u64,
    slots: usize,
}

impl MultiProcessRunner {
    /// A runner with `workers` worker processes.
    pub fn new(workers: usize) -> Self {
        assert!(
            (1..=MAX_WORKERS).contains(&workers),
            "1..={MAX_WORKERS} workers"
        );
        MultiProcessRunner {
            workers,
            stack_size: 128 << 10,
            work_divisor: 1,
            slots: 1024,
        }
    }

    /// Override the per-task usable stack bytes (default 128 KiB).
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Divide every `Work(c)` spin by `div` (accounting still records
    /// the full `c`), as the differential tests do.
    pub fn with_work_divisor(mut self, div: u64) -> Self {
        assert!(div >= 1);
        self.work_divisor = div;
        self
    }

    /// Override the stack-slot count (default 1024). Bounds the
    /// simultaneously live tasks, exactly as the paper's fixed-size
    /// uni-address region bounds them.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Probe whether this host can run the multiprocess backend: a
    /// `memfd` + `MAP_FIXED_NOREPLACE` mapping at [`MP_BASE`] must
    /// succeed. Returns the reason when it cannot (callers should treat
    /// that as "skip", mirroring the ipc probes).
    pub fn probe_support() -> Result<(), String> {
        // Serialize with live runs: the probe maps a page at MP_BASE,
        // so an unlocked probe can both fail spuriously against a
        // concurrent run's mapping (silently skipping tests) and make
        // that run's own MAP_FIXED_NOREPLACE fail.
        let _guard = MP_RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        map_region(PAGE).map(|_| {
            // SAFETY: [I10] unmapping exactly the probe mapping.
            unsafe { libc::munmap(MP_BASE as *mut c_void, PAGE) };
        })
    }

    /// Run `w` to completion across worker processes; panics on
    /// unsupported hosts (use [`try_run`](Self::try_run) to skip).
    pub fn run<W>(&self, w: W) -> NativeRunStats
    where
        W: Workload,
        W::Desc: Copy,
    {
        self.try_run(w)
            .expect("multiprocess backend unavailable")
            .stats
    }

    /// Like [`run`](Self::run), additionally returning the run's
    /// metrics snapshot assembled from the shared segment.
    #[cfg(feature = "metrics")]
    pub fn run_metered<W>(&self, w: W) -> (NativeRunStats, uat_metrics::Snapshot)
    where
        W: Workload,
        W::Desc: Copy,
    {
        let report = self.try_run(w).expect("multiprocess backend unavailable");
        let snap = report.metrics_snapshot();
        (report.stats, snap)
    }

    /// Run `w`, reporting `Err` (instead of panicking) when the host
    /// cannot map the region — sandboxes without `memfd_create` or with
    /// the fixed address range occupied.
    pub fn try_run<W>(&self, w: W) -> Result<MpReport, String>
    where
        W: Workload,
        W::Desc: Copy,
    {
        // One multiprocess run at a time per OS process (fixed-address
        // region). A poisoned lock just means another test's run
        // panicked; the region was unmapped on that panic path is NOT
        // guaranteed, but the mapping attempt below will fail loudly
        // rather than corrupt anything (NOREPLACE).
        let _guard = MP_RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let layout = RegionLayout::new(self.workers, self.slots, self.stack_size);
        map_region(layout.total)?;
        let out = self.run_mapped(&layout, w);
        // SAFETY: [I10] unmapping exactly what map_region mapped; every
        // worker has been reaped, so no other process holds the pages
        // via us (the memfd itself dies with its last mapping).
        unsafe { libc::munmap(MP_BASE as *mut c_void, layout.total) };
        Ok(out)
    }

    fn run_mapped<W>(&self, layout: &RegionLayout, w: W) -> MpReport
    where
        W: Workload,
        W::Desc: Copy,
    {
        let workload = w.name();
        // Guard pages: PROT_NONE at the low end of every slot,
        // established once before fork and inherited by every worker.
        for s in 0..layout.slots {
            // SAFETY: [I10] each guard page is inside our fresh mapping.
            let rc = unsafe {
                libc::mprotect(layout.slot_base(s) as *mut c_void, PAGE, libc::PROT_NONE)
            };
            assert_eq!(rc, 0, "mprotect(slot guard) failed");
        }
        // SAFETY: [I16] freshly mapped (zeroed) control block.
        let ctrl = unsafe { &*layout.ctrl() };
        ctrl.live.store(1, Ordering::Relaxed); // the root
                                               // Free list: slots 1..N (slot 0 is the root's).
        for s in 1..layout.slots {
            // SAFETY: [I16] pre-fork, single-threaded init of free
            // slots' headers.
            unsafe {
                (*layout.header::<()>(s)).next_free = if s + 1 < layout.slots {
                    s as u64 + 2
                } else {
                    0
                };
            }
        }
        ctrl.slot_head.store(2, Ordering::Relaxed); // slot index 1
                                                    // Root task header into slot 0.
        let root_hdr = layout.header::<W::Desc>(0);
        // SAFETY: [I16] pre-fork init of the root's slot header.
        unsafe {
            (*root_hdr).is_root = 1;
            (*root_hdr).join = 0;
            (*root_hdr).parent_ctx = 0;
            (*root_hdr).slot_idx = 0;
            (*root_hdr).desc = MaybeUninit::new(w.root());
        }

        // Flush inherited stdio buffers so workers cannot re-emit them.
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let _ = std::io::stderr().flush();

        let t0 = std::time::Instant::now();
        let mut pids = Vec::with_capacity(layout.workers);
        for id in 0..layout.workers {
            // SAFETY: [I10][I15] fork; the child immediately enters the
            // alloc-free, lock-free bootstrap path and leaves via
            // _exit, never returning into this function's frame.
            let pid = unsafe { libc::fork() };
            assert!(pid >= 0, "fork failed");
            if pid == 0 {
                // ----- worker process -----
                let exit = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: [I15] fresh single-threaded child.
                    unsafe { mp_bootstrap::<W>(id, *layout, &w as *const W, self.work_divisor) }
                }));
                // Reached only if bootstrap/scheduler panicked.
                let _ = exit;
                // SAFETY: [I10] async-signal-safe process exit.
                unsafe { libc::_exit(102) }
            }
            pids.push(pid);
        }

        // Coordinate: wait for the tree, then stop the workers.
        let mut poll = 0u64;
        loop {
            if ctrl.root_done.load(Ordering::Acquire) != 0 && ctrl.live.load(Ordering::Acquire) == 0
            {
                break;
            }
            poll += 1;
            if poll.is_multiple_of(200) {
                // A worker dying early (panic → _exit(101/102), or a
                // signal) would hang the run; detect and fail fast.
                for &pid in &pids {
                    let mut status = 0;
                    // SAFETY: [I10] non-blocking status poll of our own
                    // child.
                    let r = unsafe { libc::waitpid(pid, &mut status, libc::WNOHANG) };
                    if r == pid {
                        for &p in &pids {
                            // SAFETY: [I10] killing our own children.
                            unsafe { libc::kill(p, libc::SIGKILL) };
                        }
                        for &p in &pids {
                            // SAFETY: [I10] reaping our own children.
                            unsafe { libc::waitpid(p, std::ptr::null_mut(), 0) };
                        }
                        panic!("multiprocess worker {pid} died mid-run (status {status:#x})");
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        ctrl.shutdown_flag.store(1, Ordering::Release);
        for &pid in &pids {
            let mut status = 0;
            // SAFETY: [I10] blocking reap of our own child.
            let r = unsafe { libc::waitpid(pid, &mut status, 0) };
            assert_eq!(r, pid, "waitpid failed");
            assert!(
                libc::WIFEXITED(status) && libc::WEXITSTATUS(status) == 0,
                "multiprocess worker exited abnormally (status {status:#x})"
            );
        }
        let wall = t0.elapsed();

        // Metrics export, the uni-address way: the parent registers
        // each worker's segment row as that worker's RDMA window and
        // READs the cells through the fabric — per-worker metrics with
        // no RPC and no pipes.
        let mut fabric = ShmFabric::new();
        let mut metric_words = vec![0u64; layout.workers * MC_STRIDE];
        for wk in 0..layout.workers {
            let row = layout.metrics_cell_addr(wk, 0);
            // SAFETY: [I13] the row is inside the live mapping, shared
            // with worker `wk` at this same address; the workers have
            // exited, so no location is concurrently written.
            unsafe {
                fabric
                    .register_region(WorkerId(wk as u32), row as u64, MC_STRIDE * 8)
                    .expect("register metrics window");
            }
            let mut buf = [0u8; MC_STRIDE * 8];
            fabric
                .read(
                    WorkerId(layout.workers as u32),
                    WorkerId(wk as u32),
                    row as u64,
                    &mut buf,
                )
                .expect("fabric read of metrics row");
            for c in 0..MC_STRIDE {
                metric_words[wk * MC_STRIDE + c] =
                    u64::from_le_bytes(buf[c * 8..(c + 1) * 8].try_into().unwrap());
            }
        }
        let msum = |c: usize| -> u64 {
            (0..layout.workers)
                .map(|wk| metric_words[wk * MC_STRIDE + c])
                .sum()
        };
        let scell_of =
            |wk: usize, c: usize| cell(layout.stats_cell_addr(wk, c)).load(Ordering::Acquire);
        let ssum = |c: usize| -> u64 { (0..layout.workers).map(|wk| scell_of(wk, c)).sum() };
        let fingerprint = (0..layout.workers).fold(0u64, |acc, wk| {
            acc.wrapping_add(scell_of(wk, SC_FINGERPRINT))
        });
        let bootstrap_allocs = (0..layout.workers)
            .map(|wk| ctrl.bootstrap_allocs[wk].load(Ordering::Acquire))
            .collect();

        let stats = NativeRunStats {
            workload,
            workers: layout.workers as u32,
            total_tasks: msum(MC_TASKS),
            total_units: ssum(SC_UNITS),
            total_work_cycles: ssum(SC_WORK_CYCLES),
            joins: ssum(SC_JOINS),
            spawns: ssum(SC_SPAWNS),
            frame_bytes_total: ssum(SC_FRAME_BYTES),
            peak_frame_bytes: ctrl.peak_frame_bytes.load(Ordering::Acquire),
            join_fingerprint: fingerprint,
            steals: msum(MC_STEALS_COMPLETED),
            parks: msum(MC_PARKS),
            unparks: msum(MC_UNPARKS),
            trace_dropped: 0,
            wall,
        };
        MpReport {
            stats,
            bootstrap_allocs,
            metric_words,
        }
    }
}

/// Create the memfd-backed shared mapping at [`MP_BASE`]. Errors (not
/// panics) on hosts that cannot, so callers can skip with a reason.
fn map_region(total: usize) -> Result<(), String> {
    // SAFETY: [I10] memfd + MAP_SHARED|MAP_FIXED_NOREPLACE at an
    // address chosen to be free; NOREPLACE turns a collision into an
    // error instead of a clobber. Every result is checked.
    unsafe {
        let fd = libc::syscall(libc::SYS_memfd_create, c"uat-mp-region".as_ptr(), 0u32) as i32;
        if fd < 0 {
            return Err(format!(
                "memfd_create unavailable: {}",
                std::io::Error::last_os_error()
            ));
        }
        if libc::ftruncate(fd, total as libc::off_t) != 0 {
            let e = std::io::Error::last_os_error();
            libc::close(fd);
            return Err(format!("ftruncate({total}) failed: {e}"));
        }
        let p = libc::mmap(
            MP_BASE as *mut c_void,
            total,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED | libc::MAP_FIXED_NOREPLACE,
            fd,
            0,
        );
        let e = std::io::Error::last_os_error();
        libc::close(fd);
        if p == libc::MAP_FAILED {
            return Err(format!(
                "MAP_FIXED_NOREPLACE at {MP_BASE:#x} failed: {e} \
                 (kernel < 4.17, or the range is occupied)"
            ));
        }
        if p as usize != MP_BASE {
            libc::munmap(p, total);
            return Err("kernel ignored MAP_FIXED_NOREPLACE".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_model::testutil::BinTree;
    use uat_model::{join_tree_fingerprint, sequential_profile};

    fn runner(workers: usize) -> MultiProcessRunner {
        MultiProcessRunner::new(workers).with_work_divisor(u64::MAX)
    }

    fn supported() -> bool {
        match MultiProcessRunner::probe_support() {
            Ok(()) => true,
            Err(e) => {
                eprintln!("skipping multiprocess test: {e}");
                false
            }
        }
    }

    /// The metrics-cell indices hard-coded here must match the shared
    /// segment layout the exporter names cells by.
    #[cfg(feature = "metrics")]
    #[test]
    fn metrics_cell_indices_match_segment_layout() {
        use uat_metrics::{names, shm};
        assert_eq!(MC_STRIDE, shm::ROW_STRIDE);
        let expect = [
            (MC_HEARTBEATS, names::HEARTBEATS),
            (MC_STEALS_COMPLETED, names::STEALS_COMPLETED),
            (MC_STEALS_FAILED, names::STEALS_FAILED),
            (MC_PARKS, names::PARKS),
            (MC_UNPARKS, names::UNPARKS),
            (MC_TASKS, names::TASKS),
        ];
        assert_eq!(shm::SEGMENT_COUNTERS.len(), expect.len());
        for (idx, name) in expect {
            assert_eq!(shm::SEGMENT_COUNTERS[idx].0, name, "cell {idx}");
        }
    }

    #[test]
    fn bintree_counts_match_sequential_profile() {
        if !supported() {
            return;
        }
        let w = BinTree {
            depth: 6,
            work: 1_000,
            frame: 512,
        };
        let p = sequential_profile(&w);
        for workers in [1usize, 2, 4] {
            let s = runner(workers).run(w.clone());
            assert_eq!(s.total_tasks, p.tasks, "workers={workers}");
            assert_eq!(s.total_units, p.units);
            assert_eq!(s.total_work_cycles, p.work_cycles);
            assert_eq!(s.joins, p.joins);
            assert_eq!(s.spawns, p.spawns);
            assert_eq!(s.frame_bytes_total, p.frame_bytes_total);
            assert_eq!(s.join_fingerprint, p.join_fingerprint);
            assert_eq!(s.join_fingerprint, join_tree_fingerprint(&w));
        }
    }

    #[test]
    fn cross_process_steals_happen() {
        if !supported() {
            return;
        }
        // Real work (undivided) so sibling processes get a window to
        // steal; a few attempts for slow single-CPU hosts.
        let mut stole = 0;
        for _ in 0..3 {
            let w = BinTree {
                depth: 9,
                work: 60_000,
                frame: 256,
            };
            let s = MultiProcessRunner::new(4).run(w);
            assert_eq!(s.total_tasks, (1 << 10) - 1);
            stole += s.steals;
            if stole > 0 {
                break;
            }
        }
        assert!(stole > 0, "no cross-process steals across 3 runs");
    }

    #[test]
    fn report_carries_metrics_and_probe() {
        if !supported() {
            return;
        }
        let w = BinTree {
            depth: 5,
            work: 100,
            frame: 128,
        };
        let report = runner(2).try_run(w).unwrap();
        assert_eq!(report.bootstrap_allocs.len(), 2);
        assert!(report.bootstrap_allocs.iter().all(|&a| a == 0));
        // Tasks exported through the fabric-read segment agree with the
        // stats bank.
        let tasks: u64 = (0..2)
            .map(|wk| report.metric_words[wk * MC_STRIDE + MC_TASKS])
            .sum();
        assert_eq!(tasks, report.stats.total_tasks);
        #[cfg(feature = "metrics")]
        {
            let snap = report.metrics_snapshot();
            assert_eq!(snap.total(uat_metrics::names::TASKS), tasks);
        }
    }
}
