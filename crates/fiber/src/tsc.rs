//! Cycle counting with `rdtsc`/`rdtscp` — the unit of Table 2.

use std::arch::x86_64::{__cpuid, __rdtscp, _rdtsc};

/// Serialize, then read the timestamp counter (measurement start).
#[inline]
pub fn start() -> u64 {
    // SAFETY: cpuid and rdtsc are unprivileged and have no memory
    // operands; this crate only builds on x86_64.
    unsafe {
        // CPUID serializes the pipeline so earlier instructions cannot
        // leak into the measured region.
        let _ = __cpuid(0);
        _rdtsc()
    }
}

/// Read the timestamp counter with `rdtscp` (measurement end); the
/// instruction waits for earlier instructions to retire.
#[inline]
pub fn stop() -> u64 {
    // SAFETY: rdtscp writes only through the provided aux pointer, which
    // points at a local; cpuid has no memory operands.
    unsafe {
        let mut aux = 0u32;
        let t = __rdtscp(&mut aux as *mut u32);
        let _ = __cpuid(0);
        t
    }
}

/// Read the timestamp counter without serializing the pipeline — the
/// cheap read used inside calibrated spin loops, where the fences of
/// [`start`]/[`stop`] would dwarf the interval being produced.
#[inline]
pub fn now() -> u64 {
    // SAFETY: rdtsc is unprivileged and has no memory operands; this
    // crate only builds on x86_64.
    unsafe { _rdtsc() }
}

/// Busy-spin for (at least) `cycles` timestamp-counter ticks — the
/// native interpretation of the task model's `Work(c)` action. The loop
/// re-reads the counter rather than counting iterations, so the delay
/// is calibrated in the same unit Table 2 measures in.
#[inline]
pub fn spin_cycles(cycles: u64) {
    if cycles == 0 {
        return;
    }
    let t0 = now();
    while now().wrapping_sub(t0) < cycles {
        std::hint::spin_loop();
    }
}

/// Measure the mean cycles of one call to `f`, amortized over `batch`
/// back-to-back calls, taking the minimum of `reps` batches (minimum
/// filters scheduler noise, batching amortizes the fence overhead).
pub fn measure<F: FnMut()>(mut f: F, batch: u64, reps: u64) -> f64 {
    assert!(batch > 0 && reps > 0);
    // Warm up caches and branch predictors.
    for _ in 0..batch {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = start();
        for _ in 0..batch {
            f();
        }
        let t1 = stop();
        let per = (t1.wrapping_sub(t0)) as f64 / batch as f64;
        if per < best {
            best = per;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_enough() {
        let a = start();
        let b = stop();
        assert!(b >= a, "tsc went backwards: {a} -> {b}");
    }

    #[test]
    fn measure_scales_with_work() {
        let short = measure(
            || {
                std::hint::black_box(1 + 1);
            },
            1000,
            20,
        );
        let long = measure(
            || {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(std::hint::black_box(i));
                }
                std::hint::black_box(x);
            },
            1000,
            20,
        );
        assert!(long > short, "short={short}, long={long}");
        assert!((0.0..1_000.0).contains(&short), "short={short}");
    }
}
