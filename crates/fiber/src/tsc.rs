//! Cycle counting with `rdtsc`/`rdtscp` — the unit of Table 2 — plus
//! the calibrated, per-run-epoch [`RunClock`] that stamps native trace
//! events.
//!
//! The raw counter readers below are x86-64 only (like the rest of the
//! crate); [`RunClock`] additionally degrades gracefully: if the TSC is
//! unavailable (non-x86 host, once the crate gate lifts) or calibration
//! detects a broken counter, it falls back to `std::time::Instant`
//! deltas at a nominal rate and *says so* via [`ClockSource`], which the
//! trace exporters surface as metadata — honest timestamps or honest
//! labels, never silent garbage.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{__cpuid, __rdtscp, _rdtsc};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since a process-wide epoch — the portable stand-in for
/// the TSC where no usable counter exists (1 "cycle" = 1 ns).
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn instant_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Serialize, then read the timestamp counter (measurement start).
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn start() -> u64 {
    // SAFETY: [I11] cpuid and rdtsc are unprivileged and have no memory
    // operands; this crate only builds on x86_64.
    unsafe {
        // CPUID serializes the pipeline so earlier instructions cannot
        // leak into the measured region.
        let _ = __cpuid(0);
        _rdtsc()
    }
}

/// [`start`] on hosts without a TSC: an `Instant`-based reading.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn start() -> u64 {
    instant_nanos()
}

/// Read the timestamp counter with `rdtscp` (measurement end); the
/// instruction waits for earlier instructions to retire.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn stop() -> u64 {
    // SAFETY: [I11] rdtscp writes only through the provided aux pointer, which
    // points at a local; cpuid has no memory operands.
    unsafe {
        let mut aux = 0u32;
        let t = __rdtscp(&mut aux as *mut u32);
        let _ = __cpuid(0);
        t
    }
}

/// [`stop`] on hosts without a TSC: an `Instant`-based reading.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn stop() -> u64 {
    instant_nanos()
}

/// Read the timestamp counter without serializing the pipeline — the
/// cheap read used inside calibrated spin loops, where the fences of
/// [`start`]/[`stop`] would dwarf the interval being produced.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn now() -> u64 {
    // SAFETY: [I11] rdtsc is unprivileged and has no memory operands; this
    // crate only builds on x86_64.
    unsafe { _rdtsc() }
}

/// [`now`] on hosts without a TSC: an `Instant`-based reading.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn now() -> u64 {
    instant_nanos()
}

/// Busy-spin for (at least) `cycles` timestamp-counter ticks — the
/// native interpretation of the task model's `Work(c)` action. The loop
/// re-reads the counter rather than counting iterations, so the delay
/// is calibrated in the same unit Table 2 measures in.
#[inline]
pub fn spin_cycles(cycles: u64) {
    if cycles == 0 {
        return;
    }
    let t0 = now();
    while now().wrapping_sub(t0) < cycles {
        std::hint::spin_loop();
    }
}

/// Measure the mean cycles of one call to `f`, amortized over `batch`
/// back-to-back calls, taking the minimum of `reps` batches (minimum
/// filters scheduler noise, batching amortizes the fence overhead).
pub fn measure<F: FnMut()>(mut f: F, batch: u64, reps: u64) -> f64 {
    assert!(batch > 0 && reps > 0);
    // Warm up caches and branch predictors.
    for _ in 0..batch {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = start();
        for _ in 0..batch {
            f();
        }
        let t1 = stop();
        let per = (t1.wrapping_sub(t0)) as f64 / batch as f64;
        if per < best {
            best = per;
        }
    }
    best
}

/// Which physical clock a [`RunClock`] reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockSource {
    /// Hardware timestamp counter, calibrated against the OS monotonic
    /// clock.
    Tsc,
    /// `std::time::Instant` at [`INSTANT_HZ`] — the fallback when the
    /// TSC is absent or calibration rejects it.
    Instant,
}

/// The nominal rate of the `Instant` fallback: one "cycle" per
/// nanosecond.
pub const INSTANT_HZ: f64 = 1e9;

/// Calibrate the TSC against the OS monotonic clock, once per process:
/// read both clocks, spin ~2 ms, read both again, and require the
/// implied rate to land in a plausible range (100 MHz – 100 GHz) with a
/// forward-moving counter. `None` means "do not trust this TSC".
fn calibrated_tsc_hz() -> Option<f64> {
    static HZ: OnceLock<Option<f64>> = OnceLock::new();
    *HZ.get_or_init(|| {
        if !cfg!(target_arch = "x86_64") {
            return None;
        }
        let i0 = Instant::now();
        let t0 = start();
        while i0.elapsed() < std::time::Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let t1 = stop();
        let secs = i0.elapsed().as_secs_f64();
        let ticks = t1.wrapping_sub(t0);
        if t1 <= t0 || secs <= 0.0 {
            return None;
        }
        let hz = ticks as f64 / secs;
        (1e8..=1e11).contains(&hz).then_some(hz)
    })
}

/// A monotonic cycle clock with a per-run epoch: every reading is
/// "cycles since [`RunClock::start`] was called", comparable across the
/// run's worker threads because they share the one epoch. Backed by the
/// calibrated TSC when trustworthy, else by `Instant` (see
/// [`ClockSource`]). Raw TSC readings are *not* guaranteed monotone
/// across cores — per-worker consumers clamp (see the runtime's
/// tracer), which this type deliberately leaves to them so a single
/// shared `RunClock` needs no interior mutability on the hot path.
#[derive(Clone, Copy, Debug)]
pub struct RunClock {
    source: ClockSource,
    hz: f64,
    epoch_tsc: u64,
    epoch: Instant,
}

impl RunClock {
    /// Establish the run epoch: calibrate (first call only), pick the
    /// clock source, and record "time zero".
    pub fn start() -> Self {
        match calibrated_tsc_hz() {
            Some(hz) => RunClock {
                source: ClockSource::Tsc,
                hz,
                epoch_tsc: now(),
                epoch: Instant::now(),
            },
            None => RunClock {
                source: ClockSource::Instant,
                hz: INSTANT_HZ,
                epoch_tsc: 0,
                epoch: Instant::now(),
            },
        }
    }

    /// Cycles since the epoch. Cheap (one `rdtsc` on the TSC path); may
    /// regress by small amounts across core migrations — clamp per
    /// consumer if monotonicity is required.
    #[inline]
    pub fn now_cycles(&self) -> u64 {
        match self.source {
            ClockSource::Tsc => now().wrapping_sub(self.epoch_tsc),
            ClockSource::Instant => (self.epoch.elapsed().as_secs_f64() * self.hz) as u64,
        }
    }

    /// The calibrated cycle rate in Hz.
    pub fn hz(&self) -> f64 {
        self.hz
    }

    /// Which physical clock backs this run's timestamps.
    pub fn source(&self) -> ClockSource {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_enough() {
        let a = start();
        let b = stop();
        assert!(b >= a, "tsc went backwards: {a} -> {b}");
    }

    #[test]
    fn measure_scales_with_work() {
        let short = measure(
            || {
                std::hint::black_box(1 + 1);
            },
            1000,
            20,
        );
        let long = measure(
            || {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(std::hint::black_box(i));
                }
                std::hint::black_box(x);
            },
            1000,
            20,
        );
        assert!(long > short, "short={short}, long={long}");
        assert!((0.0..1_000.0).contains(&short), "short={short}");
    }

    #[test]
    fn run_clock_advances_at_a_sane_rate() {
        let clk = RunClock::start();
        let a = clk.now_cycles();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = clk.now_cycles();
        assert!(b > a, "run clock did not advance: {a} -> {b}");
        // 5 ms at >= 100 MHz is >= 500k cycles; at <= 100 GHz it is
        // <= 500M plus generous scheduling slack.
        let d = b - a;
        assert!(
            (100_000..50_000_000_000).contains(&d),
            "implausible 5ms delta: {d} cycles (source {:?}, {} Hz)",
            clk.source(),
            clk.hz()
        );
    }

    #[test]
    fn run_clock_reports_its_source_and_rate() {
        let clk = RunClock::start();
        match clk.source() {
            ClockSource::Tsc => assert!((1e8..=1e11).contains(&clk.hz())),
            ClockSource::Instant => assert_eq!(clk.hz(), INSTANT_HZ),
        }
        // Two clocks share the process-wide calibration.
        let clk2 = RunClock::start();
        assert_eq!(clk.source(), clk2.source());
        assert_eq!(clk.hz(), clk2.hz());
    }
}
