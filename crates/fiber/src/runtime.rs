//! A native work-stealing fiber runtime.
//!
//! This is the shared-memory degenerate case of the paper's runtime
//! (Section 2: "In shared memory environment, migrating a task in the
//! middle of its execution can be done simply by passing the address of
//! the stack"): workers are OS threads in one address space, every thread
//! (task) runs on its own pooled stack (the stack-pool strategy — the
//! same-stack Figure 4 layout is only sound across *separate* address
//! spaces, which is exactly the paper's observation), continuations are
//! [`Context`] records in the THE deques of `uat-deque`, and a steal is
//! a `resume_context` of somebody else's saved parent.
//!
//! The scheduler is the paper's: child-first on spawn, FIFO stealing,
//! the Figure 7 join loop (fast-path done-check, else suspend and find
//! other work).
//!
//! # Safety model
//!
//! Control transfers never unwind (user closures are `catch_unwind`ed and
//! a panic aborts). A context is resumed exactly once: the deque hands an
//! entry to exactly one consumer (THE protocol), and the join waiter slot
//! is claimed by exactly one CAS winner. A task's stack is retired only
//! by its own completion and freed only after control has left it (the
//! `pending_retire` hand-off). Functions passed to
//! `switch_stack_and_call` and trampolines that claim a continuation
//! diverge with only `Copy` locals live, so no destructor is skipped.
//!
//! **Publication rule [I12]:** a saved continuation is made visible to
//! other workers (deque push or join-waiter CAS) only from a stack that
//! is *not* the continuation's own. The `Context` record lives on the
//! fiber's stack and a thief resumes it by setting `rsp = ctx` — from
//! that instant every frame below the record (the very trampoline that
//! saved it) is dead memory the resumed fiber will overwrite. So
//! `spawn` publishes the parent from the child's fresh stack
//! (`child_main`), and a parking `join` hands the waiter CAS to the
//! scheduler loop on the worker's OS stack (`pending_join`). Publishing
//! from the trampoline itself — the obvious Figure 4 reading — is a
//! stack-trample race that corrupts spilled locals under steal churn
//! (debug builds spill everything, making it a near-certain segfault).

use crate::ctx::{resume_context, save_context_and_call, switch_stack_and_call, Context};
use crate::nmetrics::{MetricsShared, WorkerMetrics};
use crate::ntrace::{TraceShared, WorkerTracer};
use crate::stack::{Stack, StackPool};
use std::cell::Cell;
use std::ffi::c_void;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use uat_base::SplitMix64;
use uat_deque::NativeDeque;

const WAITER_EMPTY: u64 = 0;
const WAITER_SEALED: u64 = 1;

/// Join synchronization core: done flag + single waiter slot.
struct JoinCore {
    done: AtomicBool,
    /// 0 = empty, 1 = sealed (child finished), else a `*mut Context`.
    waiter: AtomicU64,
    /// Trace-only: task id of the parked waiter, written by the parent
    /// before publishing its continuation in the waiter slot, read by
    /// the completing child to name the `JoinReady` edge.
    #[cfg(feature = "trace")]
    waiter_task: AtomicU64,
    /// Trace-only: task id of the child whose completion unparked the
    /// waiter (0 = the join never blocked), read by the resumed parent
    /// to name the `JoinResume` edge.
    #[cfg(feature = "trace")]
    enabler: AtomicU64,
}

impl JoinCore {
    fn new() -> Self {
        JoinCore {
            done: AtomicBool::new(false),
            waiter: AtomicU64::new(WAITER_EMPTY),
            #[cfg(feature = "trace")]
            waiter_task: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            enabler: AtomicU64::new(0),
        }
    }
}

/// Handle to a spawned thread; [`join`](JoinHandle::join) returns its
/// result (the `task<T>`/`join` API of Figure 2).
pub struct JoinHandle<T> {
    core: Arc<JoinCore>,
    result: Arc<Mutex<Option<T>>>,
}

struct Shared {
    deques: Vec<Arc<NativeDeque<u64>>>,
    shutdown: AtomicBool,
    live: AtomicU64,
    /// Run-wide metrics state: sharded scheduler counters (steals,
    /// parks, heartbeats, …), tail-latency histograms, and the flight
    /// rings. With the `metrics` feature off this degrades to the three
    /// plain atomics [`SchedStats`] needs.
    metrics: Arc<MetricsShared>,
    seed_task: Mutex<Option<Box<Payload>>>,
    /// Run-wide trace state; `None` = untraced (hooks early-out).
    #[cfg(feature = "trace")]
    trace: Option<Arc<TraceShared>>,
}

impl Shared {
    #[inline]
    fn trace_shared(&self) -> Option<&Arc<TraceShared>> {
        #[cfg(feature = "trace")]
        {
            self.trace.as_ref()
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }
}

struct Worker {
    id: usize,
    shared: Arc<Shared>,
    pool: StackPool,
    rng: SplitMix64,
    sched_ctx: *mut Context,
    pending_retire: Option<Stack>,
    /// A fiber that wants to park on a join hands `(core, ctx)` to its
    /// scheduler here; the scheduler performs the waiter CAS from the
    /// OS stack per [I12] (resuming the fiber immediately if the child
    /// already sealed the slot). The pointer stays valid until the CAS:
    /// the suspended fiber's frame holds the `JoinHandle`'s `Arc`.
    pending_join: Option<(*const JoinCore, u64)>,
    trace: WorkerTracer,
    metrics: WorkerMetrics,
}

thread_local! {
    static CURRENT: Cell<*mut Worker> = const { Cell::new(std::ptr::null_mut()) };
}

// `inline(never)` is load-bearing, not a perf tweak: fiber code calls
// `current()` on *both sides* of a context switch (e.g. before and after
// a task body that may suspend), and the resume can happen on a
// different OS thread. If both calls inline into one function, LLVM
// treats the thread-local's address as invariant across the opaque
// switch and CSEs the accesses, handing the resumed code the *previous*
// thread's Worker — stacks then retire into the wrong pool and the next
// resume jumps into reused memory. Keeping the TLS access inside a
// never-inlined callee forces a fresh lookup on the executing thread.
#[inline(never)]
fn current() -> *mut Worker {
    let w = CURRENT.with(|c| c.get());
    assert!(
        !w.is_null(),
        "fiber operation outside a uat-fiber worker thread"
    );
    w
}

/// The id (0-based, `< nworkers`) of the worker executing the calling
/// fiber *right now*.
///
/// Routed through the never-inlined [`current`] lookup above, so the
/// answer is re-derived from TLS on whichever OS thread is actually
/// executing — calling this before and after a suspension point
/// (`join`) observes real fiber migration. The
/// `tls_rederivation` regression test pins exactly that; if this
/// accessor ever returns a cached pre-suspension worker, that test (and
/// `uat-lint`'s tls rules) catch the regression.
///
/// Panics outside a worker thread.
pub fn current_worker_id() -> usize {
    let w = current();
    // SAFETY: [I7] `current()` returned non-null, so this thread is a
    // worker thread and `w` points at its live Worker; the shared borrow
    // reads one immutable field and ends before any switch.
    unsafe { (*w).id }
}

/// Free the stack retired by the previously completed thread, if any.
/// Must run at every point control can land after a completion.
#[inline]
fn collect_retired() {
    let w = current();
    // SAFETY: [I7] only the owning OS thread touches its Worker, and no other
    // borrow is live across this call.
    let w = unsafe { &mut *w };
    if let Some(s) = w.pending_retire.take() {
        w.pool.put(s);
    }
}

struct Payload {
    body: Option<Box<dyn FnOnce() + Send>>,
    core: Arc<JoinCore>,
    stack: Option<Stack>,
    /// Trace task id (0 when the run is untraced).
    task_id: u64,
    /// The spawner's saved continuation (`*mut Context` as u64), written
    /// by `spawn_tramp` on the way into the child and published by
    /// `child_main` from the child's stack per [I12]. 0 for the root
    /// task (no continuation to publish).
    parent_ctx: u64,
}

/// Spawn a thread running `f`, child-first: `f` starts immediately on a
/// fresh stack and the *caller's* continuation becomes stealable
/// (Figure 4's semantics under the stack-pool strategy).
///
/// Must be called from inside [`Runtime::run`].
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let core = Arc::new(JoinCore::new());
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let r2 = Arc::clone(&result);
    let body: Box<dyn FnOnce() + Send> = Box::new(move || {
        *r2.lock().unwrap() = Some(f());
    });
    let w = current();
    // SAFETY: [I7] exclusive access by the owning thread; short borrow.
    let (stack, task_id) = unsafe {
        let wr = &mut *w;
        let stack = wr.pool.take();
        // Trace: close the parent's Work slice, open Spawn, allocate
        // and announce the child id (0 when untraced).
        let task_id = wr.trace.on_spawn();
        (stack, task_id)
    };
    let payload = Box::new(Payload {
        body: Some(body),
        core: Arc::clone(&core),
        stack: Some(stack),
        task_id,
        parent_ctx: 0,
    });
    // SAFETY: [I8] shared is alive for the runtime's duration; the reference
    // is dropped before the context switch below.
    unsafe {
        let wr = &*w;
        wr.shared.live.fetch_add(1, Ordering::AcqRel);
    }
    // SAFETY: [I5] spawn_tramp never returns normally; the continuation saved
    // here is resumed exactly once (by the child's pop or by a thief).
    unsafe {
        save_context_and_call(
            std::ptr::null_mut(),
            spawn_tramp,
            Box::into_raw(payload) as *mut c_void,
        );
    }
    // Resumed — possibly on a different worker thread.
    collect_retired();
    // SAFETY: [I7] exclusive worker access; scoped borrow.
    unsafe {
        (*current()).trace.on_resumed();
    }
    JoinHandle { core, result }
}

unsafe extern "C" fn spawn_tramp(ctx: *mut Context, arg: *mut c_void) {
    // [I12]: do NOT publish `ctx` here — this frame lives on the very
    // stack `ctx` points into, and a thief resuming the continuation
    // would overwrite it while we still execute. Stash the continuation
    // in the payload (heap) and leave this stack first; `child_main`
    // publishes it from the child's fresh stack.
    // SAFETY: [I8] the payload is exclusively ours until child_main takes
    // ownership; the borrow ends before the stack switch.
    let top = unsafe {
        let payload = &mut *(arg as *mut Payload);
        payload.parent_ctx = ctx as u64;
        payload
            .stack
            .as_ref()
            .expect("stack present at start")
            .top()
    };
    // SAFETY: [I6][I9] fresh pooled stack; child_main diverges.
    unsafe { switch_stack_and_call(top, child_main, arg) }
}

unsafe extern "C" fn child_main(arg: *mut c_void) -> ! {
    {
        // SAFETY: [I8] sole owner of the payload from here.
        let mut payload = unsafe { Box::from_raw(arg as *mut Payload) };
        let body = payload.body.take().expect("body present");
        let task = payload.task_id;
        // Push the parent thread's continuation: stealable from now on.
        // Safe here per [I12] — we run on the child's fresh stack, and
        // every parent-stack frame below the record is already dead.
        if payload.parent_ctx != 0 {
            // SAFETY: [I5][I7] worker structures outlive all tasks;
            // scoped borrow on the owning thread.
            unsafe {
                let wr = &mut *current();
                // Trace: register the continuation *before* the push
                // makes it stealable, so a thief's commit always finds
                // the publication. `cur_task` is still the parent's id:
                // `on_task_begin` below is what makes the child current.
                let parent = wr.trace.cur_task();
                wr.trace.on_publish(payload.parent_ctx, parent);
                wr.shared.deques[wr.id].push(payload.parent_ctx);
            }
        }
        // Trace/metrics: the fiber body starts here; the begin stamps are
        // Copy locals so they survive any migration of this stack between
        // workers.
        // SAFETY: [I7] exclusive worker access on this thread; scoped borrow.
        let (born, mborn) = unsafe {
            let wr = &mut *current();
            (wr.trace.on_task_begin(task), wr.metrics.on_task_begin())
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_err() {
            // Unwinding across a context switch is UB; mirror the paper's
            // C++ runtime and die loudly.
            eprintln!("uat-fiber: task panicked; aborting");
            std::process::abort();
        }
        let w = current();
        // Retire our own stack; freed once control is off it.
        // SAFETY: [I6][I7] exclusive worker access on this thread; the borrow is
        // scoped to this block.
        unsafe {
            let wr = &mut *w;
            debug_assert!(wr.pending_retire.is_none());
            wr.pending_retire = payload.stack.take();
            wr.trace.on_task_end(task, born);
            wr.metrics.on_task_end(mborn);
        }
        // Thread exit: publish the result, wake a waiter if one parked.
        payload.core.done.store(true, Ordering::Release);
        let prev = payload.core.waiter.swap(WAITER_SEALED, Ordering::AcqRel);
        if prev > WAITER_SEALED {
            // Trace: name the join edge and register the waiter's
            // continuation *before* the push makes it stealable.
            #[cfg(feature = "trace")]
            // SAFETY: [I7] exclusive worker access on this thread.
            unsafe {
                let wr = &mut *w;
                if wr.trace.enabled() {
                    let parent = payload.core.waiter_task.load(Ordering::Acquire);
                    payload.core.enabler.store(task, Ordering::Release);
                    wr.trace.on_join_ready(parent);
                    wr.trace.on_publish(prev, parent);
                }
            }
            // SAFETY: [I5] prev is a parked continuation, claimed exactly here;
            // pushing it makes it runnable (and stealable).
            unsafe {
                let wr = &*w;
                wr.shared.deques[wr.id].push(prev);
            }
        }
        // SAFETY: [I7][I8] w points at this worker's thread-local Worker, alive
        // for the whole worker loop.
        unsafe {
            let wr = &*w;
            wr.shared.live.fetch_sub(1, Ordering::AcqRel);
        }
    } // payload fully dropped before we abandon this stack
    let w = current();
    // Figure 4 lines 13-15: pop the parent continuation; if stolen, go
    // to the scheduler.
    // SAFETY: [I5][I7] worker alive; contexts in the deque are live by protocol.
    let target = unsafe {
        let wr = &mut *w;
        match wr.shared.deques[wr.id].pop() {
            Some(c) => {
                wr.trace.on_local_pop(c);
                c as *mut Context
            }
            None => wr.sched_ctx,
        }
    };
    // SAFETY: [I5] target is resumed exactly once; only Copy locals live here.
    unsafe { resume_context(target) }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to exit and take its result (Figure 7's
    /// `join`): fast path is one done-flag load; otherwise the caller
    /// suspends and the worker finds other work.
    pub fn join(self) -> T {
        if !self.core.done.load(Ordering::Acquire) {
            let core_ptr: *const JoinCore = &*self.core;
            // Trace: charge the park attempt to the suspend bucket.
            // SAFETY: [I7] exclusive worker access on this thread.
            unsafe {
                (*current()).trace.on_suspend();
            }
            // SAFETY: [I5] join_tramp either parks this continuation (resumed
            // exactly once by the completer) or resumes it inline.
            unsafe {
                save_context_and_call(std::ptr::null_mut(), join_tramp, core_ptr as *mut c_void);
            }
            collect_retired();
            // Trace: name the resume edge if the join actually parked
            // (the child that sealed the slot recorded itself as the
            // enabler); an inline resume just reopens the work slice.
            #[cfg(feature = "trace")]
            // SAFETY: [I7] exclusive worker access on this (possibly new)
            // thread.
            unsafe {
                let wr = &mut *current();
                if wr.trace.enabled() {
                    let child = self.core.enabler.load(Ordering::Acquire);
                    if child != 0 {
                        wr.trace.on_join_resume(child);
                    } else {
                        wr.trace.on_resumed();
                    }
                }
            }
            debug_assert!(self.core.done.load(Ordering::Acquire));
        }
        let out = self
            .result
            .lock()
            .unwrap()
            .take()
            .expect("task set its result before publishing done");
        out
    }

    /// Whether the thread has exited (non-blocking `try_join`).
    pub fn is_done(&self) -> bool {
        self.core.done.load(Ordering::Acquire)
    }
}

unsafe extern "C" fn join_tramp(ctx: *mut Context, arg: *mut c_void) {
    let core = arg as *const JoinCore;
    // Trace: record who is about to park *before* the CAS can expose the
    // slot to the completing child (which reads it to name `JoinReady`).
    #[cfg(feature = "trace")]
    // SAFETY: [I7][I8] core outlives the join; exclusive worker access.
    unsafe {
        let wr = &mut *current();
        if wr.trace.enabled() {
            (*core)
                .waiter_task
                .store(wr.trace.cur_task(), Ordering::Release);
        }
    }
    // [I12]: the waiter CAS publishes `ctx` — the completing child can
    // push it and a thief can resume it the next instant, overwriting
    // this very frame (it lives on `ctx`'s stack). So don't CAS here:
    // hand the park to the scheduler, which runs on the worker's OS
    // stack. Until the scheduler's CAS, `ctx` is invisible to every
    // other thread, so this stack is still private.
    let w = current();
    // SAFETY: [I7] exclusive worker access; the borrow ends before the
    // resume below.
    let sched = unsafe {
        let wr = &mut *w;
        debug_assert!(wr.pending_join.is_none());
        wr.pending_join = Some((core, ctx as u64));
        wr.sched_ctx
    };
    // SAFETY: [I5] the scheduler context is parked in its loop and is
    // resumed exactly once per lineage; only Copy locals are live here.
    unsafe { resume_context(sched) }
}

/// The multi-worker runtime.
#[derive(Clone)]
pub struct Runtime {
    nworkers: usize,
    stack_size: usize,
    /// Per-worker event-ring capacity when tracing; `None` = untraced.
    #[cfg(feature = "trace")]
    trace_rings: Option<usize>,
    /// Caller-supplied registry to record into; `None` = per-run owned.
    #[cfg(feature = "metrics")]
    registry: Option<Arc<uat_metrics::Registry>>,
    /// Whether the timed metrics tier (histograms, flight rings) is on.
    #[cfg(feature = "metrics")]
    metered: bool,
    /// Sampler tick; `None` with a watchdog set falls back to the
    /// default interval.
    #[cfg(feature = "metrics")]
    sampler: Option<std::time::Duration>,
    #[cfg(feature = "metrics")]
    watchdog: Option<crate::nmetrics::WatchdogCfg>,
    /// Watchdog-test sabotage: this worker never heartbeats.
    #[cfg(feature = "metrics")]
    sabotage: Option<usize>,
}

impl Runtime {
    /// A runtime with `nworkers` OS-thread workers.
    pub fn new(nworkers: usize) -> Self {
        assert!(nworkers >= 1);
        Runtime {
            nworkers,
            stack_size: 128 << 10,
            #[cfg(feature = "trace")]
            trace_rings: None,
            #[cfg(feature = "metrics")]
            registry: None,
            #[cfg(feature = "metrics")]
            metered: false,
            #[cfg(feature = "metrics")]
            sampler: None,
            #[cfg(feature = "metrics")]
            watchdog: None,
            #[cfg(feature = "metrics")]
            sabotage: None,
        }
    }

    /// Override the per-task stack size (default 128 KiB).
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Trace subsequent runs with `ring_capacity`-event per-worker
    /// rings; collect results with [`run_traced`](Self::run_traced).
    #[cfg(feature = "trace")]
    pub fn with_tracing(mut self, ring_capacity: usize) -> Self {
        self.trace_rings = Some(ring_capacity);
        self
    }

    /// Record subsequent runs into `registry` (built for at least this
    /// runtime's worker count) and turn on the timed metrics tier:
    /// steal-latency / task-run / park-duration histograms and the
    /// per-worker flight rings. Snapshot the registry after the run.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, registry: Arc<uat_metrics::Registry>) -> Self {
        self.registry = Some(registry);
        self.metered = true;
        self
    }

    /// Start a sampler thread on subsequent runs: every `interval` it
    /// samples each worker's deque depth into the registry (and drives
    /// the watchdog, if one is configured). Implies the timed tier.
    #[cfg(feature = "metrics")]
    pub fn with_sampler(mut self, interval: std::time::Duration) -> Self {
        self.sampler = Some(interval);
        self.metered = true;
        self
    }

    /// Arm the stall watchdog on subsequent runs: if one worker's
    /// heartbeat epoch freezes for `cfg.stall_after` while the other
    /// workers keep advancing, dump a metrics snapshot plus every
    /// worker's flight ring and apply `cfg.action` (abort by default).
    /// Implies a sampler (at the default interval unless
    /// [`with_sampler`](Self::with_sampler) set one) and the timed tier.
    #[cfg(feature = "metrics")]
    pub fn with_watchdog(mut self, cfg: crate::nmetrics::WatchdogCfg) -> Self {
        self.watchdog = Some(cfg);
        self.metered = true;
        self
    }

    /// Deliberately wedge worker `id` (it parks forever without
    /// heartbeating) so watchdog tests can exercise a stall on demand.
    /// Worker 0 seeds the root task and must stay live.
    #[doc(hidden)]
    #[cfg(feature = "metrics")]
    pub fn with_stalled_worker(mut self, id: usize) -> Self {
        assert!(id != 0, "worker 0 seeds the root task; cannot stall it");
        assert!(id < self.nworkers);
        self.sabotage = Some(id);
        self
    }

    /// Run `root` to completion (including everything it spawned and
    /// joined) and return its result.
    pub fn run<T, F>(&self, root: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_counted(root).0
    }

    /// Like [`run`](Self::run), additionally reporting scheduler-level
    /// counters for the run (used by the native workload interpreter's
    /// stats; mirrors the sim engine's `RunStats` steal accounting).
    pub fn run_counted<T, F>(&self, root: F) -> (T, SchedStats)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (out, sched, _shared) = self.run_core(root);
        (out, sched)
    }

    /// Like [`run_counted`](Self::run_counted) with tracing forced on
    /// (at the configured or default ring capacity), additionally
    /// returning the finalized per-worker trace.
    #[cfg(feature = "trace")]
    pub fn run_traced<T, F>(&self, root: F) -> (T, SchedStats, crate::ntrace::NativeTrace)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let mut rt = self.clone();
        rt.trace_rings = Some(
            self.trace_rings
                .unwrap_or(crate::ntrace::DEFAULT_RING_CAPACITY),
        );
        let (out, sched, shared) = rt.run_core(root);
        let trace = crate::ntrace::finalize(shared.trace.as_ref().expect("tracing enabled"));
        (out, sched, trace)
    }

    /// Like [`run_counted`](Self::run_counted) with the timed metrics
    /// tier forced on (into the configured registry, or a fresh one),
    /// additionally returning the run's metrics snapshot.
    #[cfg(feature = "metrics")]
    pub fn run_metered<T, F>(&self, root: F) -> (T, SchedStats, uat_metrics::Snapshot)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let mut rt = self.clone();
        rt.metered = true;
        if rt.registry.is_none() {
            rt.registry = Some(Arc::new(uat_metrics::Registry::new(self.nworkers)));
        }
        let (out, sched, shared) = rt.run_core(root);
        let snapshot = shared.metrics.registry.snapshot();
        (out, sched, snapshot)
    }

    fn run_core<T, F>(&self, root: F) -> (T, SchedStats, Arc<Shared>)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        #[cfg(feature = "trace")]
        let trace = self
            .trace_rings
            .map(|cap| TraceShared::new(self.nworkers, cap));
        #[cfg(feature = "metrics")]
        let metrics = Arc::new(MetricsShared::new(
            self.nworkers,
            self.registry.clone(),
            self.metered,
            self.sabotage,
        ));
        #[cfg(not(feature = "metrics"))]
        let metrics = Arc::new(MetricsShared::new());
        let shared = Arc::new(Shared {
            deques: (0..self.nworkers)
                .map(|_| Arc::new(NativeDeque::new(8192)))
                .collect(),
            shutdown: AtomicBool::new(false),
            live: AtomicU64::new(1), // the root
            metrics,
            seed_task: Mutex::new(None),
            #[cfg(feature = "trace")]
            trace,
        });

        let core = Arc::new(JoinCore::new());
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let r2 = Arc::clone(&result);
        let body: Box<dyn FnOnce() + Send> = Box::new(move || {
            *r2.lock().unwrap() = Some(root());
        });
        let root_task = {
            #[cfg(feature = "trace")]
            {
                shared.trace.as_ref().map_or(0, |t| t.alloc_task())
            }
            #[cfg(not(feature = "trace"))]
            {
                0
            }
        };
        *shared.seed_task.lock().unwrap() = Some(Box::new(Payload {
            body: Some(body),
            core: Arc::clone(&core),
            stack: Some(Stack::new(self.stack_size)),
            task_id: root_task,
            parent_ctx: 0,
        }));

        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..self.nworkers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let stack_size = self.stack_size;
                std::thread::Builder::new()
                    .name(format!("uat-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared, stack_size))
                    .expect("spawn worker thread")
            })
            .collect();

        // Sampler/watchdog thread, when configured: deque-depth samples
        // every tick, heartbeat stall detection when armed.
        #[cfg(feature = "metrics")]
        let sampler = (self.sampler.is_some() || self.watchdog.is_some()).then(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let ms = Arc::clone(&shared.metrics);
            let deques = shared.deques.clone();
            let interval = self
                .sampler
                .unwrap_or(crate::nmetrics::DEFAULT_SAMPLE_INTERVAL);
            let watchdog = self.watchdog.clone();
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("uat-sampler".into())
                .spawn(move || {
                    crate::nmetrics::sampler_loop(
                        &ms,
                        &deques,
                        &stop2,
                        interval,
                        watchdog.as_ref(),
                    );
                })
                .expect("spawn sampler thread");
            (stop, handle)
        });

        // Wait for the root to finish, then for stragglers, then stop.
        while !core.done.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        while shared.live.load(Ordering::Acquire) != 0 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        // Disarm the sampler *before* the shutdown flag: workers stop
        // heartbeating once they see shutdown, and the watchdog must
        // never mistake an orderly exit for a stall.
        #[cfg(feature = "metrics")]
        if let Some((stop, handle)) = sampler {
            stop.store(true, Ordering::Release);
            handle.join().expect("sampler thread");
        }
        shared.shutdown.store(true, Ordering::Release);
        for h in handles {
            h.join().expect("worker thread");
        }
        let wall = t0.elapsed();
        // Every worker has deposited its ring; surface the drop counts
        // in the registry alongside the scheduler counters.
        #[cfg(all(feature = "trace", feature = "metrics"))]
        if let Some(t) = shared.trace.as_ref() {
            for (i, dropped) in t.dropped_per_worker().into_iter().enumerate() {
                if dropped > 0 {
                    shared.metrics.trace_dropped.add(i, dropped);
                }
            }
        }
        let out = result.lock().unwrap().take().expect("root set its result");
        let sched = SchedStats {
            steals: shared.metrics.steals_total(),
            parks: shared.metrics.parks_total(),
            unparks: shared.metrics.unparks_total(),
            wall,
        };
        (out, sched, shared)
    }
}

/// Scheduler-level counters from one [`Runtime::run_counted`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Successful steals of a started thread by an idle worker.
    pub steals: u64,
    /// Workers that crossed the idle spin threshold into a sleep cycle.
    pub parks: u64,
    /// Parked workers that subsequently found work.
    pub unparks: u64,
    /// Elapsed time of the worker run itself — first worker thread
    /// spawned to last joined. Excludes trace-ring allocation before the
    /// run and trace finalization after it, so traced and untraced runs
    /// are compared on the scheduling work alone.
    pub wall: std::time::Duration,
}

fn worker_loop(id: usize, shared: &Arc<Shared>, stack_size: usize) {
    let mut worker = Worker {
        id,
        shared: Arc::clone(shared),
        pool: StackPool::new(stack_size),
        rng: SplitMix64::new(0x5EED ^ id as u64),
        sched_ctx: std::ptr::null_mut(),
        pending_retire: None,
        pending_join: None,
        trace: WorkerTracer::new(shared.trace_shared(), id),
        metrics: WorkerMetrics::new(&shared.metrics, id),
    };
    let w: *mut Worker = &mut worker;
    CURRENT.with(|c| c.set(w));

    // Watchdog-test sabotage: stay alive (so the run is otherwise
    // healthy) but never enter the scheduler loop, so this worker's
    // heartbeat epoch stays frozen while every other worker advances.
    if shared.metrics.is_sabotaged(id) {
        while !shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // SAFETY: [I7] exclusive worker access on this thread.
        unsafe {
            (*w).trace.finish();
        }
        CURRENT.with(|c| c.set(std::ptr::null_mut()));
        return;
    }

    // Worker 0 seeds the root task.
    if id == 0 {
        let payload = shared
            .seed_task
            .lock()
            .unwrap()
            .take()
            .expect("seed present");
        run_fresh(payload);
    }

    let n = shared.deques.len();
    let mut idle_spins = 0u32;
    let mut parked = false;
    loop {
        collect_retired();
        // SAFETY: [I7] exclusive worker access on this thread (each borrow
        // below is scoped to its statement).
        unsafe {
            // Heartbeat: one epoch per scheduler-loop iteration. Parked
            // workers iterate every sleep cycle, so only a wedged (or
            // task-monopolized) worker's epoch ever freezes.
            (*w).metrics.on_loop();
        }
        // Scheduler-side join park [I12]: a fiber that suspended on a
        // join handed us its (core, ctx); publish the waiter CAS from
        // this OS stack. If the child sealed the slot first, the fiber
        // never really parked — continue it right away.
        // SAFETY: [I7] exclusive worker access; scoped borrow.
        if let Some((core, ctx)) = unsafe { (*w).pending_join.take() } {
            // SAFETY: [I8] the suspended fiber's frame holds the
            // JoinHandle's Arc, keeping `core` alive until this CAS
            // decides whether it parks or resumes.
            let parked_now = unsafe {
                (*core)
                    .waiter
                    .compare_exchange(WAITER_EMPTY, ctx, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            };
            if !parked_now {
                idle_spins = 0;
                run_ctx(ctx as *mut Context);
                continue;
            }
        }
        // SAFETY: [I7] as above.
        unsafe {
            (*w).trace.on_idle();
        }
        // Own deque first (ready waiters and un-stolen parents)...
        let target = shared.deques[id]
            .pop()
            .inspect(|&c| {
                // SAFETY: [I7] as above.
                unsafe {
                    (*w).trace.on_local_pop(c);
                }
            })
            .or_else(|| {
                // ...then random stealing.
                if n == 1 {
                    return None;
                }
                // SAFETY: [I7] as above.
                let mut v = unsafe { (*w).rng.below(n as u64 - 1) as usize };
                if v >= id {
                    v += 1;
                }
                // Traced and metered runs take the phase-stamped steal
                // so lock/entry time lands in the right buckets and the
                // latency histogram; plain runs keep the bare protocol
                // with counter-only accounting.
                // SAFETY: [I7] as above.
                let clk = unsafe { (*w).trace.clock().or_else(|| (*w).metrics.clock()) };
                match clk {
                    Some(clk) => {
                        let (got, ph) = shared.deques[v].steal_phased(|| clk.now_cycles());
                        // SAFETY: [I7] as above.
                        unsafe {
                            (*w).trace.on_steal_attempt(v, got, &ph);
                            (*w).metrics.on_steal_phased(v, got.is_some(), &ph);
                        }
                        got
                    }
                    None => {
                        let got = shared.deques[v].steal();
                        // SAFETY: [I7] as above.
                        unsafe {
                            (*w).metrics.on_steal_untimed(got.is_some());
                        }
                        got
                    }
                }
            });
        match target {
            Some(ctx) => {
                idle_spins = 0;
                if parked {
                    parked = false;
                    // SAFETY: [I7] as above.
                    unsafe {
                        (*w).trace.on_unpark();
                        (*w).metrics.on_unpark();
                    }
                }
                run_ctx(ctx as *mut Context);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins > 64 {
                    if !parked {
                        parked = true;
                        // SAFETY: [I7] as above.
                        unsafe {
                            (*w).trace.on_park();
                            (*w).metrics.on_park();
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_micros(20));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    // Deposit this worker's timeline (no-op when untraced).
    // SAFETY: [I7] as above.
    unsafe {
        (*w).trace.finish();
    }
    CURRENT.with(|c| c.set(std::ptr::null_mut()));
}

/// Run a ready continuation, saving the scheduler's own context so tasks
/// can bail back to this loop.
fn run_ctx(target: *mut Context) {
    // SAFETY: [I5] run_tramp diverges into `target`; the saved scheduler
    // context is resumed exactly once (by whichever task runs out of
    // local work on this worker).
    unsafe {
        save_context_and_call(std::ptr::null_mut(), run_tramp, target as *mut c_void);
    }
    collect_retired();
}

unsafe extern "C" fn run_tramp(sched_ctx: *mut Context, arg: *mut c_void) {
    let w = current();
    // SAFETY: [I7] exclusive worker access; borrow scoped.
    unsafe {
        (&mut *w).sched_ctx = sched_ctx;
    }
    // SAFETY: [I5] arg is a live continuation handed to us by the deque.
    unsafe { resume_context(arg as *mut Context) }
}

/// Start a brand-new thread (no saved context yet) from the scheduler.
fn run_fresh(payload: Box<Payload>) {
    // SAFETY: [I5] fresh_tramp diverges into the task; scheduler context saved
    // as in run_ctx.
    unsafe {
        save_context_and_call(
            std::ptr::null_mut(),
            fresh_tramp,
            Box::into_raw(payload) as *mut c_void,
        );
    }
    collect_retired();
}

unsafe extern "C" fn fresh_tramp(sched_ctx: *mut Context, arg: *mut c_void) {
    let w = current();
    // SAFETY: [I7][I8] exclusive worker access; stack/top live in the payload.
    let top = unsafe {
        (&mut *w).sched_ctx = sched_ctx;
        let payload = &*(arg as *mut Payload);
        payload.stack.as_ref().expect("stack present").top()
    };
    // SAFETY: [I6][I9] fresh stack, child_main diverges.
    unsafe { switch_stack_and_call(top, child_main, arg) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only() {
        let rt = Runtime::new(1);
        let out = rt.run(|| 40 + 2);
        assert_eq!(out, 42);
    }

    #[test]
    fn spawn_join_single_worker() {
        let rt = Runtime::new(1);
        let out = rt.run(|| {
            let a = spawn(|| 10);
            let b = spawn(|| 20);
            a.join() + b.join() + 12
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_fib_single_worker() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let a = spawn(move || fib(n - 1));
            let b = fib(n - 2);
            a.join() + b
        }
        let rt = Runtime::new(1);
        assert_eq!(rt.run(|| fib(15)), 610);
    }

    #[test]
    fn fib_multi_worker() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let a = spawn(move || fib(n - 1));
            let b = fib(n - 2);
            a.join() + b
        }
        let rt = Runtime::new(3);
        assert_eq!(rt.run(|| fib(18)), 2584);
    }

    #[test]
    fn stealing_actually_happens() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: Arc<StdMutex<HashSet<std::thread::ThreadId>>> =
            Arc::new(StdMutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        let rt = Runtime::new(4);
        rt.run(move || {
            fn tree(d: u32, seen: &Arc<StdMutex<HashSet<std::thread::ThreadId>>>) {
                seen.lock().unwrap().insert(std::thread::current().id());
                if d == 0 {
                    // Enough work that thieves get a window. The yield
                    // matters on single-CPU hosts, where a thief can
                    // only run if the OS preempts or is handed the CPU.
                    let mut x = 0u64;
                    for i in 0..20_000u64 {
                        x = x.wrapping_add(std::hint::black_box(i));
                    }
                    std::hint::black_box(x);
                    std::thread::yield_now();
                    return;
                }
                let s1 = seen.clone();
                let a = spawn(move || tree(d - 1, &s1));
                tree(d - 1, seen);
                a.join();
            }
            tree(7, &seen2);
        });
        let n = seen.lock().unwrap().len();
        assert!(n >= 2, "work never spread beyond one worker (saw {n})");
    }

    #[test]
    fn join_returns_moved_values() {
        let rt = Runtime::new(2);
        let out = rt.run(|| {
            let h = spawn(|| vec![1u32, 2, 3]);
            let mut v = h.join();
            v.push(4);
            v
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn many_sequential_spawns_recycle_stacks() {
        let rt = Runtime::new(1);
        let out = rt.run(|| {
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc += spawn(move || i).join();
            }
            acc
        });
        assert_eq!(out, 1999 * 2000 / 2);
    }

    #[test]
    fn deep_spawn_chain() {
        // Each level spawns one child and joins it: exercises suspended
        // joins stacking up on the wait path.
        fn chain(d: u64) -> u64 {
            if d == 0 {
                return 0;
            }
            spawn(move || chain(d - 1)).join() + 1
        }
        let rt = Runtime::new(2);
        assert_eq!(rt.run(|| chain(500)), 500);
    }
}
