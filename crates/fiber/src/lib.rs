//! Native lightweight threads on x86-64 — the "real" half of the
//! reproduction.
//!
//! The distributed experiments run in simulation (`uat-cluster`), but the
//! paper's Table 2 — task creation overhead in cycles — is a single-node
//! microbenchmark, and this crate measures it for real:
//!
//! - [`ctx`]: a faithful port of the paper's Appendix A
//!   `save_context_and_call` / `resume_context` x86-64 assembly.
//! - [`stack`]: `mmap`-backed task stacks with guard pages, pooled.
//! - [`creation`]: the three creation strategies Table 2 compares —
//!   `uniaddr` (Figure 4: save context, push queue entry, run the child
//!   on the same linear stack, pop), `stack_pool` (MassiveThreads-like:
//!   child on a fresh pooled stack via a full context switch), and
//!   `seq_call` (Cilk-like fast clone: push, plain call, pop) — each
//!   timed with `rdtsc`.
//! - [`runtime`]: a multi-worker work-stealing executor (stack-pool
//!   strategy + the THE deque from `uat-deque`), demonstrating genuine
//!   steal-a-started-thread semantics in the shared-memory degenerate
//!   case the paper notes in Section 2 ("migrating a task ... can be
//!   done simply by passing the address of the stack").
//! - [`interp`]: the native backend of the backend-neutral task model —
//!   an interpreter that runs any `uat-model` `Workload` (`Work` /
//!   `Spawn` / `JoinAll` programs) on real fibers with real frame
//!   reservation, reporting the same unit accounting as the simulator.
//! - [`ntrace`]: native observability — per-worker TSC-stamped event
//!   rings, `TimeAccount` buckets, and steal-phase spans feeding the
//!   same `uat-trace` exporters and profiler the simulator uses
//!   (zero-cost stubs when the `trace` feature is off).
//! - [`nmetrics`]: online metrics and runtime health — sharded
//!   scheduler counters, HDR tail-latency histograms, per-worker
//!   flight-recorder rings, a deque-depth sampler thread, and the
//!   heartbeat stall watchdog (stubs when the `metrics` feature is
//!   off).
//! - [`ipc`]: the faithful **cross-address-space** demonstration —
//!   process-per-core via `fork`, the uni-address region at the same
//!   fixed virtual address in each process, shared-memory task-queue
//!   words, a one-sided `process_vm_readv` stack transfer, and
//!   `resume_context` of a started thread on the other process.
//! - [`mpruntime`]: the demonstration promoted to a full third backend —
//!   a process-per-worker driver ([`MultiProcessRunner`]) that maps
//!   deques, fiber stacks, join blocks, and the metrics segment into one
//!   `memfd` region at the same fixed address everywhere, so a
//!   cross-process steal is deque atomics plus `resume_context` and the
//!   parent exports per-worker metrics through `uat-rdma` fabric reads.
//!
//! # Safety
//!
//! This crate is the workspace's designated home for `unsafe` (plus
//! `uat-rdma`'s single registration boundary, which is
//! `#![deny(unsafe_code)]` with one documented allow); everything else
//! in the workspace is `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg(target_arch = "x86_64")]

pub mod creation;
pub mod ctx;
pub mod interp;
pub mod ipc;
pub mod mpruntime;
pub mod nmetrics;
pub mod ntrace;
pub mod runtime;
pub mod stack;
pub mod tsc;

pub use creation::{measure_creation, CreationStrategy};
pub use interp::{NativeRunStats, NativeRunner};
pub use ipc::{
    probe_fixed_noreplace, probe_process_vm_readv, steal_between_processes, steal_with_retries,
};
pub use mpruntime::{set_bootstrap_alloc_probe, MpReport, MultiProcessRunner};
#[cfg(feature = "metrics")]
pub use nmetrics::{StallDump, WatchdogAction, WatchdogCfg, WatchdogReport};
#[cfg(feature = "trace")]
pub use ntrace::{NativeTrace, DEFAULT_RING_CAPACITY};
pub use runtime::{current_worker_id, spawn, JoinHandle, Runtime, SchedStats};
pub use stack::{Stack, StackPool};
pub use tsc::{ClockSource, RunClock};
