//! The real thing: uni-address thread migration **across address
//! spaces**, process-per-core, on one machine.
//!
//! Everything else in this crate shares one address space; this module
//! demonstrates the paper's actual mechanism natively:
//!
//! - every worker is a **process** (fork), so each has its own address
//!   space with *the* uni-address region mapped at the same virtual
//!   address (mapped `MAP_FIXED_NOREPLACE` before the fork);
//! - the task queue lives in **shared memory** (`memfd_create` +
//!   `MAP_SHARED`), manipulated with process-shared atomics — the role
//!   the RDMA-accessible queue plays on FX10;
//! - a steal transfers the victim's live stack frames with
//!   **`process_vm_readv`** — a genuinely one-sided read (the kernel
//!   copies; the victim's code never participates), standing in for
//!   RDMA READ;
//! - the thief then `resume_context`s the stolen thread at its original
//!   virtual address, and the thread's **intra-stack pointers are still
//!   valid** — the property the whole paper is built on, asserted here
//!   with a live pointer into the migrated frames.
//!
//! The demonstration is a single parent/child steal rather than a full
//! multi-process runtime (spawn-rate benchmarking lives in
//! [`creation`](crate::creation); at-scale behaviour in `uat-cluster`),
//! but every step is the protocol's: publish continuation → lock → take
//! entry → transfer frames → resume.
//!
//! # Safety constraints honoured here
//!
//! The child executes **no heap allocation and takes no locks** after
//! `fork` (the test harness is multithreaded; another thread could hold
//! the allocator lock at fork time). It runs on the pre-mapped
//! uni-address region, touches only shared-memory atomics, and leaves
//! via `_exit`.

use crate::ctx::{resume_context, save_context_and_call, switch_stack_and_call, Context};
use std::ffi::c_void;
use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual address of the uni-address region (same in every process).
pub const UNI_BASE: usize = 0x7f50_0000_0000;
/// Size of the uni-address region.
pub const UNI_SIZE: usize = 1 << 20;

/// Entry state machine in the shared queue slot (EMPTY is the zeroed
/// initial state of the mapping, so it needs no named constant writes).
const READY: u64 = 1;
const TAKEN_LOCAL: u64 = 2;
const STOLEN: u64 = 3;

/// The shared control block (lives in the `memfd` mapping; all fields
/// are process-shared atomics).
#[repr(C)]
struct Shared {
    /// Entry state: 0 (empty) → READY → (TAKEN_LOCAL | STOLEN).
    state: AtomicU64,
    /// Published continuation: lowest frame address (== ctx).
    frame_base: AtomicU64,
    /// Published continuation: bytes of live frames above `frame_base`.
    frame_size: AtomicU64,
    /// Set by the migrated thread after it resumes on the thief.
    result: AtomicU64,
    /// Victim child liveness handshake.
    child_up: AtomicU64,
    /// Thief tells the victim it may exit.
    done: AtomicU64,
}

/// Where `finish_thread` returns control in *this* process (the
/// scheduler context of whichever process is running the thread).
static RETURN_CTX: AtomicU64 = AtomicU64::new(0);

struct VictimArgs {
    shared: *const Shared,
}

/// Outcome of [`steal_between_processes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpcStealOutcome {
    /// Value computed by the thread *after* migrating: derived from
    /// stack locals (including a pointer into its own frames) written
    /// before migration on the victim.
    pub result: u64,
    /// Bytes of stack transferred.
    pub frames_bytes: u64,
    /// Wall time of the one-sided stack transfer (`process_vm_readv`).
    pub transfer: std::time::Duration,
    /// Wall time from locking the entry to the migrated thread's first
    /// instruction after resume (the native steal critical path).
    pub steal_to_resume: std::time::Duration,
}

/// The expected `result` for the demonstration's computation.
pub fn expected_result() -> u64 {
    // sum of i*i for i in 0..64, plus the sentinel the child adds.
    (0..64u64).map(|i| i * i).sum::<u64>() + 0xC0FFEE
}

// ----------------------------------------------------------------------
// The thread that migrates.
// ----------------------------------------------------------------------

/// Runs on the victim's uni-address region. Builds stack state (an
/// array + a pointer to it), publishes its continuation, and — once
/// resumed, *in whichever process* — computes from that stack state.
unsafe extern "C" fn migrating_thread(arg: *mut c_void) -> ! {
    // SAFETY: [I8] arg is the VictimArgs the victim entry passed through
    // switch_stack_and_call; the Shared block it points to is the
    // process-shared mapping, live for the whole run.
    let shared = unsafe { &*((*(arg as *mut VictimArgs)).shared) };

    // Stack state the continuation will read after migration. The
    // pointer `view` is an intra-stack pointer: it must remain valid on
    // the thief because the frames keep their virtual addresses.
    let mut data = [0u64; 64];
    for (i, d) in data.iter_mut().enumerate() {
        *d = (i * i) as u64;
    }
    let view: &[u64; 64] = &data;

    // "spawn": save the continuation and run the child part, which
    // publishes the parent for stealing (Figure 4's do_create_thread).
    // SAFETY: [I5] we are on the uni-address region's stack; the callee
    // either returns normally (not stolen) or never returns here.
    unsafe {
        save_context_and_call(
            std::ptr::null_mut(),
            publish_and_run_child,
            shared as *const Shared as *mut c_void,
        );
    }

    // ===== resumed here — possibly in a different process =====
    let sum: u64 = view.iter().sum::<u64>() + 0xC0FFEE;
    shared.result.store(sum, Ordering::Release);

    // Hand control back to this process's scheduler context.
    let ret = RETURN_CTX.load(Ordering::Acquire) as *mut Context;
    // SAFETY: [I5] RETURN_CTX was stored by whichever scheduler context
    // (victim_entry or thief_tramp) resumed us, and that context's stack
    // frame is still live — it is blocked inside save_context_and_call.
    unsafe { resume_context(ret) }
}

unsafe extern "C" fn publish_and_run_child(ctx: *mut Context, arg: *mut c_void) {
    // SAFETY: [I8] arg is the Shared pointer migrating_thread passed in; the
    // shared mapping outlives both processes' use of it.
    let shared = unsafe { &*(arg as *const Shared) };
    // Publish: frames = [ctx, top of region).
    let top = UNI_BASE + UNI_SIZE;
    shared.frame_base.store(ctx as u64, Ordering::Relaxed);
    shared
        .frame_size
        .store((top - ctx as usize) as u64, Ordering::Relaxed);
    shared.state.store(READY, Ordering::Release);

    // The "child task": busy work long enough for the thief to act.
    let mut x = 0u64;
    while shared.state.load(Ordering::Acquire) == READY {
        x = x.wrapping_add(1);
        std::hint::spin_loop();
        if x > 2_000_000_000 {
            // The thief never came; take the entry back ourselves.
            if shared
                .state
                .compare_exchange(READY, TAKEN_LOCAL, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
    }

    match shared.state.load(Ordering::Acquire) {
        TAKEN_LOCAL => {
            // Not stolen: return normally; the epilogue resumes the
            // parent right here in this process.
        }
        STOLEN => {
            // The parent now lives in the thief's address space. This
            // lineage is finished here; wait for permission and leave
            // without touching the (dead) frames above.
            while shared.done.load(Ordering::Acquire) == 0 {
                std::hint::spin_loop();
            }
            // SAFETY: [I10] _exit is async-signal-safe; it skips atexit
            // handlers and destructors, which is exactly what a
            // post-fork child that must not touch the allocator wants.
            unsafe { libc::_exit(0) }
        }
        s => unreachable!("bad entry state {s}"),
    }
}

// ----------------------------------------------------------------------
// Host-side plumbing.
// ----------------------------------------------------------------------

fn map_shared() -> *const Shared {
    // SAFETY: [I10] fresh memfd + MAP_SHARED mapping, checked below.
    unsafe {
        let fd = libc::syscall(libc::SYS_memfd_create, c"uat-ipc".as_ptr(), 0u32) as i32;
        assert!(fd >= 0, "memfd_create failed");
        assert_eq!(libc::ftruncate(fd, 4096), 0);
        let p = libc::mmap(
            std::ptr::null_mut(),
            4096,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED,
            fd,
            0,
        );
        assert!(p != libc::MAP_FAILED, "mmap(shared) failed");
        libc::close(fd);
        p as *const Shared
    }
}

fn map_uni_region() {
    // The region is never unmapped (it is the process's uni-address
    // range); map it once so retries and repeated calls are idempotent.
    // Mapped-flag semantics: only set *after* the mmap succeeds — a
    // swap-before-map latch would record a failed first attempt as
    // success and later callers would fault on an unmapped UNI_BASE.
    // A failed attempt instead poisons the mutex, so later callers
    // panic with a report rather than touching the region.
    static UNI_MAPPED: std::sync::Mutex<bool> = std::sync::Mutex::new(false);
    let mut mapped = UNI_MAPPED.lock().unwrap();
    if *mapped {
        return;
    }
    // SAFETY: [I10] fixed mapping at an address chosen to be free; NOREPLACE
    // makes a collision an error instead of a clobber.
    unsafe {
        let p = libc::mmap(
            UNI_BASE as *mut c_void,
            UNI_SIZE,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED_NOREPLACE,
            -1,
            0,
        );
        assert_eq!(
            p as usize, UNI_BASE,
            "could not map the uni-address region at its fixed address"
        );
    }
    *mapped = true;
}

/// Can this kernel/sandbox do a one-sided `process_vm_readv`? Probed by
/// reading this process's own memory (always permitted when the syscall
/// exists and seccomp allows it). Returns the reason when it cannot, so
/// CI can print *why* the steal demonstration was skipped.
pub fn probe_process_vm_readv() -> Result<(), String> {
    let src: u64 = 0xABAD_1DEA;
    let mut dst: u64 = 0;
    // SAFETY: [I10] both iovecs cover live 8-byte locals of this frame;
    // the target pid is our own process.
    let copied = unsafe {
        let local = libc::iovec {
            iov_base: &mut dst as *mut u64 as *mut c_void,
            iov_len: 8,
        };
        let remote = libc::iovec {
            iov_base: &src as *const u64 as *mut c_void,
            iov_len: 8,
        };
        libc::process_vm_readv(std::process::id() as libc::pid_t, &local, 1, &remote, 1, 0)
    };
    if copied != 8 || dst != src {
        return Err(format!(
            "process_vm_readv unavailable (seccomp/YAMA or pre-3.2 kernel): {}",
            std::io::Error::last_os_error()
        ));
    }
    Ok(())
}

/// Does this kernel honour `MAP_FIXED_NOREPLACE` (Linux ≥ 4.17)? Older
/// kernels silently *ignore* unknown mmap flags, which would turn the
/// collision check into a clobber — probed by mapping a page and then
/// asking for the same address with NOREPLACE, which must fail.
pub fn probe_fixed_noreplace() -> Result<(), String> {
    // SAFETY: [I10] a scratch anonymous page, remapped at its own
    // address with NOREPLACE (must fail), then unmapped; every result
    // is checked.
    unsafe {
        let p = libc::mmap(
            std::ptr::null_mut(),
            4096,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
            -1,
            0,
        );
        if p == libc::MAP_FAILED {
            return Err("mmap(anonymous probe page) failed".into());
        }
        let q = libc::mmap(
            p,
            4096,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED_NOREPLACE,
            -1,
            0,
        );
        if q != libc::MAP_FAILED {
            // The kernel ignored NOREPLACE and clobbered (or moved) —
            // fixed-address mapping cannot be done safely here.
            libc::munmap(q, 4096);
            if q != p {
                libc::munmap(p, 4096);
            }
            return Err("kernel ignores MAP_FIXED_NOREPLACE (pre-4.17)".into());
        }
        libc::munmap(p, 4096);
    }
    Ok(())
}

/// [`steal_between_processes`] with retries on its one benign race: the
/// victim reclaiming the entry just before the thief's CAS (the THE
/// abort path). Hard errors (missing kernel support) are returned
/// immediately — retrying cannot fix those.
pub fn steal_with_retries(attempts: usize) -> Result<IpcStealOutcome, String> {
    let mut last = String::new();
    for _ in 0..attempts.max(1) {
        match steal_between_processes() {
            Ok(out) => return Ok(out),
            Err(e) if e.contains("reclaimed") => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(format!("all {attempts} attempts raced: {last}"))
}

unsafe extern "C" fn thief_tramp(sched: *mut Context, arg: *mut c_void) {
    RETURN_CTX.store(sched as u64, Ordering::Release);
    // SAFETY: [I5] arg is the stolen thread's context, freshly installed at
    // its original address.
    unsafe { resume_context(arg as *mut Context) }
}

unsafe extern "C" fn victim_entry(sched: *mut Context, arg: *mut c_void) {
    RETURN_CTX.store(sched as u64, Ordering::Release);
    let top = (UNI_BASE + UNI_SIZE) as *mut u8;
    // SAFETY: [I6][I9] the uni region is mapped; migrating_thread diverges.
    unsafe { switch_stack_and_call(top, migrating_thread, arg) }
}

/// Fork a victim process, let it start a thread on its uni-address
/// region, then steal that thread mid-execution: lock the shared queue
/// slot, `process_vm_readv` its frames into *this* process's region at
/// the same addresses, and resume it here. Returns the value the
/// migrated thread computed from its (pointer-bearing) stack state.
///
/// # Errors
/// Returns `Err` if `process_vm_readv` is not permitted (some seccomp /
/// YAMA configurations); callers should treat that as "skip".
pub fn steal_between_processes() -> Result<IpcStealOutcome, String> {
    // One steal demonstration at a time per OS process: the uni-address
    // region and RETURN_CTX are process-global.
    static IPC_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = IPC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    map_uni_region();
    let shared_ptr = map_shared();
    // SAFETY: [I8][I10] the mapping is zeroed; Shared is all atomics (valid at 0).
    let shared = unsafe { &*shared_ptr };

    // SAFETY: [I10] fork; the child touches no allocator/locks (see module
    // docs) and exits via _exit.
    let child = unsafe { libc::fork() };
    assert!(child >= 0, "fork failed");
    if child == 0 {
        // ----- victim process -----
        shared.child_up.store(1, Ordering::Release);
        let mut args = VictimArgs { shared: shared_ptr };
        // SAFETY: [I5] victim_entry diverges into the migrating thread.
        unsafe {
            save_context_and_call(
                std::ptr::null_mut(),
                victim_entry,
                &mut args as *mut VictimArgs as *mut c_void,
            );
        }
        // Reached only on the TAKEN_LOCAL (never-stolen) path, where the
        // thread finishes in-process and resumes our scheduler context.
        // SAFETY: [I10] _exit is async-signal-safe and touches no allocator
        // state — required in a post-fork child of a threaded process.
        unsafe { libc::_exit(0) }
    }

    // ----- thief process (this one) -----
    while shared.child_up.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    // Phase 1+2: wait for a stealable entry and lock it by CAS (the
    // shared-memory stand-in for the FAA lock + entry read).
    loop {
        match shared
            .state
            .compare_exchange(READY, STOLEN, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => break,
            Err(TAKEN_LOCAL) => {
                return Err("victim reclaimed the entry before we could steal".into())
            }
            Err(_) => std::hint::spin_loop(),
        }
    }
    let t_lock = std::time::Instant::now();
    let frame_base = shared.frame_base.load(Ordering::Relaxed) as usize;
    let frame_size = shared.frame_size.load(Ordering::Relaxed) as usize;
    assert!(frame_base >= UNI_BASE && frame_base + frame_size <= UNI_BASE + UNI_SIZE);

    // Phase 3: one-sided stack transfer into the same virtual address.
    let t_xfer = std::time::Instant::now();
    // SAFETY: [I10] both iovecs cover mapped memory — [frame_base,
    // frame_base+frame_size) is inside the uni region in both address
    // spaces (asserted above) — and the victim's code is not involved
    // (the kernel performs the copy).
    let copied = unsafe {
        let local = libc::iovec {
            iov_base: frame_base as *mut c_void,
            iov_len: frame_size,
        };
        let remote = libc::iovec {
            iov_base: frame_base as *mut c_void,
            iov_len: frame_size,
        };
        libc::process_vm_readv(child, &local, 1, &remote, 1, 0)
    };
    if copied < 0 {
        let err = std::io::Error::last_os_error();
        // Let the victim exit, reap it, and report.
        shared.done.store(1, Ordering::Release);
        // SAFETY: [I10] reaping our own child; a null status pointer is
        // explicitly allowed by waitpid.
        unsafe { libc::waitpid(child, std::ptr::null_mut(), 0) };
        return Err(format!("process_vm_readv not permitted here: {err}"));
    }
    let transfer = t_xfer.elapsed();
    assert_eq!(copied as usize, frame_size, "short stack transfer");

    // Phase 4: resume the stolen thread at its original address.
    // SAFETY: [I5] the frames (including the Context record at frame_base)
    // are installed; thief_tramp stores our return context first.
    unsafe {
        save_context_and_call(std::ptr::null_mut(), thief_tramp, frame_base as *mut c_void);
    }
    let steal_to_resume = t_lock.elapsed();
    // The migrated thread ran to completion here and resumed us.
    let result = shared.result.load(Ordering::Acquire);

    shared.done.store(1, Ordering::Release);
    let mut status = 0;
    // SAFETY: [I10] reaping our own child.
    unsafe { libc::waitpid(child, &mut status, 0) };

    Ok(IpcStealOutcome {
        result,
        frames_bytes: frame_size as u64,
        transfer,
        steal_to_resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the paper, natively: a thread started in one
    /// address space continues in another, at the same virtual
    /// addresses, with its intra-stack pointers intact.
    ///
    /// Skips (with the probe's reason) only when the kernel genuinely
    /// cannot run it; when the probes pass, a failure here is a real
    /// failure — CI runs this assertion, not a silent skip.
    #[test]
    fn migrate_a_started_thread_across_address_spaces() {
        if let Err(e) = probe_process_vm_readv() {
            eprintln!("skipping ipc steal test: {e}");
            return;
        }
        if let Err(e) = probe_fixed_noreplace() {
            eprintln!("skipping ipc steal test: {e}");
            return;
        }
        let out = steal_with_retries(5)
            .expect("kernel probes passed; the cross-process steal must succeed");
        assert_eq!(out.result, expected_result());
        assert!(out.frames_bytes > 0 && out.frames_bytes < UNI_SIZE as u64);
    }

    #[test]
    fn probes_report_reasons_not_panics() {
        // Whatever this host supports, the probes must return (not
        // crash) and carry a human-readable reason on Err.
        if let Err(e) = probe_process_vm_readv() {
            assert!(!e.is_empty());
        }
        if let Err(e) = probe_fixed_noreplace() {
            assert!(!e.is_empty());
        }
    }
}
