//! Native-runtime metrics: the `uat-metrics` layers wired into real
//! fibers, plus the stall watchdog.
//!
//! Mirrors [`crate::ntrace`]'s shape: each worker OS thread owns a
//! [`WorkerMetrics`] handle whose hot-path hooks are relaxed adds on
//! per-worker [`uat_metrics::Counter`] shards; the run-wide
//! [`MetricsShared`] holds the [`uat_metrics::Registry`], the
//! tail-latency histograms, and one [`uat_metrics::EventRing`]
//! flight-recorder ring per worker.
//!
//! Instrumentation comes in two tiers:
//!
//! - **Counters** (steals, parks, tasks, heartbeats) are always live:
//!   a relaxed load + store on a cache line no other core writes.
//! - **Timed** instrumentation — TSC-stamped steal latency, task run
//!   length, park duration, and the flight ring — activates only on
//!   *metered* runs ([`crate::Runtime::with_metrics`] /
//!   [`crate::Runtime::run_metered`] / a sampler or watchdog). Traced
//!   runs also feed the steal-latency histogram, because the deque's
//!   phased steal already produced the timestamps.
//!
//! The **watchdog** rides the sampler thread: every worker bumps its
//! heartbeat shard once per scheduler-loop iteration (parked workers
//! still iterate every sleep cycle, so a live worker's epoch always
//! advances between samples). If one worker's epoch freezes for the
//! whole stall window while other workers keep advancing, the watchdog
//! dumps a metrics snapshot plus every worker's flight ring and — by
//! default — aborts the process. This targets precisely the
//! `fib_across_worker_counts` flake precursor: a worker wedged on a
//! resumed-into-garbage context stops heartbeating long before the
//! segfault, and the dump says who and what it was last doing.
//!
//! With the `metrics` cargo feature off, everything here compiles to
//! plain-atomic stand-ins that keep [`crate::SchedStats`] working and
//! cost the hook sites nothing else.

#[cfg(feature = "metrics")]
mod real {
    use crate::tsc::RunClock;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    use uat_base::json::{Json, ToJson};
    use uat_deque::{NativeDeque, StealPhases};
    use uat_metrics::{names, Counter, EventRing, Gauge, LogHistogram, Registry, Snapshot};

    /// Per-worker flight-ring capacity (entries; 16 bytes each).
    pub const FLIGHT_CAPACITY: usize = 4096;

    /// Default sampler tick when a sampler or watchdog is enabled
    /// without an explicit interval.
    pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(10);

    /// Default stall window before the watchdog trips. Generous enough
    /// that an oversubscribed single-CPU CI host never false-positives:
    /// a live worker bumps its heartbeat every scheduler iteration
    /// (parked ones every ~20µs sleep cycle), so a full second of
    /// silence while siblings advance means genuinely wedged.
    pub const DEFAULT_STALL_AFTER: Duration = Duration::from_secs(1);

    /// Flight-ring event codes (the ring stores `u8`).
    pub mod flight_code {
        /// A task began running.
        pub const TASK_BEGIN: u8 = 1;
        /// A task ran to completion.
        pub const TASK_END: u8 = 2;
        /// A steal attempt completed (payload: victim).
        pub const STEAL_OK: u8 = 3;
        /// A steal attempt aborted (payload: victim).
        pub const STEAL_FAIL: u8 = 4;
        /// The worker crossed the spin threshold and went to sleep.
        pub const PARK: u8 = 5;
        /// The worker woke from a park and found work.
        pub const UNPARK: u8 = 6;

        /// Display name for a code (unknown codes included, so a torn
        /// racy read still renders).
        pub fn name(code: u8) -> &'static str {
            match code {
                TASK_BEGIN => "task-begin",
                TASK_END => "task-end",
                STEAL_OK => "steal-ok",
                STEAL_FAIL => "steal-fail",
                PARK => "park",
                UNPARK => "unpark",
                _ => "?",
            }
        }
    }

    /// Run-wide metrics state shared by all workers of one run.
    pub struct MetricsShared {
        /// The registry every instrument below is registered in
        /// (caller-supplied via `Runtime::with_metrics`, else owned).
        pub registry: Arc<Registry>,
        /// Scheduler-loop heartbeat epochs (the watchdog's pulse).
        pub heartbeats: Arc<Counter>,
        /// Completed steals.
        pub steals_ok: Arc<Counter>,
        /// Aborted steal attempts.
        pub steals_failed: Arc<Counter>,
        /// Park episodes entered.
        pub parks: Arc<Counter>,
        /// Park episodes that ended in found work.
        pub unparks: Arc<Counter>,
        /// Tasks run to completion.
        pub tasks: Arc<Counter>,
        /// Trace events evicted from full rings (filled at run end).
        pub trace_dropped: Arc<Counter>,
        /// End-to-end steal-attempt latency (cycles).
        pub steal_latency: Arc<LogHistogram>,
        /// Task run length (cycles).
        pub task_run: Arc<LogHistogram>,
        /// Park episode duration (cycles).
        pub park_duration: Arc<LogHistogram>,
        /// Sampled deque depths.
        pub deque_depth: Arc<LogHistogram>,
        /// Last sampled deque depth per worker.
        pub deque_depth_now: Arc<Gauge>,
        /// Per-worker flight-recorder rings.
        pub flight: Vec<Arc<EventRing>>,
        /// The run's metrics clock (its own epoch; latencies are
        /// differences, so it never needs to agree with the trace
        /// clock's).
        pub clock: RunClock,
        metered: bool,
        sabotage: Option<usize>,
    }

    impl MetricsShared {
        /// Metrics state for `workers` workers. `registry` supplies an
        /// external registry (must be built for at least `workers`
        /// shards); `metered` turns on the timed tier; `sabotage`
        /// deliberately wedges one worker (watchdog tests only).
        pub fn new(
            workers: usize,
            registry: Option<Arc<Registry>>,
            metered: bool,
            sabotage: Option<usize>,
        ) -> Self {
            let registry = registry.unwrap_or_else(|| Arc::new(Registry::new(workers)));
            assert!(
                registry.workers() >= workers,
                "metrics registry built for {} shards but the runtime has {workers} workers",
                registry.workers(),
            );
            MetricsShared {
                heartbeats: registry.counter(
                    names::HEARTBEATS,
                    "Scheduler loop iterations (watchdog heartbeat epochs)",
                ),
                steals_ok: registry.counter(
                    names::STEALS_COMPLETED,
                    "Steal attempts that took an entry and resumed the stolen thread",
                ),
                steals_failed: registry.counter(
                    names::STEALS_FAILED,
                    "Steal attempts that aborted (victim empty, lock busy, or raced)",
                ),
                parks: registry.counter(
                    names::PARKS,
                    "Workers that crossed the idle spin threshold into a sleep cycle",
                ),
                unparks: registry.counter(names::UNPARKS, "Parked workers that found work again"),
                tasks: registry.counter(names::TASKS, "Tasks run to completion"),
                trace_dropped: registry.counter(
                    names::TRACE_DROPPED,
                    "Trace events evicted from full per-worker rings",
                ),
                steal_latency: registry.histogram(
                    names::STEAL_LATENCY,
                    "End-to-end steal-attempt latency in TSC cycles",
                ),
                task_run: registry.histogram(
                    names::TASK_RUN,
                    "Task run length in TSC cycles, begin to completion",
                ),
                park_duration: registry
                    .histogram(names::PARK_DURATION, "Park episode duration in TSC cycles"),
                deque_depth: registry
                    .histogram(names::DEQUE_DEPTH, "Sampled deque depth distribution"),
                deque_depth_now: registry
                    .gauge(names::DEQUE_DEPTH_NOW, "Most recently sampled deque depth"),
                flight: (0..workers.max(1))
                    .map(|_| Arc::new(EventRing::new(FLIGHT_CAPACITY)))
                    .collect(),
                clock: RunClock::start(),
                registry,
                metered,
                sabotage,
            }
        }

        /// Whether the timed tier (histogram stamps, flight ring) is on.
        #[inline]
        pub fn metered(&self) -> bool {
            self.metered
        }

        /// Whether `worker` is the deliberately wedged one.
        #[inline]
        pub fn is_sabotaged(&self, worker: usize) -> bool {
            self.sabotage == Some(worker)
        }

        /// Completed steals across all workers.
        pub fn steals_total(&self) -> u64 {
            self.steals_ok.total()
        }

        /// Park episodes across all workers.
        pub fn parks_total(&self) -> u64 {
            self.parks.total()
        }

        /// Unparks across all workers.
        pub fn unparks_total(&self) -> u64 {
            self.unparks.total()
        }
    }

    struct Wm {
        id: usize,
        shared: Arc<MetricsShared>,
        /// Metrics-clock stamp of the open park episode (0 = none).
        park_started: u64,
    }

    impl Wm {
        /// Push a flight-ring event stamped `at`. The stamp is passed in
        /// so hooks that already read the metrics clock (task begin/end,
        /// park/unpark) reuse it instead of paying a second TSC read on
        /// the per-task hot path.
        #[inline]
        fn flight(&self, at: u64, code: u8, payload: u64) {
            self.shared.flight[self.id].push(at, code, payload);
        }
    }

    /// Per-worker metrics handle living inside the runtime's `Worker`.
    pub struct WorkerMetrics(Box<Wm>);

    impl WorkerMetrics {
        /// Handle for worker `id`.
        pub fn new(shared: &Arc<MetricsShared>, id: usize) -> Self {
            WorkerMetrics(Box::new(Wm {
                id,
                shared: Arc::clone(shared),
                park_started: 0,
            }))
        }

        /// One scheduler-loop iteration: bump the heartbeat epoch.
        #[inline]
        pub fn on_loop(&mut self) {
            let m = &*self.0;
            m.shared.heartbeats.inc(m.id);
        }

        /// The metrics clock, iff this run wants untraced steals to take
        /// the phase-stamped path (the trace clock wins when both are
        /// live — either epoch works, latency is a difference).
        #[inline]
        pub fn clock(&self) -> Option<RunClock> {
            let m = &*self.0;
            m.shared.metered.then_some(m.shared.clock)
        }

        /// A phase-stamped steal attempt finished: count the outcome and
        /// record the end-to-end latency (the timestamps are already
        /// paid for, so traced-but-unmetered runs feed the histogram
        /// too).
        #[inline]
        pub fn on_steal_phased(&mut self, victim: usize, ok: bool, ph: &StealPhases) {
            let m = &*self.0;
            if ok {
                m.shared.steals_ok.inc(m.id);
            } else {
                m.shared.steals_failed.inc(m.id);
            }
            m.shared
                .steal_latency
                .record(ph.end.saturating_sub(ph.start));
            if m.shared.metered {
                let code = if ok {
                    flight_code::STEAL_OK
                } else {
                    flight_code::STEAL_FAIL
                };
                // Steals are rare relative to tasks; a fresh clock read
                // keeps the ring stamp in the metrics-clock epoch (the
                // phase stamps may be the trace clock's).
                m.flight(m.shared.clock.now_cycles(), code, victim as u64);
            }
        }

        /// An unstamped steal attempt finished (untraced, unmetered
        /// run): count the outcome only.
        #[inline]
        pub fn on_steal_untimed(&mut self, ok: bool) {
            let m = &*self.0;
            if ok {
                m.shared.steals_ok.inc(m.id);
            } else {
                m.shared.steals_failed.inc(m.id);
            }
        }

        /// The worker crossed the spin threshold and is going to sleep.
        #[inline]
        pub fn on_park(&mut self) {
            let m = &mut *self.0;
            m.shared.parks.inc(m.id);
            if m.shared.metered {
                m.park_started = m.shared.clock.now_cycles();
                m.flight(m.park_started, flight_code::PARK, 0);
            }
        }

        /// The worker found work after having parked.
        #[inline]
        pub fn on_unpark(&mut self) {
            let m = &mut *self.0;
            m.shared.unparks.inc(m.id);
            if m.shared.metered {
                let now = m.shared.clock.now_cycles();
                m.shared
                    .park_duration
                    .record(now.saturating_sub(m.park_started));
                m.park_started = 0;
                m.flight(now, flight_code::UNPARK, 0);
            }
        }

        /// A fiber body is about to start. Returns the begin stamp the
        /// task-end hook wants (0 when unmetered); a `Copy` local, so it
        /// survives the task's stack migrating between workers.
        #[inline]
        pub fn on_task_begin(&mut self) -> u64 {
            let m = &*self.0;
            if !m.shared.metered {
                return 0;
            }
            let now = m.shared.clock.now_cycles();
            m.flight(now, flight_code::TASK_BEGIN, 0);
            now
        }

        /// A fiber body returned (possibly on a different worker than it
        /// began on): count the task, record its run length.
        #[inline]
        pub fn on_task_end(&mut self, born: u64) {
            let m = &*self.0;
            m.shared.tasks.inc(m.id);
            if m.shared.metered {
                let now = m.shared.clock.now_cycles();
                if born != 0 {
                    m.shared.task_run.record(now.saturating_sub(born));
                }
                m.flight(now, flight_code::TASK_END, 0);
            }
        }
    }

    /// What the watchdog does after dumping a stall.
    #[derive(Clone, Debug)]
    pub enum WatchdogAction {
        /// Fail loudly: abort the process after writing the dump. The
        /// production default — a wedged worker precedes memory-unsafe
        /// failure modes, and a post-mortem beats a later segfault.
        Abort,
        /// Record the dump in the report and let the run continue
        /// (tests; the watchdog disarms after the first trip).
        Report(Arc<WatchdogReport>),
    }

    /// Watchdog configuration for [`crate::Runtime::with_watchdog`].
    #[derive(Clone, Debug)]
    pub struct WatchdogCfg {
        /// How long one worker's heartbeat may freeze — while the other
        /// workers keep advancing — before the watchdog trips.
        pub stall_after: Duration,
        /// What to do on a trip.
        pub action: WatchdogAction,
    }

    impl Default for WatchdogCfg {
        fn default() -> Self {
            WatchdogCfg {
                stall_after: DEFAULT_STALL_AFTER,
                action: WatchdogAction::Abort,
            }
        }
    }

    /// Where [`WatchdogAction::Report`] deposits the trip, if any.
    #[derive(Debug, Default)]
    pub struct WatchdogReport {
        tripped: AtomicBool,
        dump: Mutex<Option<StallDump>>,
    }

    impl WatchdogReport {
        /// Whether the watchdog tripped.
        pub fn tripped(&self) -> bool {
            self.tripped.load(Ordering::Acquire)
        }

        /// Take the dump recorded by the trip.
        pub fn take(&self) -> Option<StallDump> {
            self.dump.lock().unwrap().take()
        }
    }

    /// Everything the watchdog knows at the moment of a trip.
    #[derive(Debug)]
    pub struct StallDump {
        /// The worker whose heartbeat froze.
        pub worker: usize,
        /// Heartbeat epochs per worker at trip time.
        pub heartbeats: Vec<u64>,
        /// Frozen view of the whole registry.
        pub snapshot: Snapshot,
        /// Per-worker flight rings, oldest event first.
        pub flight: Vec<Vec<uat_metrics::FlightEvent>>,
    }

    impl StallDump {
        /// The dump as one JSON document (what the watchdog writes to
        /// disk and what `--metrics-json`-style tooling can re-read).
        pub fn to_json(&self) -> Json {
            let flight: Vec<Json> = self
                .flight
                .iter()
                .map(|ring| {
                    Json::Arr(
                        ring.iter()
                            .map(|ev| {
                                Json::obj([
                                    ("at", Json::UInt(ev.at)),
                                    ("event", Json::str(flight_code::name(ev.code))),
                                    ("payload", Json::UInt(ev.payload)),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect();
            Json::obj([
                ("stalled_worker", Json::UInt(self.worker as u64)),
                (
                    "heartbeats",
                    Json::Arr(self.heartbeats.iter().map(|&h| Json::UInt(h)).collect()),
                ),
                ("metrics", self.snapshot.to_json()),
                ("flight", Json::Arr(flight)),
            ])
        }
    }

    /// The sampler thread body: every `interval`, sample each worker's
    /// deque depth into the gauge + histogram and — when `watchdog` is
    /// set — check the heartbeat epochs for a stalled worker. Returns
    /// when `stop` is raised (the runtime raises it *before* the
    /// shutdown flag, so workers never stop heartbeating while the
    /// watchdog is still armed).
    pub fn sampler_loop(
        ms: &Arc<MetricsShared>,
        deques: &[Arc<NativeDeque<u64>>],
        stop: &AtomicBool,
        interval: Duration,
        watchdog: Option<&WatchdogCfg>,
    ) {
        let workers = deques.len();
        let interval = interval.max(Duration::from_micros(100));
        let ticks_needed = watchdog
            .map(|wd| wd.stall_after.div_duration_f64(interval).ceil() as u32)
            .unwrap_or(u32::MAX)
            .max(2);
        let mut prev = vec![0u64; workers];
        let mut stalled = vec![0u32; workers];
        let mut others = vec![0u32; workers];
        let mut armed = watchdog.is_some();
        loop {
            // Sleep in bounded chunks so a raised stop flag is honored
            // within ~10ms even under second-scale intervals. The chunk
            // is deliberately no smaller: on a single-CPU host every
            // sampler wake preempts a worker, so wake frequency — not
            // the sampling work — dominates the sampler's overhead.
            let mut slept = Duration::ZERO;
            while slept < interval {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let chunk = (interval - slept).min(Duration::from_millis(10));
                std::thread::sleep(chunk);
                slept += chunk;
            }
            if stop.load(Ordering::Acquire) {
                return;
            }
            for (i, d) in deques.iter().enumerate() {
                let depth = d.len();
                ms.deque_depth_now.set(i, depth);
                ms.deque_depth.record(depth);
            }
            let Some(wd) = watchdog else { continue };
            let epochs = ms.heartbeats.per_worker();
            if armed {
                let advanced: Vec<bool> = epochs.iter().zip(&prev).map(|(a, b)| a != b).collect();
                for i in 0..workers {
                    if advanced[i] {
                        stalled[i] = 0;
                        others[i] = 0;
                        continue;
                    }
                    stalled[i] += 1;
                    if advanced.iter().enumerate().any(|(j, &a)| j != i && a) {
                        others[i] += 1;
                    }
                    // Trip: `i` silent for the whole window, every one of
                    // those ticks saw some *other* worker advance (so the
                    // machine is running — `i` alone is wedged).
                    if stalled[i] >= ticks_needed && others[i] >= ticks_needed {
                        trip(ms, i, &epochs, wd);
                        armed = false;
                        break;
                    }
                }
            }
            prev = epochs;
        }
    }

    /// Dump the post-mortem and apply the configured action.
    fn trip(ms: &Arc<MetricsShared>, worker: usize, epochs: &[u64], wd: &WatchdogCfg) {
        let dump = StallDump {
            worker,
            heartbeats: epochs.to_vec(),
            snapshot: ms.registry.snapshot(),
            flight: ms.flight.iter().map(|r| r.snapshot()).collect(),
        };
        eprintln!(
            "uat-fiber watchdog: worker {worker} heartbeat stalled for {:?} \
             while other workers advanced (epochs: {epochs:?})",
            wd.stall_after
        );
        let path = std::env::temp_dir().join(format!(
            "uat-watchdog-{}-w{worker}.json",
            std::process::id()
        ));
        match std::fs::write(&path, dump.to_json().pretty()) {
            Ok(()) => eprintln!("uat-fiber watchdog: dump written to {}", path.display()),
            Err(e) => eprintln!("uat-fiber watchdog: could not write dump: {e}"),
        }
        eprintln!("{}", dump.snapshot.prometheus_text());
        match &wd.action {
            WatchdogAction::Abort => {
                eprintln!("uat-fiber watchdog: aborting");
                std::process::abort();
            }
            WatchdogAction::Report(report) => {
                *report.dump.lock().unwrap() = Some(dump);
                report.tripped.store(true, Ordering::Release);
            }
        }
    }
}

#[cfg(feature = "metrics")]
pub use real::{
    flight_code, sampler_loop, MetricsShared, StallDump, WatchdogAction, WatchdogCfg,
    WatchdogReport, WorkerMetrics, DEFAULT_SAMPLE_INTERVAL, DEFAULT_STALL_AFTER, FLIGHT_CAPACITY,
};

/// Plain-atomic stand-ins when the `metrics` feature is off: the shared
/// scheduler counters [`crate::SchedStats`] reports survive, every other
/// hook is an empty `#[inline(always)]` body, and `uat-metrics` is not
/// linked.
#[cfg(not(feature = "metrics"))]
mod stub {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use uat_deque::StealPhases;

    /// Minimal run-wide counters (what [`crate::SchedStats`] needs).
    #[derive(Default)]
    pub struct MetricsShared {
        steals: AtomicU64,
        parks: AtomicU64,
        unparks: AtomicU64,
    }

    #[allow(missing_docs)]
    impl MetricsShared {
        pub fn new() -> Self {
            MetricsShared::default()
        }
        #[inline(always)]
        pub fn is_sabotaged(&self, _worker: usize) -> bool {
            false
        }
        pub fn steals_total(&self) -> u64 {
            self.steals.load(Ordering::Acquire)
        }
        pub fn parks_total(&self) -> u64 {
            self.parks.load(Ordering::Acquire)
        }
        pub fn unparks_total(&self) -> u64 {
            self.unparks.load(Ordering::Acquire)
        }
    }

    /// No-op per-worker handle: counter hooks keep the shared totals,
    /// everything timed vanishes.
    pub struct WorkerMetrics {
        shared: Arc<MetricsShared>,
    }

    #[allow(missing_docs)]
    impl WorkerMetrics {
        #[inline(always)]
        pub fn new(shared: &Arc<MetricsShared>, _id: usize) -> Self {
            WorkerMetrics {
                shared: Arc::clone(shared),
            }
        }
        #[inline(always)]
        pub fn on_loop(&mut self) {}
        #[inline(always)]
        pub fn clock(&self) -> Option<crate::tsc::RunClock> {
            None
        }
        #[inline(always)]
        pub fn on_steal_phased(&mut self, _victim: usize, ok: bool, _ph: &StealPhases) {
            if ok {
                self.shared.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
        #[inline(always)]
        pub fn on_steal_untimed(&mut self, ok: bool) {
            if ok {
                self.shared.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
        #[inline(always)]
        pub fn on_park(&mut self) {
            self.shared.parks.fetch_add(1, Ordering::Relaxed);
        }
        #[inline(always)]
        pub fn on_unpark(&mut self) {
            self.shared.unparks.fetch_add(1, Ordering::Relaxed);
        }
        #[inline(always)]
        pub fn on_task_begin(&mut self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn on_task_end(&mut self, _born: u64) {}
    }
}

#[cfg(not(feature = "metrics"))]
pub use stub::{MetricsShared, WorkerMetrics};
