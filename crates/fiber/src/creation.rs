//! The Table 2 microbenchmark: task creation overhead, in real cycles.
//!
//! The paper measures a spawn of a trivial child plus the return to the
//! parent — "the overhead of task creation consists of only save and
//! restoration of the parent thread and manipulations of the work
//! stealing queue" (Section 5.2) — on three systems:
//!
//! | strategy | models | mechanism |
//! |---|---|---|
//! | [`CreationStrategy::UniAddr`] | uni-address threads | Figure 4: `save_context_and_call`, push the parent entry, run the child on the same linear stack, pop |
//! | [`CreationStrategy::StackPool`] | MassiveThreads | child gets a pooled stack; full context switch both ways |
//! | [`CreationStrategy::SeqCall`] | MIT Cilk's fast clone | push a queue entry, plain indirect call, pop — no context save |
//!
//! The ordering the paper reports (Cilk < uni-address ≈ MassiveThreads)
//! follows from the mechanisms; `table2_creation` prints the measured
//! numbers next to the paper's.

use crate::ctx::{resume_context, save_context_and_call, switch_stack_and_call, Context};
use crate::stack::Stack;
use crate::tsc;
use std::ffi::c_void;
use uat_deque::NativeDeque;

/// Which creation mechanism to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreationStrategy {
    /// Figure 4: the uni-address creation path.
    UniAddr,
    /// MassiveThreads-like: child on a fresh pooled stack.
    StackPool,
    /// Cilk-like fast clone: push/call/pop, no context save.
    SeqCall,
}

impl CreationStrategy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CreationStrategy::UniAddr => "uni-address threads",
            CreationStrategy::StackPool => "MassiveThreads-like (stack pool)",
            CreationStrategy::SeqCall => "Cilk-like (seq call)",
        }
    }
}

/// The trivial child body. `#[inline(never)]` so every strategy pays one
/// real call, as the paper's benchmark child does.
#[inline(never)]
fn child_body(counter: &mut u64) {
    *counter = std::hint::black_box(*counter + 1);
}

struct UniArgs<'a> {
    deque: &'a NativeDeque<u64>,
    counter: &'a mut u64,
}

/// Figure 4's `do_create_thread`, specialized to the benchmark child.
unsafe extern "C" fn do_create_uniaddr(ctx: *mut Context, arg: *mut c_void) {
    // SAFETY: [I8] arg is the UniArgs the caller stack-allocated and it
    // outlives this call (save_context_and_call is synchronous here).
    let args = unsafe { &mut *(arg as *mut UniArgs<'_>) };
    // Push the parent thread (taskq entry = the context pointer).
    args.deque.push(ctx as u64);
    // Start the child thread on this same stack.
    child_body(args.counter);
    // Pop the parent thread. In the single-worker microbench it is
    // always still there (nobody steals), so we return normally and the
    // save_context_and_call epilogue restores the parent.
    let popped = args.deque.pop();
    debug_assert_eq!(popped, Some(ctx as u64));
}

struct PoolArgs<'a> {
    deque: &'a NativeDeque<u64>,
    counter: *mut u64,
    child_top: *mut u8,
}

unsafe extern "C" fn pool_child_main(arg: *mut c_void) -> ! {
    // SAFETY: [I8] arg outlives the child (parent frame is suspended).
    let args = unsafe { &*(arg as *mut PoolArgs<'_>) };
    // SAFETY: [I8] counter points at the measuring frame's live u64.
    child_body(unsafe { &mut *args.counter });
    let parent = args.deque.pop().expect("parent not stolen in microbench");
    // SAFETY: [I5] the parent context is intact on its own stack.
    unsafe { resume_context(parent as *mut Context) }
}

unsafe extern "C" fn do_create_pool(ctx: *mut Context, arg: *mut c_void) {
    // SAFETY: [I8] as above.
    let args = unsafe { &mut *(arg as *mut PoolArgs<'_>) };
    args.deque.push(ctx as u64);
    // SAFETY: [I6][I9] child_top is the top of a live pooled stack and
    // pool_child_main never returns.
    unsafe { switch_stack_and_call(args.child_top, pool_child_main, arg) }
}

/// Measure mean creation cycles for `strategy` (min-of-batches, like the
/// paper's averaging of a hot loop).
pub fn measure_creation(strategy: CreationStrategy, batch: u64, reps: u64) -> f64 {
    let deque: NativeDeque<u64> = NativeDeque::new(64);
    let mut counter = 0u64;
    match strategy {
        CreationStrategy::SeqCall => tsc::measure(
            || {
                deque.push(0xC0FFEE);
                child_body(&mut counter);
                let popped = deque.pop();
                debug_assert_eq!(popped, Some(0xC0FFEE));
            },
            batch,
            reps,
        ),
        CreationStrategy::UniAddr => tsc::measure(
            || {
                let mut args = UniArgs {
                    deque: &deque,
                    counter: &mut counter,
                };
                // SAFETY: [I5][I8] do_create_uniaddr returns normally (single
                // worker, no theft) and args outlives the call.
                unsafe {
                    save_context_and_call(
                        std::ptr::null_mut(),
                        do_create_uniaddr,
                        &mut args as *mut UniArgs<'_> as *mut c_void,
                    );
                }
            },
            batch,
            reps,
        ),
        CreationStrategy::StackPool => {
            // One stack reused across iterations — the pool hit path,
            // which is what a steady-state MassiveThreads spawn pays.
            let stack = Stack::new(64 << 10);
            tsc::measure(
                || {
                    let mut args = PoolArgs {
                        deque: &deque,
                        counter: &mut counter,
                        child_top: stack.top(),
                    };
                    // SAFETY: [I5][I8] the child jumps back via the saved context;
                    // args outlives the round trip.
                    unsafe {
                        save_context_and_call(
                            std::ptr::null_mut(),
                            do_create_pool,
                            &mut args as *mut PoolArgs<'_> as *mut c_void,
                        );
                    }
                },
                batch,
                reps,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_run_the_child() {
        // Smoke: each strategy round-trips without corrupting the stack.
        for s in [
            CreationStrategy::SeqCall,
            CreationStrategy::UniAddr,
            CreationStrategy::StackPool,
        ] {
            let c = measure_creation(s, 100, 3);
            assert!(c > 0.0 && c < 100_000.0, "{s:?}: {c} cycles");
        }
    }

    #[test]
    fn ordering_matches_table2() {
        // Table 2's qualitative result: seq-call (Cilk) is the cheapest;
        // the context-saving strategies cost more. The gap is a handful
        // of cycles, so on a noisy/virtualized box a single measurement
        // can flip — require the ordering to hold on any of a few
        // attempts rather than exactly the first.
        let mut last = (0.0, 0.0);
        let ordered = (0..5).any(|_| {
            let seq = measure_creation(CreationStrategy::SeqCall, 2_000, 15);
            let uni = measure_creation(CreationStrategy::UniAddr, 2_000, 15);
            last = (seq, uni);
            seq < uni
        });
        assert!(
            ordered,
            "Cilk-like ({:.0}) should undercut uni-address ({:.0})",
            last.0, last.1
        );
        // And uni-address creation is still lightweight: the paper
        // measures 100 cycles on a Xeon; allow a wide band for
        // virtualized/noisy environments.
        assert!(
            last.1 < 2_000.0,
            "uni-address creation {:.0} cycles",
            last.1
        );
    }
}
