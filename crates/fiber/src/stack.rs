//! Task stacks: `mmap`-backed, guard-paged, pooled.
//!
//! The stack-pool creation strategy (and the runtime) give every thread
//! its own stack, as MassiveThreads does. Stacks come from `mmap` with a
//! `PROT_NONE` guard page at the low end so overflow faults instead of
//! corrupting a neighbour, and are recycled through a free list because
//! `mmap`/`munmap` per spawn would dwarf the 100-cycle budget.

use std::ptr::NonNull;

/// One task stack.
#[derive(Debug)]
pub struct Stack {
    /// Base of the whole mapping (guard page included).
    base: NonNull<u8>,
    /// Total mapping length (guard page included).
    len: usize,
}

// SAFETY: [I6] a Stack is just an owned memory range; moving it between
// threads is fine (the runtime hands stacks to whichever worker runs the
// task).
unsafe impl Send for Stack {}

impl Stack {
    /// Map a stack with `usable` usable bytes plus one guard page.
    pub fn new(usable: usize) -> Stack {
        let page = 4096usize;
        let usable = usable.div_ceil(page) * page;
        let len = usable + page;
        // SAFETY: [I10] plain anonymous private mapping; we check the result.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_STACK,
                -1,
                0,
            )
        };
        assert!(base != libc::MAP_FAILED, "mmap failed for a task stack");
        // Guard page at the low end (stacks grow down).
        // SAFETY: [I10] base..base+page is inside our fresh mapping.
        let rc = unsafe { libc::mprotect(base, page, libc::PROT_NONE) };
        assert_eq!(rc, 0, "mprotect(guard) failed");
        Stack {
            base: NonNull::new(base as *mut u8).expect("mmap returned null"),
            len,
        }
    }

    /// Highest usable address, 16-byte aligned — the initial stack
    /// pointer for a fresh thread (minus the ABI's red-zone etiquette,
    /// handled by the switch shim).
    pub fn top(&self) -> *mut u8 {
        let top = self.base.as_ptr() as usize + self.len;
        (top & !15) as *mut u8
    }

    /// Lowest usable address (just above the guard page).
    pub fn limit(&self) -> *mut u8 {
        (self.base.as_ptr() as usize + 4096) as *mut u8
    }

    /// Usable bytes.
    pub fn usable(&self) -> usize {
        self.len - 4096
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: [I6][I10] unmapping exactly what we mapped.
        unsafe {
            libc::munmap(self.base.as_ptr() as *mut libc::c_void, self.len);
        }
    }
}

/// A simple free-list pool of equally sized stacks.
#[derive(Debug)]
pub struct StackPool {
    size: usize,
    free: Vec<Stack>,
    /// Total stacks ever created (diagnostics).
    pub created: usize,
}

impl StackPool {
    /// A pool of `size`-byte stacks.
    pub fn new(size: usize) -> StackPool {
        StackPool {
            size,
            free: Vec::new(),
            created: 0,
        }
    }

    /// Take a stack (reuse or map a fresh one).
    pub fn take(&mut self) -> Stack {
        self.free.pop().unwrap_or_else(|| {
            self.created += 1;
            Stack::new(self.size)
        })
    }

    /// Return a stack for reuse.
    pub fn put(&mut self, s: Stack) {
        self.free.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_writable_and_aligned() {
        let s = Stack::new(64 << 10);
        assert!(s.usable() >= 64 << 10);
        assert_eq!(s.top() as usize % 16, 0);
        // Write across the usable range.
        let limit = s.limit();
        // SAFETY: [I6] [limit, top) is our mapping's RW span.
        unsafe {
            std::ptr::write_bytes(limit, 0xAB, s.usable());
            assert_eq!(*limit, 0xAB);
            assert_eq!(*s.top().sub(1), 0xAB);
        }
    }

    #[test]
    fn pool_recycles() {
        let mut p = StackPool::new(16 << 10);
        let a = p.take();
        let a_top = a.top() as usize;
        p.put(a);
        let b = p.take();
        assert_eq!(b.top() as usize, a_top, "same stack handed back");
        assert_eq!(p.created, 1);
        let _c = p.take();
        assert_eq!(p.created, 2);
    }

    #[test]
    fn sizes_round_to_pages() {
        let s = Stack::new(1);
        assert_eq!(s.usable(), 4096);
    }
}
