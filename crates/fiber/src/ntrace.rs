//! Native-runtime tracing: the `uat-trace` layers wired into real
//! fibers.
//!
//! The simulator charges every simulated cycle to a bucket as a side
//! effect of firing events; the native runtime has no central event
//! loop, so tracing is *distributed*: each worker OS thread owns a
//! [`WorkerTracer`] — a bounded event ring, a [`TimeAccount`], and the
//! open-slice cursor — touched only from that thread (lock-free on the
//! hot path). The only shared state is the run-wide [`TraceShared`]: the
//! calibrated epoch clock, the task/publication id allocators, and the
//! continuation registry that lets a thief name the task it stole (the
//! registry is a mutex, taken only on deque publish/consume — spawn and
//! steal events, not per-cycle).
//!
//! Timestamps are cycles since the run epoch ([`RunClock`]); raw TSC
//! readings can regress slightly across core migrations, so each tracer
//! clamps its own timeline monotone. At the end of the run
//! [`finalize`] normalizes the per-worker timelines against the global
//! makespan (the last task completion) exactly the way the simulator's
//! `TraceCtl::finalize` does: tail slices are clipped, short timelines
//! are padded with idle, and in the drop-free case every worker's
//! buckets tile `[0, makespan)` exactly — the invariant the profiler's
//! DAG builder checks before accepting a trace.
//!
//! With the `trace` cargo feature off, everything here compiles to unit
//! structs with empty `#[inline(always)]` methods: the runtime's hook
//! sites cost literally nothing.

#[cfg(feature = "trace")]
mod real {
    use crate::tsc::{ClockSource, RunClock};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use uat_base::{Cycles, WorkerId};
    use uat_deque::{StealAttemptOutcome, StealPhases};
    use uat_trace::{
        Bucket, EventKind, RingBuffer, StealOutcome, StealPhaseId, TimeAccount, TraceEvent,
    };

    /// Default per-worker ring capacity for traced native runs.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// What one worker deposits when its loop exits.
    pub struct WorkerDeposit {
        /// The worker's event ring.
        pub ring: RingBuffer,
        /// The worker's running bucket account (complete even if the
        /// ring dropped events).
        pub account: TimeAccount,
        /// The worker's final charge timestamp (cycles since epoch).
        pub end: u64,
    }

    /// Run-wide trace state shared by all workers of one traced run.
    pub struct TraceShared {
        /// The run's epoch clock.
        pub clock: RunClock,
        ring_capacity: usize,
        next_task: AtomicU64,
        next_seq: AtomicU64,
        /// Continuation registry: deque entry (a `*mut Context` as u64)
        /// → (task id of the parked continuation, publication seq).
        /// Inserted at publish, removed at the pop/steal that consumes
        /// the entry.
        ctx_map: Mutex<HashMap<u64, (u64, u64)>>,
        deposits: Mutex<Vec<Option<WorkerDeposit>>>,
    }

    impl TraceShared {
        /// Trace state for `workers` workers with `ring_capacity`-event
        /// rings. Starts the run epoch.
        pub fn new(workers: usize, ring_capacity: usize) -> Arc<Self> {
            Arc::new(TraceShared {
                clock: RunClock::start(),
                ring_capacity: ring_capacity.max(1),
                next_task: AtomicU64::new(0),
                next_seq: AtomicU64::new(0),
                ctx_map: Mutex::new(HashMap::new()),
                deposits: Mutex::new((0..workers).map(|_| None).collect()),
            })
        }

        /// Allocate a run-unique task id (ids start at 1; 0 means
        /// "untraced").
        pub fn alloc_task(&self) -> u64 {
            self.next_task.fetch_add(1, Ordering::Relaxed) + 1
        }

        /// Events evicted from each worker's ring, indexed by worker
        /// (workers that have not deposited yet read as 0). Meaningful
        /// once the worker loops have exited — i.e. after the runtime
        /// joined its threads, before or after [`finalize`].
        pub fn dropped_per_worker(&self) -> Vec<u64> {
            self.deposits
                .lock()
                .unwrap()
                .iter()
                .map(|s| s.as_ref().map_or(0, |d| d.ring.dropped()))
                .collect()
        }
    }

    struct Wt {
        shared: Arc<TraceShared>,
        worker: WorkerId,
        ring: RingBuffer,
        account: TimeAccount,
        /// Bucket of the open slice.
        bucket: Bucket,
        /// Start of the open slice.
        since: u64,
        /// Monotone clamp over raw clock readings.
        latest: u64,
        /// Task id of the fiber currently running on this worker.
        cur_task: u64,
    }

    impl Wt {
        #[inline]
        fn now(&mut self) -> u64 {
            let raw = self.shared.clock.now_cycles();
            if raw > self.latest {
                self.latest = raw;
            }
            self.latest
        }

        #[inline]
        fn instant(&mut self, at: u64, kind: EventKind) {
            self.ring
                .push(TraceEvent::instant(Cycles(at), self.worker, kind));
        }

        /// Close the open slice at `t` and open a new one in `bucket`.
        fn switch_at(&mut self, t: u64, bucket: Bucket) {
            if t > self.since {
                let dur = t - self.since;
                self.ring.push(TraceEvent::span(
                    Cycles(self.since),
                    Cycles(dur),
                    self.worker,
                    EventKind::Slice {
                        bucket: self.bucket,
                    },
                ));
                self.account.charge(self.bucket, Cycles(dur));
                self.since = t;
            }
            self.bucket = bucket;
        }

        fn switch(&mut self, bucket: Bucket) {
            if bucket == self.bucket {
                return;
            }
            let t = self.now();
            self.switch_at(t, bucket);
        }
    }

    /// Per-worker tracing handle living inside the runtime's `Worker`.
    /// All methods are no-ops when the run is untraced.
    #[derive(Default)]
    pub struct WorkerTracer(Option<Box<Wt>>);

    impl WorkerTracer {
        /// Tracer for worker `id`, active iff `shared` is set.
        pub fn new(shared: Option<&Arc<TraceShared>>, id: usize) -> Self {
            WorkerTracer(shared.map(|s| {
                Box::new(Wt {
                    shared: Arc::clone(s),
                    worker: WorkerId(id as u32),
                    ring: RingBuffer::new(s.ring_capacity),
                    account: TimeAccount::new(),
                    bucket: Bucket::Idle,
                    since: 0,
                    latest: 0,
                    cur_task: 0,
                })
            }))
        }

        /// Whether tracing is active on this worker.
        #[inline]
        pub fn enabled(&self) -> bool {
            self.0.is_some()
        }

        /// Task id of the fiber currently running here (0 if untraced).
        #[inline]
        pub fn cur_task(&self) -> u64 {
            self.0.as_ref().map_or(0, |t| t.cur_task)
        }

        /// The run's epoch clock, for stamping steal phases inside the
        /// deque; `None` when untraced (take the unphased steal path).
        #[inline]
        pub fn clock(&self) -> Option<RunClock> {
            self.0.as_ref().map(|t| t.shared.clock)
        }

        /// A fiber body is about to start: emit `TaskBegin`, make `task`
        /// current, open a `Work` slice. Returns the begin timestamp
        /// (the task-end hook wants it for the run length).
        #[inline]
        pub fn on_task_begin(&mut self, task: u64) -> u64 {
            let Some(t) = self.0.as_deref_mut() else {
                return 0;
            };
            let at = t.now();
            t.switch_at(at, Bucket::Work);
            t.cur_task = task;
            t.instant(at, EventKind::TaskBegin { task });
            at
        }

        /// A fiber body returned: emit `TaskEnd` and fall into the
        /// suspend/resume bucket for the completion epilogue.
        #[inline]
        pub fn on_task_end(&mut self, task: u64, born: u64) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            t.switch_at(at, Bucket::SuspendResume);
            t.instant(
                at,
                EventKind::TaskEnd {
                    task,
                    run: Cycles(at.saturating_sub(born)),
                },
            );
        }

        /// `spawn()` entered on the parent fiber: charge the spawn path,
        /// allocate and announce the child. Returns the child task id.
        #[inline]
        pub fn on_spawn(&mut self) -> u64 {
            let Some(t) = self.0.as_deref_mut() else {
                return 0;
            };
            let at = t.now();
            t.switch_at(at, Bucket::Spawn);
            let child = t.shared.alloc_task();
            t.instant(
                at,
                EventKind::Spawn {
                    parent: t.cur_task,
                    child,
                },
            );
            child
        }

        /// A continuation belonging to `task` was pushed into this
        /// worker's deque (stealable from now on): register it and emit
        /// `DequePublish`.
        #[inline]
        pub fn on_publish(&mut self, ctx: u64, task: u64) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let seq = t.shared.next_seq.fetch_add(1, Ordering::Relaxed);
            t.shared.ctx_map.lock().unwrap().insert(ctx, (task, seq));
            let at = t.now();
            t.instant(at, EventKind::DequePublish { task, seq });
        }

        /// This worker popped `ctx` from its own deque: unregister it
        /// and make its task current (no event — a local pop is not a
        /// steal).
        #[inline]
        pub fn on_local_pop(&mut self, ctx: u64) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            if let Some((task, _seq)) = t.shared.ctx_map.lock().unwrap().remove(&ctx) {
                t.cur_task = task;
            }
        }

        /// A parked/popped/stolen continuation resumed into fiber code:
        /// back to the `Work` bucket.
        #[inline]
        pub fn on_resumed(&mut self) {
            if let Some(t) = self.0.as_deref_mut() {
                t.switch(Bucket::Work);
            }
        }

        /// The current fiber is about to park at a blocked join.
        #[inline]
        pub fn on_suspend(&mut self) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            t.switch_at(at, Bucket::SuspendResume);
            let task = t.cur_task;
            t.instant(at, EventKind::Suspend { task });
        }

        /// The completion of `child` (current task) unparked `parent`'s
        /// continuation: emit `JoinReady` (the publish of the waiter is
        /// reported separately via [`Self::on_publish`]).
        #[inline]
        pub fn on_join_ready(&mut self, parent: u64) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            let child = t.cur_task;
            t.instant(at, EventKind::JoinReady { parent, child });
        }

        /// The parent resumed past a parked join that `child` enabled.
        #[inline]
        pub fn on_join_resume(&mut self, child: u64) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            let parent = t.cur_task;
            t.switch_at(at, Bucket::Work);
            t.instant(at, EventKind::JoinResume { parent, child });
            t.instant(at, EventKind::Resume { task: parent });
        }

        /// The scheduler loop is searching for work.
        #[inline]
        pub fn on_idle(&mut self) {
            if let Some(t) = self.0.as_deref_mut() {
                t.switch(Bucket::Idle);
            }
        }

        /// One instrumented steal attempt finished: emit the phase spans
        /// (charged to the matching steal buckets), the outcome, and —
        /// on success — the `StealCommit` naming the stolen task, whose
        /// id this returns.
        pub fn on_steal_attempt(&mut self, victim: usize, ctx: Option<u64>, ph: &StealPhases) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let victim = WorkerId(victim as u32);
            // Clamp the deque's raw clock readings into this worker's
            // monotone timeline.
            let start = ph.start.clamp(t.latest, u64::MAX);
            let checked = ph.checked.clamp(start, u64::MAX);
            let locked = ph.locked.clamp(checked, u64::MAX);
            let end = ph.end.clamp(locked, u64::MAX);
            t.latest = end;
            // Close the open (idle) slice at the attempt start, then
            // tile the attempt with its phases.
            t.switch_at(start, Bucket::Idle);
            let mut phase_span = |from: u64, to: u64, phase: StealPhaseId, bucket: Bucket| {
                if to > from {
                    t.ring.push(TraceEvent::span(
                        Cycles(from),
                        Cycles(to - from),
                        t.worker,
                        EventKind::StealPhase { victim, phase },
                    ));
                    t.ring.push(TraceEvent::span(
                        Cycles(from),
                        Cycles(to - from),
                        t.worker,
                        EventKind::Slice { bucket },
                    ));
                    t.account.charge(bucket, Cycles(to - from));
                }
            };
            phase_span(start, checked, StealPhaseId::EmptyCheck, Bucket::StealEmpty);
            phase_span(checked, locked, StealPhaseId::Lock, Bucket::StealLock);
            phase_span(locked, end, StealPhaseId::Steal, Bucket::StealEntry);
            t.since = end;
            t.bucket = Bucket::Idle;
            let outcome = match ph.outcome {
                StealAttemptOutcome::Taken => StealOutcome::Completed,
                StealAttemptOutcome::Empty => StealOutcome::AbortEmpty,
                StealAttemptOutcome::LockBusy => StealOutcome::AbortLock,
                StealAttemptOutcome::Raced => StealOutcome::AbortRaced,
            };
            t.instant(
                end,
                EventKind::StealResult {
                    victim,
                    outcome,
                    latency: Cycles(end - start),
                },
            );
            if let Some(ctx) = ctx {
                let hit = t.shared.ctx_map.lock().unwrap().remove(&ctx);
                if let Some((task, seq)) = hit {
                    t.cur_task = task;
                    t.instant(end, EventKind::StealCommit { task, seq });
                }
            }
        }

        /// The idle backoff crossed its spin threshold: the worker is
        /// going to sleep.
        #[inline]
        pub fn on_park(&mut self) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            t.instant(at, EventKind::Park);
        }

        /// The worker found work after having parked.
        #[inline]
        pub fn on_unpark(&mut self) {
            let Some(t) = self.0.as_deref_mut() else {
                return;
            };
            let at = t.now();
            t.instant(at, EventKind::Unpark);
        }

        /// The worker loop exited: close the last slice and deposit this
        /// worker's timeline into the shared state.
        pub fn finish(&mut self) {
            let Some(mut t) = self.0.take() else {
                return;
            };
            let end = t.now();
            t.switch_at(end, Bucket::Idle);
            let deposit = WorkerDeposit {
                ring: t.ring,
                account: t.account,
                end,
            };
            let idx = t.worker.index();
            let mut deps = t.shared.deposits.lock().unwrap();
            if let Some(slot) = deps.get_mut(idx) {
                *slot = Some(deposit);
            }
        }
    }

    /// A finalized native trace: exportable [`TraceData`] plus the
    /// per-worker accounts kept *outside* the rings (complete even when
    /// rings dropped events).
    pub struct NativeTrace {
        /// The trace, normalized so the profiler's DAG builder accepts
        /// it (slices tile `[0, makespan)`, last `TaskEnd` at the
        /// makespan).
        pub data: uat_trace::TraceData,
        /// Per-worker bucket accounts. Drop-free runs tile the makespan
        /// exactly; runs whose rings dropped events keep the running
        /// totals (tail-trimmed), which may differ by the trim residue.
        pub accounts: Vec<TimeAccount>,
    }

    /// Normalize the per-worker deposits into a [`NativeTrace`].
    ///
    /// The makespan is the latest `TaskEnd` across workers (the root's
    /// completion, modulo cross-core clock skew). Each worker's *slices*
    /// are clipped to `[0, makespan]` — dropping post-makespan shutdown
    /// idling — and padded with a final idle slice if its own clock fell
    /// short; drop-free accounts are rebuilt from the clipped slices so
    /// they tile the makespan *exactly*. Instants are **never** dropped:
    /// workers keep running the scheduler loop between the last `TaskEnd`
    /// and the shutdown flag (the main thread polls stragglers and joins
    /// the sampler first), and the steal attempts made in that window are
    /// real — the always-on metrics counters see them, so the trace must
    /// too or the two disagree on every count (clipping only affects the
    /// time *accounting*, which instants don't participate in).
    pub fn finalize(shared: &Arc<TraceShared>) -> NativeTrace {
        let mut deps: Vec<WorkerDeposit> = {
            let mut slots = shared.deposits.lock().unwrap();
            slots
                .iter_mut()
                .map(|s| {
                    s.take().unwrap_or(WorkerDeposit {
                        ring: RingBuffer::new(1),
                        account: TimeAccount::new(),
                        end: 0,
                    })
                })
                .collect()
        };
        let makespan = deps
            .iter()
            .flat_map(|d| d.ring.iter())
            .filter_map(|ev| match ev.kind {
                EventKind::TaskEnd { .. } => Some(ev.at.get()),
                _ => None,
            })
            .max()
            .unwrap_or(0);

        let mut rings = Vec::with_capacity(deps.len());
        let mut accounts = Vec::with_capacity(deps.len());
        for d in deps.iter_mut() {
            let dropped = d.ring.dropped();
            let mut out = RingBuffer::new(d.ring.capacity().max(d.ring.len() + 2));
            let mut rebuilt = TimeAccount::new();
            let mut covered = 0u64;
            for ev in d.ring.iter() {
                let at = ev.at.get();
                if ev.dur.get() > 0 {
                    if at >= makespan {
                        continue;
                    }
                    let end = (at + ev.dur.get()).min(makespan);
                    let clipped = TraceEvent::span(ev.at, Cycles(end - at), ev.worker, ev.kind);
                    out.push(clipped);
                    if let EventKind::Slice { bucket } = ev.kind {
                        rebuilt.charge(bucket, Cycles(end - at));
                        covered = covered.max(end);
                    }
                } else {
                    // Instants: keep unconditionally (see doc above).
                    out.push(*ev);
                }
            }
            if covered < makespan {
                out.push(TraceEvent::span(
                    Cycles(covered),
                    Cycles(makespan - covered),
                    uat_base::WorkerId(rings.len() as u32),
                    EventKind::Slice {
                        bucket: Bucket::Idle,
                    },
                ));
                rebuilt.charge(Bucket::Idle, Cycles(makespan - covered));
            }
            let account = if dropped == 0 {
                rebuilt
            } else {
                out.note_dropped(dropped);
                // Keep the running account (complete despite the ring
                // drops) with the post-makespan idle tail trimmed off.
                let excess = d.end.saturating_sub(makespan);
                let mut trimmed = TimeAccount::new();
                for b in Bucket::ALL {
                    let mut v = d.account.get(b).get();
                    if b == Bucket::Idle {
                        v = v.saturating_sub(excess);
                    }
                    trimmed.charge(b, Cycles(v));
                }
                trimmed
            };
            rings.push(out);
            accounts.push(account);
        }

        let clock_source = match shared.clock.source() {
            ClockSource::Tsc => uat_trace::ClockSource::Tsc,
            ClockSource::Instant => uat_trace::ClockSource::Instant,
        };
        NativeTrace {
            data: uat_trace::TraceData {
                clock_hz: shared.clock.hz(),
                clock_source,
                workers: rings,
                fabric: Vec::new(),
                makespan: Cycles(makespan),
            },
            accounts,
        }
    }
}

#[cfg(feature = "trace")]
pub use real::{
    finalize, NativeTrace, TraceShared, WorkerDeposit, WorkerTracer, DEFAULT_RING_CAPACITY,
};

/// Zero-cost stand-ins when the `trace` feature is off: the runtime's
/// hook sites compile against the same names and vanish entirely.
#[cfg(not(feature = "trace"))]
mod stub {
    use std::sync::Arc;
    use uat_deque::StealPhases;

    /// Placeholder for the run-wide trace state (never constructed).
    pub struct TraceShared;

    impl TraceShared {
        /// Unused; exists so call sites type-check.
        pub fn alloc_task(&self) -> u64 {
            0
        }
    }

    /// No-op tracer: every hook is an empty `#[inline(always)]` body.
    #[derive(Default)]
    pub struct WorkerTracer;

    #[allow(missing_docs)]
    impl WorkerTracer {
        #[inline(always)]
        pub fn new(_shared: Option<&Arc<TraceShared>>, _id: usize) -> Self {
            WorkerTracer
        }
        #[inline(always)]
        pub fn enabled(&self) -> bool {
            false
        }
        #[inline(always)]
        pub fn cur_task(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn clock(&self) -> Option<crate::tsc::RunClock> {
            None
        }
        #[inline(always)]
        pub fn on_task_begin(&mut self, _task: u64) -> u64 {
            0
        }
        #[inline(always)]
        pub fn on_task_end(&mut self, _task: u64, _born: u64) {}
        #[inline(always)]
        pub fn on_spawn(&mut self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn on_publish(&mut self, _ctx: u64, _task: u64) {}
        #[inline(always)]
        pub fn on_local_pop(&mut self, _ctx: u64) {}
        #[inline(always)]
        pub fn on_resumed(&mut self) {}
        #[inline(always)]
        pub fn on_suspend(&mut self) {}
        #[inline(always)]
        pub fn on_join_ready(&mut self, _parent: u64) {}
        #[inline(always)]
        pub fn on_join_resume(&mut self, _child: u64) {}
        #[inline(always)]
        pub fn on_idle(&mut self) {}
        #[inline(always)]
        pub fn on_steal_attempt(&mut self, _victim: usize, _ctx: Option<u64>, _ph: &StealPhases) {}
        #[inline(always)]
        pub fn on_park(&mut self) {}
        #[inline(always)]
        pub fn on_unpark(&mut self) {}
        #[inline(always)]
        pub fn finish(&mut self) {}
    }
}

#[cfg(not(feature = "trace"))]
pub use stub::{TraceShared, WorkerTracer};
