//! The per-worker uni-address scheme (Section 5).

use crate::config::CoreConfig;
use crate::heap::{RdmaHeap, SavedContext, SavedHandle};
use crate::region::UniRegion;
use std::collections::VecDeque;
use uat_base::{Cycles, SplitMix64, WorkerId};
use uat_deque::SimDeque;
use uat_rdma::Fabric;
use uat_vmem::{AddressSpace, MemStats};

/// Per-worker state of the uni-address scheme: the uni-address region,
/// the RDMA region (suspended stacks + wait queue), the work-stealing
/// queue, and the worker's simulated address space for memory accounting.
#[derive(Debug)]
pub struct UniMgr {
    id: WorkerId,
    /// Simulated process address space (virtual-memory accounting).
    pub space: AddressSpace,
    /// The uni-address region discipline.
    pub region: UniRegion,
    /// Pinned heap for suspended stacks.
    pub heap: RdmaHeap,
    /// This worker's work-stealing queue (in registered memory).
    pub deque: SimDeque,
    /// Wait queue of suspended threads (Figure 7), FIFO.
    wait_queue: VecDeque<SavedHandle>,
    verify: bool,
    /// Reusable buffer for frame byte patterns (spawn is the hot path).
    scratch: Vec<u8>,
}

impl UniMgr {
    /// Set up a worker: reserve + pin + register the uni-address region
    /// (at `cfg.uni_base`, the *same* address on every worker), the RDMA
    /// region, and the task queue.
    pub fn new(fabric: &mut Fabric, id: WorkerId, cfg: &CoreConfig) -> Self {
        let mut space = AddressSpace::new();

        // The uni-address region: fixed address, pinned, registered.
        let uni = space
            .reserve_at(cfg.uni_base, cfg.uni_region_size)
            .expect("uni-address region placement");
        space.pin(uni.base, uni.len).expect("pin uni region");
        fabric
            .register(id, uni.base, uni.len as usize)
            .expect("register uni region");

        // The RDMA region: anywhere ("their addresses do not matter").
        let heap_r = space.reserve(cfg.rdma_heap_size).expect("rdma region");
        space.pin(heap_r.base, heap_r.len).expect("pin rdma region");
        fabric
            .register(id, heap_r.base, heap_r.len as usize)
            .expect("register rdma region");

        // The work-stealing queue.
        let dq_bytes = SimDeque::footprint(cfg.deque_capacity);
        let dq_r = space.reserve(dq_bytes).expect("deque region");
        space.pin(dq_r.base, dq_r.len).expect("pin deque");
        fabric
            .register(id, dq_r.base, dq_bytes as usize)
            .expect("register deque");
        let deque = SimDeque::init(fabric, id, dq_r.base, cfg.deque_capacity).expect("init deque");

        UniMgr {
            id,
            space,
            region: UniRegion::new(cfg.uni_base, cfg.uni_region_size),
            heap: RdmaHeap::new(id, heap_r.base, heap_r.len),
            deque,
            wait_queue: VecDeque::new(),
            verify: cfg.verify_stack_bytes,
            scratch: Vec::new(),
        }
    }

    /// The worker this manager belongs to.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Spawn: allocate the child's stack just below the parent's
    /// (Figure 4) and fill it with the task's byte pattern.
    pub fn spawn_frame(&mut self, fabric: &mut Fabric, task: u64, size: u64) -> u64 {
        let base = self
            .region
            .alloc(task, size)
            .unwrap_or_else(|e| panic!("worker {}: {e}", self.id));
        // The frames are real bytes in registered memory; write the
        // task's pattern so copies are checkable end to end.
        let mut bytes = std::mem::take(&mut self.scratch);
        pattern_into(task, size as usize, &mut bytes);
        fabric
            .mem_mut(self.id)
            .write_local(base, &bytes)
            .expect("uni region registered");
        self.scratch = bytes;
        base
    }

    /// The running thread (bottom segment) exits.
    pub fn complete_bottom(&mut self, task: u64) {
        self.region
            .release_bottom(task)
            .unwrap_or_else(|e| panic!("worker {}: {e}", self.id));
    }

    /// Suspend the running thread (Figure 8): verify + copy its frames to
    /// the RDMA region, release its segment, park the context. Returns
    /// the handle and the modelled cost.
    pub fn suspend_bottom(
        &mut self,
        fabric: &mut Fabric,
        task: u64,
        ctx: u64,
        cost: &uat_base::CostModel,
    ) -> (SavedHandle, Cycles) {
        let seg = *self
            .region
            .bottom()
            .unwrap_or_else(|| panic!("worker {}: suspend with empty region", self.id));
        assert_eq!(seg.task, task, "suspend must target the running thread");
        if self.verify {
            self.verify_frames(fabric, task, seg.base, seg.size);
        }
        let h = self.heap.park(fabric, task, ctx, seg.base, seg.size);
        self.region
            .release_bottom(task)
            .expect("bottom segment just observed");
        (h, cost.suspend_cost(seg.size as usize))
    }

    /// Resume a parked thread: copy its frames back to their original
    /// uni-address-region address and reinstate the segment.
    pub fn resume_saved(
        &mut self,
        fabric: &mut Fabric,
        h: SavedHandle,
        cost: &uat_base::CostModel,
    ) -> (SavedContext, Cycles) {
        let sctx = self.heap.unpark(fabric, h);
        self.region
            .install(sctx.task, sctx.stack_top, sctx.stack_size)
            .unwrap_or_else(|e| panic!("worker {}: {e}", self.id));
        if self.verify {
            self.verify_frames(fabric, sctx.task, sctx.stack_top, sctx.stack_size);
        }
        (sctx, cost.resume_cost(sctx.stack_size as usize))
    }

    /// A local pop found the queue empty: every remaining segment's
    /// continuation was stolen; drain the region so this worker can steal.
    pub fn on_pop_empty(&mut self) {
        self.region.drain_all_dead();
    }

    /// Thief side of the migration (Figure 6's `resume_remote_context`):
    /// RDMA-READ the stolen thread's frames from the victim's uni-address
    /// region into our own, *at the same virtual address*. Returns the
    /// completion instant of the transfer.
    ///
    /// Precondition (Section 5.2 step 5): our region is empty.
    pub fn transfer_stolen_in(
        &mut self,
        fabric: &mut Fabric,
        now: Cycles,
        victim: WorkerId,
        task: u64,
        frame_base: u64,
        frame_size: u64,
    ) -> Cycles {
        let mut buf = vec![0u8; frame_size as usize];
        let done = fabric
            .read(now, self.id, victim, frame_base, &mut buf)
            .expect("victim frames are in its registered uni region");
        self.region
            .install(task, frame_base, frame_size)
            .unwrap_or_else(|e| panic!("worker {}: steal install: {e}", self.id));
        fabric
            .mem_mut(self.id)
            .write_local(frame_base, &buf)
            .expect("own uni region registered");
        if self.verify {
            self.verify_frames(fabric, task, frame_base, frame_size);
        }
        done
    }

    /// Push a suspended thread on the wait queue (`WAIT_QUEUE_PUSH`).
    pub fn wait_push(&mut self, h: SavedHandle) {
        self.wait_queue.push_back(h);
    }

    /// Pop the oldest waiting thread (`WAIT_QUEUE_POP`).
    pub fn wait_pop(&mut self) -> Option<SavedHandle> {
        self.wait_queue.pop_front()
    }

    /// Number of threads parked on the wait queue.
    pub fn wait_len(&self) -> usize {
        self.wait_queue.len()
    }

    /// Peak bytes ever used in the uni-address region (Table 4's metric).
    pub fn peak_stack_usage(&self) -> u64 {
        self.region.peak_usage()
    }

    /// Virtual-memory accounting for this worker.
    pub fn mem_stats(&self) -> MemStats {
        self.space.stats()
    }

    fn verify_frames(&self, fabric: &Fabric, task: u64, base: u64, size: u64) {
        let mut got = vec![0u8; size as usize];
        fabric
            .mem(self.id)
            .read_local(base, &mut got)
            .expect("frames readable");
        assert_eq!(
            got,
            pattern(task, size as usize),
            "worker {}: task {task} frame bytes corrupted",
            self.id
        );
    }
}

#[cfg(feature = "audit")]
impl UniMgr {
    /// Re-validate this worker's structural invariants and report the
    /// facts the engine-level auditor cross-references (`audit` feature;
    /// DESIGN.md §7). Panics on the first violation.
    pub fn audit(&self, fabric: &Fabric) -> crate::audit::WorkerAudit {
        let r = &self.region;
        // Uni-address packing (Figure 3), as hard checks: `p` inside the
        // region, segments contiguous top-down, the bottom segment's base
        // at `p`, and an empty region fully reclaimed.
        assert!(
            r.p() >= r.start() && r.p() <= r.end(),
            "worker {}: p {:#x} outside the region [{:#x}, {:#x})",
            self.id,
            r.p(),
            r.start(),
            r.end()
        );
        let segs = r.segments();
        for s in segs {
            assert!(
                s.size > 0,
                "worker {}: empty segment for task {}",
                self.id,
                s.task
            );
        }
        for pair in segs.windows(2) {
            assert_eq!(
                pair[1].end(),
                pair[0].base,
                "worker {}: segments of tasks {} and {} are not contiguous",
                self.id,
                pair[0].task,
                pair[1].task
            );
        }
        match (segs.first(), segs.last()) {
            (Some(top), Some(bottom)) => {
                assert!(
                    top.end() <= r.end() && bottom.base >= r.start(),
                    "worker {}: segments escape the region",
                    self.id
                );
                assert_eq!(
                    bottom.base,
                    r.p(),
                    "worker {}: p {:#x} does not sit at the bottom segment (task {})",
                    self.id,
                    r.p(),
                    bottom.task
                );
            }
            _ => assert_eq!(
                r.p(),
                r.end(),
                "worker {}: empty region left p at {:#x}",
                self.id,
                r.p()
            ),
        }
        assert!(
            r.peak_usage() >= r.usage(),
            "worker {}: peak below current usage",
            self.id
        );

        // RDMA-region handles disjoint and in-bounds; every wait-queue
        // handle resolves to a live parked context, and nothing is parked
        // that is not on the wait queue (the engine always pairs
        // suspend with wait_push).
        self.heap.audit(r.start(), r.end());
        assert_eq!(
            self.heap.parked_count(),
            self.wait_queue.len(),
            "worker {}: {} parked contexts but {} wait-queue entries",
            self.id,
            self.heap.parked_count(),
            self.wait_queue.len()
        );
        let mut wait_tasks = Vec::with_capacity(self.wait_queue.len());
        for &h in &self.wait_queue {
            let sctx = self
                .heap
                .get(h)
                .unwrap_or_else(|| panic!("worker {}: wait-queue handle {h:?} dangles", self.id));
            wait_tasks.push(sctx.task);
        }

        // Deque shared words, and every live entry's frames present as a
        // matching region segment (the reverse need not hold: the running
        // task and stale stolen frames have no entry).
        let snap = self.deque.snapshot(fabric).expect("own deque snapshot");
        assert!(
            snap.top <= snap.bottom,
            "worker {}: deque indices inverted (top {} > bottom {})",
            self.id,
            snap.top,
            snap.bottom
        );
        assert!(
            snap.bottom - snap.top <= self.deque.capacity(),
            "worker {}: deque holds {} entries over capacity {}",
            self.id,
            snap.bottom - snap.top,
            self.deque.capacity()
        );
        let mut deque_tasks = Vec::with_capacity(snap.entries.len());
        for e in &snap.entries {
            let seg = r.segment_of(e.task).unwrap_or_else(|| {
                panic!(
                    "worker {}: deque entry for task {} has no region segment",
                    self.id, e.task
                )
            });
            assert_eq!(
                (seg.base, seg.size),
                (e.frame_base, e.frame_size),
                "worker {}: deque entry for task {} disagrees with its segment",
                self.id,
                e.task
            );
            deque_tasks.push(e.task);
        }
        crate::audit::WorkerAudit {
            lock: snap.lock,
            deque_tasks,
            wait_tasks,
            bottom_task: r.bottom().map(|s| s.task),
        }
    }
}

/// The deterministic byte pattern of a task's frames. Copies of frames
/// across suspend/resume/steal must preserve it bit for bit.
pub fn pattern(task: u64, size: usize) -> Vec<u8> {
    let mut v = Vec::new();
    pattern_into(task, size, &mut v);
    v
}

/// [`pattern`] into a caller-provided buffer, so hot paths can reuse one
/// allocation across tasks.
pub fn pattern_into(task: u64, size: usize, out: &mut Vec<u8>) {
    let mut r = SplitMix64::new(task ^ 0xF0A7_5EED);
    out.clear();
    out.reserve(size);
    while out.len() < size {
        out.extend_from_slice(&r.next_u64().to_le_bytes());
    }
    out.truncate(size);
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::{CostModel, Topology};

    fn setup() -> (Fabric, UniMgr, UniMgr) {
        let mut f = Fabric::new(Topology::new(2, 1), CostModel::fx10());
        let cfg = CoreConfig::verified();
        let a = UniMgr::new(&mut f, WorkerId(0), &cfg);
        let b = UniMgr::new(&mut f, WorkerId(1), &cfg);
        (f, a, b)
    }

    #[test]
    fn workers_share_the_uni_address() {
        let (_, a, b) = setup();
        assert_eq!(a.region.start(), b.region.start(), "same VA everywhere");
        assert_eq!(a.region.end(), b.region.end());
    }

    #[test]
    fn spawn_complete_lineage() {
        let (mut f, mut a, _) = setup();
        let p = a.spawn_frame(&mut f, 1, 1024);
        let c = a.spawn_frame(&mut f, 2, 512);
        assert_eq!(c, p - 512, "child packs directly below parent");
        a.complete_bottom(2);
        a.complete_bottom(1);
        assert!(a.region.is_empty());
        assert_eq!(a.peak_stack_usage(), 1536);
    }

    #[test]
    fn suspend_resume_roundtrip_preserves_pattern() {
        let (mut f, mut a, _) = setup();
        let cost = CostModel::fx10();
        a.spawn_frame(&mut f, 1, 2048);
        a.spawn_frame(&mut f, 2, 3055);
        let (h, c_susp) = a.suspend_bottom(&mut f, 2, 7, &cost);
        assert!(c_susp > Cycles(cost.suspend_base));
        // Thread 1 is now the bottom; it finishes and the region drains.
        a.complete_bottom(1);
        assert!(a.region.is_empty());
        // Resume thread 2 at its original address; pattern verified inside.
        let (sctx, _) = a.resume_saved(&mut f, h, &cost);
        assert_eq!(sctx.task, 2);
        assert_eq!(sctx.ctx, 7);
        assert_eq!(a.region.bottom().unwrap().task, 2);
        a.complete_bottom(2);
    }

    #[test]
    fn steal_transfer_preserves_bytes_and_address() {
        let (mut f, mut victim, mut thief) = setup();
        // Victim: parent 1 spawns child 2 (child-first: 2 runs, 1's
        // continuation is stealable).
        let p_base = victim.spawn_frame(&mut f, 1, 3055);
        victim.spawn_frame(&mut f, 2, 800);
        // Thief's region is empty; transfer task 1's frames.
        let done = thief.transfer_stolen_in(&mut f, Cycles(0), WorkerId(0), 1, p_base, 3055);
        assert!(done > Cycles(0));
        // Installed at the same virtual address (pattern checked inside).
        assert_eq!(thief.region.bottom().unwrap().base, p_base);
        // Victim continues: child 2 completes; pop would fail; drain.
        victim.complete_bottom(2);
        victim.on_pop_empty();
        assert!(victim.region.is_empty());
        // Thief can spawn below the stolen continuation.
        let c = thief.spawn_frame(&mut f, 3, 256);
        assert_eq!(c, p_base - 256);
    }

    #[test]
    fn wait_queue_is_fifo() {
        let (mut f, mut a, _) = setup();
        let cost = CostModel::fx10();
        a.spawn_frame(&mut f, 1, 128);
        let (h1, _) = a.suspend_bottom(&mut f, 1, 0, &cost);
        a.spawn_frame(&mut f, 2, 128);
        let (h2, _) = a.suspend_bottom(&mut f, 2, 0, &cost);
        a.wait_push(h1);
        a.wait_push(h2);
        assert_eq!(a.wait_len(), 2);
        assert_eq!(a.wait_pop(), Some(h1));
        assert_eq!(a.wait_pop(), Some(h2));
        assert_eq!(a.wait_pop(), None);
    }

    #[test]
    fn memory_accounting_shows_o1_virtual_memory() {
        let (_, a, _) = setup();
        let cfg = CoreConfig::default();
        let s = a.mem_stats();
        // Reserved VA ≈ uni region + rdma heap + deque, independent of
        // machine size — the scheme's headline property.
        let expect = cfg.uni_region_size
            + cfg.rdma_heap_size
            + uat_vmem::AddressSpace::page_align(SimDeque::footprint(cfg.deque_capacity));
        assert_eq!(s.reserved, expect);
        // Everything is pinned and pre-faulted: zero runtime page faults.
        assert_eq!(s.faults, 0);
        assert_eq!(s.pinned, s.committed);
    }

    #[test]
    fn pattern_is_deterministic_and_distinct() {
        assert_eq!(pattern(5, 100), pattern(5, 100));
        assert_ne!(pattern(5, 100), pattern(6, 100));
        assert_eq!(pattern(5, 0).len(), 0);
        assert_eq!(pattern(5, 13).len(), 13);
    }

    #[test]
    #[should_panic(expected = "uni-address region overflow")]
    fn region_overflow_is_loud() {
        let mut f = Fabric::new(Topology::new(1, 1), CostModel::fx10());
        let cfg = CoreConfig {
            uni_region_size: 8192,
            ..CoreConfig::default()
        };
        let mut a = UniMgr::new(&mut f, WorkerId(0), &cfg);
        a.spawn_frame(&mut f, 1, 5000);
        a.spawn_frame(&mut f, 2, 5000);
    }
}
