//! The uni-address region address discipline (Figure 3).
//!
//! The region is `[S, E)`. A pointer `p` divides it: `[p, E)` is used,
//! `[S, p)` is free; stacks grow downwards. Each live thread owns one
//! contiguous *segment* of the used part; the running thread's segment is
//! the lowest (Section 5.2's invariant). Segments become **dead** when
//! their thread's continuation is stolen — the bytes were copied to the
//! thief, but the addresses cannot be reclaimed until everything below
//! them drains, because `p` moves only at the bottom.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One thread's stack frames in the region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Owning task.
    pub task: u64,
    /// Lowest address of the frames.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Dead = continuation stolen; address space not yet reclaimable.
    pub dead: bool,
}

impl Segment {
    /// One past the highest address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }
}

/// Errors from region operations; each is an invariant violation that a
/// correct scheduler never triggers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionError {
    /// Allocation would run below `S` (stack overflow: the region is
    /// sized for the deepest lineage, like the paper's 1 MiB default).
    Overflow {
        /// Bytes requested.
        requested: u64,
        /// Bytes free below `p`.
        free: u64,
    },
    /// Operation on a task that owns no (live) segment.
    NoSuchSegment {
        /// The offending task id.
        task: u64,
    },
    /// Operation requires the task to own the *bottom* segment.
    NotBottom {
        /// The offending task id.
        task: u64,
    },
    /// Install requires an empty region (the Section 5.2 steal rule).
    NotEmpty,
    /// Install address range is outside `[S, E)`.
    OutOfRange {
        /// Requested base.
        base: u64,
        /// Requested size.
        size: u64,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Overflow { requested, free } => write!(
                f,
                "uni-address region overflow: need {requested} bytes, {free} free (grow CoreConfig::uni_region_size)"
            ),
            RegionError::NoSuchSegment { task } => write!(f, "task {task} owns no segment"),
            RegionError::NotBottom { task } => {
                write!(f, "task {task} does not own the bottom segment")
            }
            RegionError::NotEmpty => write!(f, "install requires an empty region"),
            RegionError::OutOfRange { base, size } => {
                write!(f, "install [{base:#x}, +{size:#x}) outside the region")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// The per-worker uni-address region state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UniRegion {
    /// `S`: lowest address of the region.
    start: u64,
    /// `E`: one past the highest address.
    end: u64,
    /// Next free address; `[p, end)` is used.
    p: u64,
    /// Segments ordered top (highest address, index 0) to bottom.
    segments: Vec<Segment>,
    /// Peak of `end - p` — the Table 4 "stack usage" metric.
    peak_usage: u64,
    /// Total bytes ever allocated (diagnostic).
    total_allocated: u64,
}

impl UniRegion {
    /// A region `[start, start+size)`.
    pub fn new(start: u64, size: u64) -> Self {
        assert!(size > 0, "empty region");
        UniRegion {
            start,
            end: start + size,
            p: start + size,
            segments: Vec::new(),
            peak_usage: 0,
            total_allocated: 0,
        }
    }

    /// `S`.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// `E`.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The free/used boundary `p`.
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Bytes currently used (`E - p`).
    pub fn usage(&self) -> u64 {
        self.end - self.p
    }

    /// Peak bytes used — Table 4's per-benchmark "stack usage".
    pub fn peak_usage(&self) -> u64 {
        self.peak_usage
    }

    /// Whether any segment (live or dead) occupies the region.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Whether any *live* segment remains.
    pub fn has_live(&self) -> bool {
        self.segments.iter().any(|s| !s.dead)
    }

    /// The segments, top (high address) first.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The bottom (running thread's) segment.
    pub fn bottom(&self) -> Option<&Segment> {
        self.segments.last()
    }

    /// The live segment owned by `task`.
    pub fn segment_of(&self, task: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.task == task && !s.dead)
    }

    /// Allocate a new thread's stack of `size` bytes just below `p`
    /// (Figure 3 step 3 / Figure 4's child start). Returns the base.
    pub fn alloc(&mut self, task: u64, size: u64) -> Result<u64, RegionError> {
        assert!(size > 0, "zero-size stack");
        let free = self.p - self.start;
        if size > free {
            return Err(RegionError::Overflow {
                requested: size,
                free,
            });
        }
        let base = self.p - size;
        self.p = base;
        self.segments.push(Segment {
            task,
            base,
            size,
            dead: false,
        });
        self.total_allocated += size;
        self.peak_usage = self.peak_usage.max(self.usage());
        self.check_invariants();
        Ok(base)
    }

    /// Remove the bottom segment, which must belong to `task` (thread exit
    /// or swap-out). `p` rises past it and past any dead segments exposed
    /// above it. Returns the removed segment.
    pub fn release_bottom(&mut self, task: u64) -> Result<Segment, RegionError> {
        let bottom = *self
            .segments
            .last()
            .ok_or(RegionError::NoSuchSegment { task })?;
        if bottom.task != task {
            return Err(RegionError::NotBottom { task });
        }
        self.segments.pop();
        self.p = bottom.end();
        self.reclaim_dead();
        self.check_invariants();
        Ok(bottom)
    }

    /// Mark `task`'s segment dead: its continuation was stolen, the bytes
    /// now live on the thief, but the addresses stay occupied until the
    /// segments below drain.
    pub fn mark_dead(&mut self, task: u64) -> Result<(), RegionError> {
        let seg = self
            .segments
            .iter_mut()
            .find(|s| s.task == task && !s.dead)
            .ok_or(RegionError::NoSuchSegment { task })?;
        seg.dead = true;
        self.reclaim_dead();
        self.check_invariants();
        Ok(())
    }

    /// Mark every remaining segment dead and drain the region. Used when a
    /// pop returns Empty — every ancestor was stolen, so all remaining
    /// frames here are dead copies (Section 5.2 step 5's precondition).
    pub fn drain_all_dead(&mut self) {
        for s in &mut self.segments {
            s.dead = true;
        }
        self.segments.clear();
        self.p = self.end;
        self.check_invariants();
    }

    /// Install a migrated thread's frames at their original address.
    /// Requires the region to be empty — guaranteed because a worker only
    /// steals (or re-admits a waiting thread) with an empty region.
    pub fn install(&mut self, task: u64, base: u64, size: u64) -> Result<(), RegionError> {
        if !self.segments.is_empty() {
            return Err(RegionError::NotEmpty);
        }
        if base < self.start || base + size > self.end {
            return Err(RegionError::OutOfRange { base, size });
        }
        self.segments.push(Segment {
            task,
            base,
            size,
            dead: false,
        });
        self.p = base;
        self.peak_usage = self.peak_usage.max(self.usage());
        self.check_invariants();
        Ok(())
    }

    fn reclaim_dead(&mut self) {
        while let Some(s) = self.segments.last() {
            if !s.dead {
                break;
            }
            self.p = s.end();
            self.segments.pop();
        }
        if self.segments.is_empty() {
            self.p = self.end;
        }
    }

    /// Invariants of Figure 3: segments are contiguous from `E` down to
    /// `p` (after an install, from the installed base), ordered, and the
    /// bottom live segment is the running thread's.
    fn check_invariants(&self) {
        debug_assert!(self.p >= self.start && self.p <= self.end);
        let mut cursor = None::<u64>;
        for s in &self.segments {
            debug_assert!(s.size > 0);
            if let Some(c) = cursor {
                debug_assert_eq!(s.end(), c, "segments must be contiguous");
            }
            cursor = Some(s.base);
        }
        if let Some(bottom) = self.segments.last() {
            debug_assert_eq!(bottom.base, self.p, "p must sit at the bottom segment");
        } else {
            debug_assert_eq!(self.p, self.end, "empty region has p == E");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const S: u64 = 0x1000;
    const SIZE: u64 = 0x10000;

    fn region() -> UniRegion {
        UniRegion::new(S, SIZE)
    }

    #[test]
    fn alloc_packs_downward() {
        let mut r = region();
        let a = r.alloc(1, 100).unwrap();
        let b = r.alloc(2, 200).unwrap();
        assert_eq!(a, S + SIZE - 100);
        assert_eq!(b, a - 200);
        assert_eq!(r.usage(), 300);
        assert_eq!(r.bottom().unwrap().task, 2);
    }

    #[test]
    fn release_bottom_resumes_the_one_above() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        r.alloc(2, 200).unwrap();
        let seg = r.release_bottom(2).unwrap();
        assert_eq!(seg.size, 200);
        assert_eq!(
            r.bottom().unwrap().task,
            1,
            "thread just above is now bottom"
        );
        assert_eq!(r.usage(), 100);
        r.release_bottom(1).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.p(), S + SIZE);
    }

    #[test]
    fn release_checks_owner() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        r.alloc(2, 100).unwrap();
        assert_eq!(r.release_bottom(1), Err(RegionError::NotBottom { task: 1 }));
        let mut empty = region();
        assert_eq!(
            empty.release_bottom(9),
            Err(RegionError::NoSuchSegment { task: 9 })
        );
    }

    #[test]
    fn overflow_detected() {
        let mut r = region();
        r.alloc(1, SIZE - 16).unwrap();
        let err = r.alloc(2, 32).unwrap_err();
        assert_eq!(
            err,
            RegionError::Overflow {
                requested: 32,
                free: 16
            }
        );
    }

    #[test]
    fn dead_segments_block_reclaim_until_exposed() {
        let mut r = region();
        r.alloc(1, 100).unwrap(); // topmost (root-most ancestor)
        r.alloc(2, 100).unwrap();
        r.alloc(3, 100).unwrap(); // running
                                  // Ancestor 1 stolen: its addresses stay used.
        r.mark_dead(1).unwrap();
        assert_eq!(r.usage(), 300);
        // Running thread finishes; 2 resumes; usage drops by one segment.
        r.release_bottom(3).unwrap();
        assert_eq!(r.usage(), 200);
        // 2 finishes: the dead segment above is exposed and reclaimed too.
        r.release_bottom(2).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.usage(), 0);
    }

    #[test]
    fn mark_dead_bottom_reclaims_immediately() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        r.mark_dead(1).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.p(), S + SIZE);
    }

    #[test]
    fn drain_all_dead_empties() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        r.alloc(2, 100).unwrap();
        r.drain_all_dead();
        assert!(r.is_empty());
        assert_eq!(r.usage(), 0);
    }

    #[test]
    fn install_requires_empty() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        assert_eq!(r.install(5, S + 0x800, 256), Err(RegionError::NotEmpty));
        r.release_bottom(1).unwrap();
        r.install(5, S + 0x800, 256).unwrap();
        assert_eq!(r.bottom().unwrap().task, 5);
        assert_eq!(r.p(), S + 0x800);
        // Subsequent children pack below the installed base.
        let c = r.alloc(6, 64).unwrap();
        assert_eq!(c, S + 0x800 - 64);
    }

    #[test]
    fn install_range_checked() {
        let mut r = region();
        assert!(matches!(
            r.install(5, S - 0x100, 64),
            Err(RegionError::OutOfRange { .. })
        ));
        assert!(matches!(
            r.install(5, S + SIZE - 8, 64),
            Err(RegionError::OutOfRange { .. })
        ));
    }

    #[test]
    fn peak_usage_tracks_table4_metric() {
        let mut r = region();
        r.alloc(1, 1000).unwrap();
        r.alloc(2, 2000).unwrap();
        r.release_bottom(2).unwrap();
        r.alloc(3, 500).unwrap();
        assert_eq!(r.peak_usage(), 3000);
        assert_eq!(r.usage(), 1500);
    }

    #[test]
    fn segment_lookup_skips_dead() {
        let mut r = region();
        r.alloc(1, 100).unwrap();
        r.alloc(2, 100).unwrap();
        r.mark_dead(1).unwrap();
        assert!(r.segment_of(1).is_none());
        assert!(r.segment_of(2).is_some());
    }

    proptest! {
        /// Random spawn/complete/steal sequences keep the region coherent:
        /// usage equals the sum of segment sizes plus trapped dead space,
        /// and the region always drains to empty.
        #[test]
        fn random_lineage_drains_clean(ops in proptest::collection::vec((0u8..3, 16u64..512), 1..300)) {
            let mut r = UniRegion::new(0x1000, 1 << 20);
            let mut next_task = 0u64;
            let mut lineage: Vec<u64> = Vec::new(); // live tasks, oldest first
            for (kind, size) in ops {
                match kind {
                    0 => {
                        // spawn a child below the current bottom
                        if r.alloc(next_task, size).is_ok() {
                            lineage.push(next_task);
                            next_task += 1;
                        }
                    }
                    1 => {
                        // running task completes
                        if let Some(t) = lineage.pop() {
                            r.release_bottom(t).unwrap();
                        }
                    }
                    _ => {
                        // steal the oldest (FIFO) live ancestor that is
                        // not the running task
                        if lineage.len() >= 2 {
                            let t = lineage.remove(0);
                            r.mark_dead(t).unwrap();
                        }
                    }
                }
                let live: u64 = r.segments().iter().filter(|s| !s.dead).map(|s| s.size).sum();
                prop_assert!(r.usage() >= live);
            }
            while let Some(t) = lineage.pop() {
                r.release_bottom(t).unwrap();
            }
            prop_assert!(r.is_empty());
            prop_assert_eq!(r.usage(), 0);
        }
    }
}
