//! The RDMA region: pinned storage for suspended threads (Figure 8).
//!
//! `suspend()` packs the suspending thread — saved registers plus its
//! stack frames — into `pinned_malloc`ed memory so the uni-address region
//! can host whatever runs next. [`RdmaHeap`] owns that region: a
//! [`RegionAllocator`] over registered fabric memory plus the table of
//! [`SavedContext`]s. The bytes really move: a suspend copies the frames
//! out of the uni-address region's fabric memory into the heap's, and a
//! resume copies them back (`resume_saved_context_1`'s memcpy in
//! Figure 7).

use serde::{Deserialize, Serialize};
use uat_base::WorkerId;
use uat_rdma::Fabric;
use uat_vmem::RegionAllocator;

/// Handle to a saved (suspended) thread context on one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SavedHandle(pub u64);

/// A packed suspended thread (`saved_context_t` in Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SavedContext {
    /// The suspended task.
    pub task: u64,
    /// Opaque resume point (`ip`/`ctx` in the paper; the simulator stores
    /// the task program counter here).
    pub ctx: u64,
    /// Original lowest stack address in the uni-address region
    /// (`stack_top`); resume copies the frames back to exactly here.
    pub stack_top: u64,
    /// Size of the saved frames (`stack_size`).
    pub stack_size: u64,
    /// Where the frames were parked in the RDMA region (`stack_buf`).
    pub stack_buf: u64,
}

/// Per-worker RDMA region: allocator + saved-context table.
#[derive(Debug)]
pub struct RdmaHeap {
    owner: WorkerId,
    alloc: RegionAllocator,
    saved: Vec<Option<SavedContext>>,
    free_slots: Vec<u64>,
    /// Peak bytes parked at once (part of the pinned-memory accounting).
    peak_parked: u64,
}

impl RdmaHeap {
    /// A heap over the registered region `[base, base+size)` of `owner`.
    pub fn new(owner: WorkerId, base: u64, size: u64) -> Self {
        RdmaHeap {
            owner,
            alloc: RegionAllocator::new(base, size, 16),
            saved: Vec::new(),
            free_slots: Vec::new(),
            peak_parked: 0,
        }
    }

    /// Park a thread: copy `stack_size` bytes from `stack_top` (in the
    /// owner's uni-address region) into freshly allocated heap space, and
    /// record the context. The copy goes through fabric memory for real.
    pub fn park(
        &mut self,
        fabric: &mut Fabric,
        task: u64,
        ctx: u64,
        stack_top: u64,
        stack_size: u64,
    ) -> SavedHandle {
        let stack_buf = self
            .alloc
            .alloc(stack_size)
            .expect("RDMA region exhausted; grow CoreConfig::rdma_heap_size");
        // memcpy(sctx->stack_buf, stack_top, stack_size)
        let mut bytes = vec![0u8; stack_size as usize];
        let mem = fabric.mem_mut(self.owner);
        mem.read_local(stack_top, &mut bytes)
            .expect("suspending frames must be in registered memory");
        mem.write_local(stack_buf, &bytes)
            .expect("heap region is registered");
        self.peak_parked = self.peak_parked.max(self.alloc.used());
        let sctx = SavedContext {
            task,
            ctx,
            stack_top,
            stack_size,
            stack_buf,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.saved[s as usize] = Some(sctx);
                s
            }
            None => {
                self.saved.push(Some(sctx));
                (self.saved.len() - 1) as u64
            }
        };
        SavedHandle(slot)
    }

    /// Inspect a parked context.
    pub fn get(&self, h: SavedHandle) -> Option<&SavedContext> {
        self.saved.get(h.0 as usize)?.as_ref()
    }

    /// Unpark a thread: copy its frames back to their original address in
    /// the uni-address region and free the heap block. Returns the
    /// context (the caller reinstalls the region segment and resumes).
    pub fn unpark(&mut self, fabric: &mut Fabric, h: SavedHandle) -> SavedContext {
        let sctx = self.saved[h.0 as usize]
            .take()
            .expect("unpark of a live handle");
        self.free_slots.push(h.0);
        // memcpy(next_sctx->stack_top, sctx->stack_buf, stack_size)
        let mut bytes = vec![0u8; sctx.stack_size as usize];
        let mem = fabric.mem_mut(self.owner);
        mem.read_local(sctx.stack_buf, &mut bytes)
            .expect("parked frames are in the heap region");
        mem.write_local(sctx.stack_top, &bytes)
            .expect("uni-address region is registered");
        self.alloc.free(sctx.stack_buf);
        sctx
    }

    /// Bytes currently parked.
    pub fn parked_bytes(&self) -> u64 {
        self.alloc.used()
    }

    /// Peak bytes parked at once.
    pub fn peak_parked(&self) -> u64 {
        self.peak_parked
    }

    /// Number of currently parked threads.
    pub fn parked_count(&self) -> usize {
        self.saved.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(feature = "audit")]
impl RdmaHeap {
    /// Hard-check the saved-context table (`audit` feature): allocator
    /// blocks disjoint and in-bounds, every parked stack buffer inside
    /// the heap region and backed by a live allocation of sufficient
    /// size, and every saved stack's home address inside the caller's
    /// uni-address region `[stack_lo, stack_hi)`.
    pub fn audit(&self, stack_lo: u64, stack_hi: u64) {
        self.alloc.check_invariants();
        let base = self.alloc.base();
        let end = base + self.alloc.capacity();
        let mut parked_sum = 0u64;
        for sctx in self.saved.iter().flatten() {
            assert!(
                sctx.stack_buf >= base && sctx.stack_buf + sctx.stack_size <= end,
                "worker {}: task {}'s parked frames [{:#x}, +{:#x}) escape the RDMA region [{base:#x}, {end:#x})",
                self.owner,
                sctx.task,
                sctx.stack_buf,
                sctx.stack_size
            );
            assert!(
                self.alloc
                    .size_of(sctx.stack_buf)
                    .is_some_and(|sz| sz >= sctx.stack_size),
                "worker {}: task {}'s parked frames at {:#x} have no backing allocation",
                self.owner,
                sctx.task,
                sctx.stack_buf
            );
            assert!(
                sctx.stack_top >= stack_lo && sctx.stack_top + sctx.stack_size <= stack_hi,
                "worker {}: task {}'s home address [{:#x}, +{:#x}) escapes the uni-address region",
                self.owner,
                sctx.task,
                sctx.stack_top,
                sctx.stack_size
            );
            parked_sum += sctx.stack_size;
        }
        assert!(
            self.alloc.used() >= parked_sum,
            "worker {}: allocator accounts {} bytes used but {} bytes are parked",
            self.owner,
            self.alloc.used(),
            parked_sum
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::{CostModel, Topology};

    const W: WorkerId = WorkerId(0);
    const UNI: u64 = 0x10_000;
    const HEAP: u64 = 0x100_000;

    fn setup() -> (Fabric, RdmaHeap) {
        let mut f = Fabric::new(Topology::new(1, 1), CostModel::fx10());
        f.register(W, UNI, 64 << 10).unwrap();
        f.register(W, HEAP, 64 << 10).unwrap();
        (f, RdmaHeap::new(W, HEAP, 64 << 10))
    }

    #[test]
    fn park_unpark_preserves_bytes() {
        let (mut f, mut h) = setup();
        let frames: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        let top = UNI + 1024;
        f.mem_mut(W).write_local(top, &frames).unwrap();
        let handle = h.park(&mut f, 1, 42, top, frames.len() as u64);
        assert_eq!(h.parked_count(), 1);
        assert!(h.parked_bytes() >= frames.len() as u64);
        // Clobber the original location (another thread runs there).
        f.mem_mut(W)
            .write_local(top, &vec![0xEE; frames.len()])
            .unwrap();
        let sctx = h.unpark(&mut f, handle);
        assert_eq!(sctx.task, 1);
        assert_eq!(sctx.ctx, 42);
        assert_eq!(sctx.stack_top, top);
        let mut back = vec![0u8; frames.len()];
        f.mem(W).read_local(top, &mut back).unwrap();
        assert_eq!(back, frames, "frames restored to the original address");
        assert_eq!(h.parked_count(), 0);
        assert_eq!(h.parked_bytes(), 0);
    }

    #[test]
    fn many_parked_threads_coexist() {
        let (mut f, mut h) = setup();
        let mut handles = Vec::new();
        for i in 0..10u64 {
            let top = UNI + i * 512;
            let data = vec![i as u8 + 1; 256];
            f.mem_mut(W).write_local(top, &data).unwrap();
            handles.push((h.park(&mut f, i, i, top, 256), i));
        }
        assert_eq!(h.parked_count(), 10);
        // Unpark out of order.
        for &(handle, i) in handles.iter().rev() {
            let sctx = h.unpark(&mut f, handle);
            assert_eq!(sctx.task, i);
            let mut b = vec![0u8; 256];
            f.mem(W).read_local(sctx.stack_top, &mut b).unwrap();
            assert_eq!(b, vec![i as u8 + 1; 256]);
        }
        assert_eq!(h.peak_parked(), 10 * 256);
    }

    #[test]
    fn slots_recycle() {
        let (mut f, mut h) = setup();
        f.mem_mut(W).write_local(UNI, &[1; 64]).unwrap();
        let a = h.park(&mut f, 1, 0, UNI, 64);
        h.unpark(&mut f, a);
        let b = h.park(&mut f, 2, 0, UNI, 64);
        assert_eq!(a, b, "slot reused");
        assert_eq!(h.get(b).unwrap().task, 2);
    }

    #[test]
    #[should_panic(expected = "unpark of a live handle")]
    fn double_unpark_panics() {
        let (mut f, mut h) = setup();
        f.mem_mut(W).write_local(UNI, &[1; 64]).unwrap();
        let a = h.park(&mut f, 1, 0, UNI, 64);
        h.unpark(&mut f, a);
        h.unpark(&mut f, a);
    }
}
