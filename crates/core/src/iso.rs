//! The iso-address baseline (Section 4).
//!
//! Iso-address [Antoniu, Bougé & Namyst, 1999] guarantees that a migrated
//! stack keeps its virtual address by making every stack's address
//! *globally unique* and reserving the union of all stacks' addresses in
//! **every** process. Migration is then a bitwise copy to the same
//! address. The costs, which this module reproduces so the `iso_vs_uni`
//! experiment can measure them:
//!
//! 1. virtual address space: every worker reserves
//!    `workers × stacks-per-worker × stack-size` bytes (2^49 in the
//!    paper's example — beyond x86-64);
//! 2. physical memory + page faults: the destination of a migration
//!    touches the incoming stack's pages for the first time in *its*
//!    address space (21K cycles each on SPARC64IXfx);
//! 3. no RDMA: the reservation cannot be pinned, so a stack transfer
//!    needs the victim node's assistance (modelled via the comm server,
//!    like the software fetch-and-add) instead of a one-sided READ.
//!
//! The task queue itself is kept identical to the uni-address runtime's
//! (small and pinnable); the paper's own Section 6.3 comparison varies
//! only the migration path, and so do we.

use crate::config::CoreConfig;
use crate::heap::SavedHandle;
use crate::uni::pattern;
use std::collections::{HashMap, VecDeque};
use uat_base::{CostModel, Cycles, WorkerId};
use uat_deque::SimDeque;
use uat_rdma::Fabric;
use uat_vmem::{AddressSpace, MemStats, PAGE_SIZE};

/// Base virtual address of the global iso-address stack range.
pub const ISO_BASE: u64 = 0x4000_0000_0000;

/// One task's stack in the iso scheme: a globally-unique address plus the
/// live frame bytes (kept out of fabric memory — the range is unpinnable,
/// which is the point).
#[derive(Clone, Debug)]
pub struct IsoStack {
    /// Globally unique base address.
    pub base: u64,
    /// Live frame bytes.
    pub bytes: Vec<u8>,
}

#[derive(Clone, Copy, Debug)]
struct IsoSaved {
    task: u64,
    ctx: u64,
}

/// Per-worker state of the iso-address baseline.
#[derive(Debug)]
pub struct IsoMgr {
    id: WorkerId,
    /// Simulated process address space holding the full global
    /// reservation (memory accounting).
    pub space: AddressSpace,
    /// This worker's work-stealing queue.
    pub deque: SimDeque,
    stack_size: u64,
    slab_base: u64,
    slab_end: u64,
    next_slot: u64,
    free_slots: Vec<u64>,
    /// Stacks currently resident on this worker, by task.
    stacks: HashMap<u64, IsoStack>,
    saved: Vec<Option<IsoSaved>>,
    free_saved: Vec<u64>,
    wait_queue: VecDeque<SavedHandle>,
    live_bytes: u64,
    peak_live_bytes: u64,
    verify: bool,
}

impl IsoMgr {
    /// Set up a worker for a machine of `total_workers` workers: reserve
    /// the entire global stack range (this is iso-address's defining
    /// cost), plus queue memory.
    ///
    /// Panics if the reservation exceeds the 2^48 x86-64 address space —
    /// exactly the failure mode of the paper's Section 4 example.
    pub fn new(fabric: &mut Fabric, id: WorkerId, cfg: &CoreConfig, total_workers: u64) -> Self {
        let mut space = AddressSpace::new();
        let global = cfg.iso_global_range(total_workers);
        space.reserve_at(ISO_BASE, global).unwrap_or_else(|e| {
            panic!(
                "iso-address global reservation of {global:#x} bytes failed: {e} \
                 (this is the scalability wall the paper describes)"
            )
        });
        let slab_size = cfg.iso_stacks_per_worker * cfg.iso_stack_size;
        let slab_base = ISO_BASE + id.0 as u64 * slab_size;

        let dq_bytes = SimDeque::footprint(cfg.deque_capacity);
        let dq_r = space.reserve(dq_bytes).expect("deque region");
        space.pin(dq_r.base, dq_r.len).expect("pin deque");
        fabric
            .register(id, dq_r.base, dq_bytes as usize)
            .expect("register deque");
        let deque = SimDeque::init(fabric, id, dq_r.base, cfg.deque_capacity).expect("init deque");

        IsoMgr {
            id,
            space,
            deque,
            stack_size: cfg.iso_stack_size,
            slab_base,
            slab_end: slab_base + slab_size,
            next_slot: slab_base,
            free_slots: Vec::new(),
            stacks: HashMap::new(),
            saved: Vec::new(),
            free_saved: Vec::new(),
            wait_queue: VecDeque::new(),
            live_bytes: 0,
            peak_live_bytes: 0,
            verify: cfg.verify_stack_bytes,
        }
    }

    /// The worker this manager belongs to.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Spawn: carve a globally-unique stack slot from this worker's slab
    /// and touch its pages (first-touch faults are real in iso-address —
    /// the range cannot be pre-faulted). Returns `(base, faults)`.
    pub fn spawn_frame(&mut self, task: u64, size: u64) -> (u64, u64) {
        assert!(
            size <= self.stack_size,
            "frame of {size} bytes exceeds the iso stack reservation of {} \
             (grow CoreConfig::iso_stack_size)",
            self.stack_size
        );
        let base = match self.free_slots.pop() {
            Some(b) => b,
            None => {
                assert!(
                    self.next_slot < self.slab_end,
                    "worker {} exhausted its iso-address slab; grow \
                     CoreConfig::iso_stacks_per_worker",
                    self.id
                );
                let b = self.next_slot;
                self.next_slot += self.stack_size;
                b
            }
        };
        let faults = self.space.touch(base, size).expect("slab is reserved");
        self.stacks.insert(
            task,
            IsoStack {
                base,
                bytes: pattern(task, size as usize),
            },
        );
        self.live_bytes += size;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        (base, faults)
    }

    /// The running task exits. Returns `(slab_owner, slot_base)` so the
    /// cluster can return the address to the worker whose slab it came
    /// from (after a migration that is a *different* worker — address
    /// recycling is inherently non-local in iso).
    pub fn complete(&mut self, task: u64, cfg_slab_size: u64) -> (WorkerId, u64) {
        let st = self
            .stacks
            .remove(&task)
            .unwrap_or_else(|| panic!("worker {}: task {task} has no stack", self.id));
        self.live_bytes -= st.bytes.len() as u64;
        let owner = WorkerId(((st.base - ISO_BASE) / cfg_slab_size) as u32);
        (owner, st.base)
    }

    /// Return a recycled slot to this worker's free list.
    pub fn reclaim_slot(&mut self, base: u64) {
        debug_assert!(base >= self.slab_base && base < self.slab_end);
        self.free_slots.push(base);
    }

    /// Suspend the running task. No copy: the stack already lives at its
    /// forever-address — iso's one advantage, reflected in the cost.
    pub fn suspend(&mut self, task: u64, ctx: u64, cost: &CostModel) -> (SavedHandle, Cycles) {
        debug_assert!(self.stacks.contains_key(&task));
        let rec = IsoSaved { task, ctx };
        let slot = match self.free_saved.pop() {
            Some(s) => {
                self.saved[s as usize] = Some(rec);
                s
            }
            None => {
                self.saved.push(Some(rec));
                (self.saved.len() - 1) as u64
            }
        };
        (SavedHandle(slot), Cycles(cost.suspend_base))
    }

    /// Resume a suspended task. Returns `(task, ctx, cost)`.
    pub fn resume_saved(&mut self, h: SavedHandle, cost: &CostModel) -> (u64, u64, Cycles) {
        let rec = self.saved[h.0 as usize]
            .take()
            .expect("resume of a live handle");
        self.free_saved.push(h.0);
        (rec.task, rec.ctx, Cycles(cost.resume_base))
    }

    /// Migrate a stolen task's stack from `victim` into this worker.
    ///
    /// Two-sided: the request is served by the victim node's comm server
    /// (same queueing machinery as the software fetch-and-add), then the
    /// stack bytes travel, then this address space takes first-touch page
    /// faults for every page it has never mapped — the 21K-cycle cost the
    /// paper's Section 6.3 estimate is built on. Returns
    /// `(completion, faults)`.
    pub fn transfer_stolen_in(
        &mut self,
        fabric: &mut Fabric,
        now: Cycles,
        victim: &mut IsoMgr,
        task: u64,
    ) -> (Cycles, u64) {
        let st = victim
            .stacks
            .remove(&task)
            .unwrap_or_else(|| panic!("victim {} lost task {task}'s stack", victim.id));
        victim.live_bytes -= st.bytes.len() as u64;
        let size = st.bytes.len() as u64;
        let cost = fabric.cost_model().clone();
        // Victim-assisted request through the victim node's comm server:
        // reuse the fabric's FAA path for its queueing semantics by
        // modelling request+service, then the payload at READ bandwidth.
        let assist = Cycles(cost.faa_notice_latency + cost.faa_service);
        let intra = fabric.topology().same_node(self.id, victim.id);
        let payload = cost.rdma_read(size as usize, intra);
        // Same address, new address space: first touches fault here.
        let faults = self
            .space
            .touch(st.base, size)
            .expect("global range reserved");
        let fault_cycles = Cycles(faults * cost.page_fault);
        if self.verify {
            assert_eq!(
                st.bytes,
                pattern(task, size as usize),
                "iso migration corrupted task {task}'s stack"
            );
        }
        self.stacks.insert(task, st);
        self.live_bytes += size;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        (now + assist + payload + fault_cycles, faults)
    }

    /// Iso has no shared region to drain; kept for interface symmetry.
    pub fn on_pop_empty(&mut self) {}

    /// Push a suspended thread on the wait queue.
    pub fn wait_push(&mut self, h: SavedHandle) {
        self.wait_queue.push_back(h);
    }

    /// Pop the oldest waiting thread.
    pub fn wait_pop(&mut self) -> Option<SavedHandle> {
        self.wait_queue.pop_front()
    }

    /// Number of threads on the wait queue.
    pub fn wait_len(&self) -> usize {
        self.wait_queue.len()
    }

    /// Peak bytes of live stacks resident at once (iso's analogue of the
    /// Table 4 stack-usage column).
    pub fn peak_stack_usage(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Virtual-memory accounting; `reserved` shows the global range.
    pub fn mem_stats(&self) -> MemStats {
        self.space.stats()
    }

    /// Pages this address space has committed for stacks (the `(1+mr)`
    /// physical growth of Section 4, measurable per worker).
    pub fn committed_stack_pages(&self) -> u64 {
        // Committed = stacks (touched) + deque (pinned); subtract pinned.
        (self.space.stats().committed - self.space.stats().pinned) / PAGE_SIZE
    }
}

#[cfg(feature = "audit")]
impl IsoMgr {
    /// Re-validate this worker's structural invariants and report the
    /// facts the engine-level auditor cross-references (`audit` feature;
    /// DESIGN.md §7). Panics on the first violation.
    pub fn audit(&self, fabric: &Fabric) -> crate::audit::WorkerAudit {
        // Resident stacks: globally-unique addresses (pairwise distinct,
        // at or above the global base), each within its slot's size, and
        // the live-byte accounting exact.
        let mut bases = std::collections::HashSet::new();
        let mut live = 0u64;
        for (task, st) in &self.stacks {
            assert!(
                st.base >= ISO_BASE,
                "worker {}: task {task}'s stack at {:#x} below the global range",
                self.id,
                st.base
            );
            assert!(
                st.bytes.len() as u64 <= self.stack_size,
                "worker {}: task {task}'s stack outgrew its iso slot",
                self.id
            );
            assert!(
                bases.insert(st.base),
                "worker {}: two resident stacks share address {:#x}",
                self.id,
                st.base
            );
            live += st.bytes.len() as u64;
        }
        assert_eq!(
            live, self.live_bytes,
            "worker {}: live-byte accounting drifted",
            self.id
        );
        assert!(self.peak_live_bytes >= self.live_bytes);
        assert!(self.next_slot >= self.slab_base && self.next_slot <= self.slab_end);
        for &s in &self.free_slots {
            assert!(
                s >= self.slab_base && s < self.slab_end,
                "worker {}: foreign slot {s:#x} on the local free list",
                self.id
            );
        }

        // Wait queue: every handle resolves, and a suspended iso thread
        // keeps its stack resident (suspend copies nothing out).
        let mut wait_tasks = Vec::with_capacity(self.wait_queue.len());
        for &h in &self.wait_queue {
            let rec = self
                .saved
                .get(h.0 as usize)
                .and_then(|s| *s)
                .unwrap_or_else(|| panic!("worker {}: wait-queue handle {h:?} dangles", self.id));
            assert!(
                self.stacks.contains_key(&rec.task),
                "worker {}: suspended task {} lost its resident stack",
                self.id,
                rec.task
            );
            wait_tasks.push(rec.task);
        }

        // Deque shared words; every live entry's task has a resident stack.
        let snap = self.deque.snapshot(fabric).expect("own deque snapshot");
        assert!(
            snap.top <= snap.bottom,
            "worker {}: deque indices inverted (top {} > bottom {})",
            self.id,
            snap.top,
            snap.bottom
        );
        assert!(
            snap.bottom - snap.top <= self.deque.capacity(),
            "worker {}: deque holds {} entries over capacity {}",
            self.id,
            snap.bottom - snap.top,
            self.deque.capacity()
        );
        let mut deque_tasks = Vec::with_capacity(snap.entries.len());
        for e in &snap.entries {
            assert!(
                self.stacks.contains_key(&e.task),
                "worker {}: deque entry for task {} has no resident stack",
                self.id,
                e.task
            );
            deque_tasks.push(e.task);
        }
        crate::audit::WorkerAudit {
            lock: snap.lock,
            deque_tasks,
            wait_tasks,
            bottom_task: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::Topology;

    fn cfg() -> CoreConfig {
        CoreConfig {
            iso_stack_size: 16 << 10,
            iso_stacks_per_worker: 64,
            verify_stack_bytes: true,
            ..CoreConfig::default()
        }
    }

    fn setup() -> (Fabric, IsoMgr, IsoMgr, CoreConfig) {
        let mut f = Fabric::new(Topology::new(2, 1), CostModel::fx10());
        let c = cfg();
        let a = IsoMgr::new(&mut f, WorkerId(0), &c, 2);
        let b = IsoMgr::new(&mut f, WorkerId(1), &c, 2);
        (f, a, b, c)
    }

    #[test]
    fn every_worker_reserves_the_global_range() {
        let (_, a, b, c) = setup();
        let global = c.iso_global_range(2);
        assert!(a.mem_stats().reserved >= global);
        assert!(b.mem_stats().reserved >= global);
        // Compare with uni: each worker here reserves 2 workers' worth;
        // at 3840 workers this is what explodes.
        assert_eq!(global, 2 * 64 * (16 << 10));
    }

    #[test]
    fn stacks_get_globally_unique_addresses() {
        let (_, mut a, mut b, _) = setup();
        let (a1, _) = a.spawn_frame(1, 1000);
        let (a2, _) = a.spawn_frame(2, 1000);
        let (b1, _) = b.spawn_frame(3, 1000);
        assert_ne!(a1, a2);
        assert!(a1 < a.slab_end && a1 >= a.slab_base);
        assert!(b1 >= b.slab_base, "different worker, disjoint slab");
        assert_ne!(a1, b1);
    }

    #[test]
    fn first_touch_faults_then_silence() {
        let (_, mut a, _, _) = setup();
        let (_, f1) = a.spawn_frame(1, 5000);
        assert_eq!(f1, 2, "5000 bytes = 2 pages faulted");
        let slab = 64 * (16u64 << 10);
        let (owner, base) = a.complete(1, slab);
        assert_eq!(owner, WorkerId(0));
        a.reclaim_slot(base);
        // Reusing the slot faults nothing: pages stay committed.
        let (_, f2) = a.spawn_frame(2, 5000);
        assert_eq!(f2, 0);
    }

    #[test]
    fn migration_faults_on_the_destination() {
        let (mut fab, mut a, mut b, c) = setup();
        let (base, _) = a.spawn_frame(7, 3055);
        let (done, faults) = b.transfer_stolen_in(&mut fab, Cycles(0), &mut a, 7);
        assert_eq!(faults, 1, "3055 bytes on a fresh page = 1 fault");
        // Completion includes assist + payload + 21K-cycle fault.
        assert!(done.get() > 21_000);
        // The stack kept its address; a second migration back would fault
        // nothing new on A (its pages are already committed there).
        let (done2, faults2) = a.transfer_stolen_in(&mut fab, done, &mut b, 7);
        assert_eq!(faults2, 0);
        assert!(done2 > done);
        let slab = c.iso_stacks_per_worker * c.iso_stack_size;
        let (owner, slot) = a.complete(7, slab);
        assert_eq!(owner, WorkerId(0));
        assert_eq!(slot, base);
    }

    #[test]
    fn suspend_resume_without_copies() {
        let (_, mut a, _, _) = setup();
        let cost = CostModel::fx10();
        a.spawn_frame(1, 2000);
        let (h, c_susp) = a.suspend(1, 99, &cost);
        assert_eq!(
            c_susp,
            Cycles(cost.suspend_base),
            "no memcpy in iso suspend"
        );
        a.wait_push(h);
        let h2 = a.wait_pop().unwrap();
        let (task, ctx, _) = a.resume_saved(h2, &cost);
        assert_eq!((task, ctx), (1, 99));
    }

    #[test]
    fn slab_exhaustion_is_loud() {
        let mut fab = Fabric::new(Topology::new(4, 1), CostModel::fx10());
        let c = CoreConfig {
            iso_stacks_per_worker: 2,
            ..cfg()
        };
        let mut m = IsoMgr::new(&mut fab, WorkerId(2), &c, 4);
        m.spawn_frame(1, 100);
        m.spawn_frame(2, 100);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.spawn_frame(3, 100);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn peak_live_bytes_tracks() {
        let (_, mut a, _, c) = setup();
        let slab = c.iso_stacks_per_worker * c.iso_stack_size;
        a.spawn_frame(1, 1000);
        a.spawn_frame(2, 2000);
        let (_, s) = a.complete(2, slab);
        a.reclaim_slot(s);
        assert_eq!(a.peak_stack_usage(), 3000);
    }
}
