//! Worker-level invariant auditing (the default-off `audit` feature).
//!
//! [`UniMgr::audit`](crate::UniMgr::audit) and
//! [`IsoMgr::audit`](crate::IsoMgr::audit) hard-re-check the structural
//! invariants their modules normally only `debug_assert` — uni-address
//! packing contiguous from the region's high end, RDMA-region blocks
//! disjoint and in-bounds, wait-queue handles resolving to live saved
//! contexts — and then report a [`WorkerAudit`]: the set of tasks each
//! structure is holding. The engine in `uat-cluster` (built with its own
//! `audit` feature) cross-references those facts against its task table
//! after every event, closing the loop on per-worker task conservation:
//! every live task must be found in exactly one place.
//!
//! See DESIGN.md §7 for the invariant catalogue this implements.

/// Best-effort extraction of the human-readable message from a caught
/// audit panic payload.
///
/// Every audit check in this crate and in the engine raises violations
/// via `assert!`-family macros, whose payloads are `String` (formatted)
/// or `&'static str` (literal). The engine's flight recorder catches
/// the unwind, calls this to recover the violation text for the trace
/// file's metadata, and re-raises.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
}

/// Facts one worker's structures report to the engine-level auditor,
/// produced after the worker's own internal hard-checks pass.
#[derive(Clone, Debug)]
pub struct WorkerAudit {
    /// Deque lock word (0 = free; nonzero while a thief is inside its
    /// locked critical section, counting unreaped failed-FAA residue).
    pub lock: u64,
    /// Tasks with live entries in this worker's deque, oldest first.
    pub deque_tasks: Vec<u64>,
    /// Tasks parked on this worker's wait queue, FIFO order.
    pub wait_tasks: Vec<u64>,
    /// The task owning the region's bottom (running-position) segment.
    /// Uni only — `None` for iso or for an empty region. May name a
    /// *stale* segment (stolen, not yet drained) when the worker is
    /// between tasks; the engine compares it only against a live
    /// current/blocked task.
    pub bottom_task: Option<u64>,
}
