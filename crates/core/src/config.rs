//! Configuration of the per-worker memory layout.

use serde::{Deserialize, Serialize};

/// Sizes and placement of the per-worker regions.
///
/// The defaults mirror the paper's setup: a uni-address region comfortably
/// above the ≤144 KiB the benchmarks ever use (Table 4), an RDMA region for
/// suspended stacks, and a deque deep enough for any lineage the
/// benchmarks produce.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Virtual address of the uni-address region — the *same* in every
    /// worker's address space; that equality is the scheme.
    pub uni_base: u64,
    /// Size of the uni-address region in bytes.
    pub uni_region_size: u64,
    /// Size of the pinned RDMA region for suspended stacks.
    pub rdma_heap_size: u64,
    /// Capacity of the work-stealing queue, in entries.
    pub deque_capacity: u64,
    /// Iso-address baseline: reserved bytes per stack (the paper's
    /// Section 4 example uses 16 KiB).
    pub iso_stack_size: u64,
    /// Iso-address baseline: stacks reserved per worker (the per-worker
    /// slab of the global range; ≈ max task-tree depth).
    pub iso_stacks_per_worker: u64,
    /// Fill stack frames with a per-task byte pattern and verify it after
    /// every copy (suspend/resume/steal). Costs CPU time in big runs;
    /// enabled in tests.
    pub verify_stack_bytes: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            uni_base: 0x7f80_0000_0000,
            uni_region_size: 1 << 20, // 1 MiB
            rdma_heap_size: 8 << 20,  // 8 MiB
            deque_capacity: 4096,
            iso_stack_size: 16 << 10,       // 16 KiB (paper's estimate)
            iso_stacks_per_worker: 1 << 13, // tree depth ~8K (paper's example)
            verify_stack_bytes: false,
        }
    }
}

impl CoreConfig {
    /// A configuration with byte-pattern verification on (for tests).
    pub fn verified() -> Self {
        CoreConfig {
            verify_stack_bytes: true,
            ..Default::default()
        }
    }

    /// Iso-address: bytes of the global stack range that *every* worker
    /// must reserve, for a machine of `total_workers` workers.
    pub fn iso_global_range(&self, total_workers: u64) -> u64 {
        total_workers * self.iso_stacks_per_worker * self.iso_stack_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CoreConfig::default();
        assert!(c.uni_region_size >= 144 * 1024, "must fit Table 4's peak");
        assert_eq!(c.uni_base % 4096, 0);
    }

    #[test]
    fn iso_range_reproduces_section4_arithmetic() {
        // 2^22 workers × 2^13 stacks × 2^14 bytes = 2^49.
        let c = CoreConfig {
            iso_stack_size: 1 << 14,
            iso_stacks_per_worker: 1 << 13,
            ..Default::default()
        };
        assert_eq!(c.iso_global_range(1 << 22), 1 << 49);
    }
}
