//! Unified interface over the two thread-management schemes.
//!
//! The cluster's scheduler is scheme-agnostic: it drives a [`StackMgr`],
//! which dispatches to [`UniMgr`] (the paper's contribution) or
//! [`IsoMgr`] (the Section 4 baseline). This is what makes the
//! `iso_vs_uni` comparison an ablation rather than two codebases.

use crate::config::CoreConfig;
use crate::heap::SavedHandle;
use crate::iso::IsoMgr;
use crate::uni::UniMgr;
use uat_base::{CostModel, Cycles, WorkerId};
use uat_deque::SimDeque;
use uat_rdma::Fabric;
use uat_vmem::MemStats;

/// Which thread-management scheme a simulation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchemeKind {
    /// The paper's uni-address scheme.
    Uni,
    /// The iso-address baseline.
    Iso,
}

impl uat_base::ToJson for SchemeKind {
    fn to_json(&self) -> uat_base::Json {
        uat_base::Json::str(match self {
            SchemeKind::Uni => "uni",
            SchemeKind::Iso => "iso",
        })
    }
}

impl uat_base::FromJson for SchemeKind {
    fn from_json(v: &uat_base::Json) -> Result<Self, uat_base::JsonError> {
        match v.as_str()? {
            "uni" => Ok(SchemeKind::Uni),
            "iso" => Ok(SchemeKind::Iso),
            other => Err(uat_base::JsonError {
                msg: format!("unknown scheme `{other}`"),
            }),
        }
    }
}

/// What resuming a suspended thread yields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeInfo {
    /// The resumed task.
    pub task: u64,
    /// Its saved resume point.
    pub ctx: u64,
    /// Cost of the resume (copy-in for uni; register restore for iso).
    pub cost: Cycles,
}

/// Result of a stolen-stack migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferInfo {
    /// Instant the stolen thread is runnable on the thief.
    pub done: Cycles,
    /// Page faults taken (iso only; always 0 for uni).
    pub faults: u64,
}

/// Per-worker thread manager, one of the two schemes.
#[derive(Debug)]
pub enum StackMgr {
    /// Uni-address (Section 5).
    Uni(UniMgr),
    /// Iso-address (Section 4).
    Iso(IsoMgr),
}

impl StackMgr {
    /// Build a manager of `kind` for worker `id`.
    pub fn new(
        kind: SchemeKind,
        fabric: &mut Fabric,
        id: WorkerId,
        cfg: &CoreConfig,
        total_workers: u64,
    ) -> Self {
        match kind {
            SchemeKind::Uni => StackMgr::Uni(UniMgr::new(fabric, id, cfg)),
            SchemeKind::Iso => StackMgr::Iso(IsoMgr::new(fabric, id, cfg, total_workers)),
        }
    }

    /// Which scheme this is.
    pub fn kind(&self) -> SchemeKind {
        match self {
            StackMgr::Uni(_) => SchemeKind::Uni,
            StackMgr::Iso(_) => SchemeKind::Iso,
        }
    }

    /// The worker's work-stealing queue handle.
    pub fn deque(&self) -> SimDeque {
        match self {
            StackMgr::Uni(m) => m.deque,
            StackMgr::Iso(m) => m.deque,
        }
    }

    /// Allocate the frames of a newly spawned task. Returns
    /// `(frame_base, page_faults)` — faults are nonzero only for iso.
    pub fn spawn_frame(&mut self, fabric: &mut Fabric, task: u64, size: u64) -> (u64, u64) {
        match self {
            StackMgr::Uni(m) => (m.spawn_frame(fabric, task, size), 0),
            StackMgr::Iso(m) => m.spawn_frame(task, size),
        }
    }

    /// The running task exits. For iso, returns the stack slot to recycle
    /// as `(slab_owner, slot_base)`; the cluster routes it home.
    pub fn complete(&mut self, task: u64, cfg: &CoreConfig) -> Option<(WorkerId, u64)> {
        match self {
            StackMgr::Uni(m) => {
                m.complete_bottom(task);
                None
            }
            StackMgr::Iso(m) => {
                let slab = cfg.iso_stacks_per_worker * cfg.iso_stack_size;
                Some(m.complete(task, slab))
            }
        }
    }

    /// Return a recycled iso slot to this worker (no-op for uni).
    pub fn reclaim_slot(&mut self, base: u64) {
        if let StackMgr::Iso(m) = self {
            m.reclaim_slot(base);
        }
    }

    /// Suspend the running task, yielding a handle and the cost.
    pub fn suspend_current(
        &mut self,
        fabric: &mut Fabric,
        task: u64,
        ctx: u64,
        cost: &CostModel,
    ) -> (SavedHandle, Cycles) {
        match self {
            StackMgr::Uni(m) => m.suspend_bottom(fabric, task, ctx, cost),
            StackMgr::Iso(m) => m.suspend(task, ctx, cost),
        }
    }

    /// Resume a suspended thread by handle.
    pub fn resume_saved(
        &mut self,
        fabric: &mut Fabric,
        h: SavedHandle,
        cost: &CostModel,
    ) -> ResumeInfo {
        match self {
            StackMgr::Uni(m) => {
                let (sctx, c) = m.resume_saved(fabric, h, cost);
                ResumeInfo {
                    task: sctx.task,
                    ctx: sctx.ctx,
                    cost: c,
                }
            }
            StackMgr::Iso(m) => {
                let (task, ctx, c) = m.resume_saved(h, cost);
                ResumeInfo { task, ctx, cost: c }
            }
        }
    }

    /// A local pop found the queue empty (all ancestors stolen).
    pub fn on_pop_empty(&mut self) {
        match self {
            StackMgr::Uni(m) => m.on_pop_empty(),
            StackMgr::Iso(m) => m.on_pop_empty(),
        }
    }

    /// Wait-queue push (Figure 7's `WAIT_QUEUE_PUSH`).
    pub fn wait_push(&mut self, h: SavedHandle) {
        match self {
            StackMgr::Uni(m) => m.wait_push(h),
            StackMgr::Iso(m) => m.wait_push(h),
        }
    }

    /// Wait-queue pop.
    pub fn wait_pop(&mut self) -> Option<SavedHandle> {
        match self {
            StackMgr::Uni(m) => m.wait_pop(),
            StackMgr::Iso(m) => m.wait_pop(),
        }
    }

    /// Wait-queue length.
    pub fn wait_len(&self) -> usize {
        match self {
            StackMgr::Uni(m) => m.wait_len(),
            StackMgr::Iso(m) => m.wait_len(),
        }
    }

    /// Peak stack bytes resident at once (Table 4's metric).
    pub fn peak_stack_usage(&self) -> u64 {
        match self {
            StackMgr::Uni(m) => m.peak_stack_usage(),
            StackMgr::Iso(m) => m.peak_stack_usage(),
        }
    }

    /// Virtual-memory accounting.
    pub fn mem_stats(&self) -> MemStats {
        match self {
            StackMgr::Uni(m) => m.mem_stats(),
            StackMgr::Iso(m) => m.mem_stats(),
        }
    }

    /// Re-validate this worker's structural invariants and report the
    /// engine-facing audit facts (`audit` feature).
    #[cfg(feature = "audit")]
    pub fn audit(&self, fabric: &Fabric) -> crate::audit::WorkerAudit {
        match self {
            StackMgr::Uni(m) => m.audit(fabric),
            StackMgr::Iso(m) => m.audit(fabric),
        }
    }
}

/// Migrate a stolen continuation's stack from `victim` to `thief`.
///
/// Uni: one-sided RDMA READ from the victim's uni-address region into the
/// thief's, same virtual address (Figure 6). Iso: victim-assisted copy
/// plus destination page faults (Section 4).
///
/// `mgrs` is the per-worker manager array; `thief != victim`.
#[allow(clippy::too_many_arguments)] // the steal protocol's natural arity
pub fn transfer_stolen(
    fabric: &mut Fabric,
    now: Cycles,
    mgrs: &mut [StackMgr],
    thief: WorkerId,
    victim: WorkerId,
    task: u64,
    frame_base: u64,
    frame_size: u64,
) -> TransferInfo {
    assert_ne!(thief, victim, "a worker cannot steal from itself");
    let (ti, vi) = (thief.index(), victim.index());
    // Split the slice so we can hold both managers mutably.
    let (a, b) = if ti < vi {
        let (lo, hi) = mgrs.split_at_mut(vi);
        (&mut lo[ti], &mut hi[0])
    } else {
        let (lo, hi) = mgrs.split_at_mut(ti);
        (&mut hi[0], &mut lo[vi])
    };
    match (a, b) {
        (StackMgr::Uni(t), StackMgr::Uni(_)) => {
            let done = t.transfer_stolen_in(fabric, now, victim, task, frame_base, frame_size);
            TransferInfo { done, faults: 0 }
        }
        (StackMgr::Iso(t), StackMgr::Iso(v)) => {
            let (done, faults) = t.transfer_stolen_in(fabric, now, v, task);
            TransferInfo { done, faults }
        }
        _ => panic!("mixed uni/iso machines are not a thing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::Topology;

    fn machine(kind: SchemeKind) -> (Fabric, Vec<StackMgr>, CoreConfig) {
        let topo = Topology::new(2, 2);
        let mut f = Fabric::new(topo, CostModel::fx10());
        let cfg = CoreConfig {
            iso_stacks_per_worker: 64,
            verify_stack_bytes: true,
            ..CoreConfig::default()
        };
        let mgrs = topo
            .workers()
            .map(|w| StackMgr::new(kind, &mut f, w, &cfg, topo.total_workers() as u64))
            .collect();
        (f, mgrs, cfg)
    }

    fn lifecycle(kind: SchemeKind) {
        let (mut f, mut mgrs, cfg) = machine(kind);
        let cost = CostModel::fx10();
        // Worker 0: parent 1 spawns child 2 (child-first).
        let (p_base, _) = mgrs[0].spawn_frame(&mut f, 1, 3000);
        mgrs[0].spawn_frame(&mut f, 2, 800);
        // Worker 3 steals parent 1.
        let info = transfer_stolen(
            &mut f,
            Cycles(0),
            &mut mgrs,
            WorkerId(3),
            WorkerId(0),
            1,
            p_base,
            3000,
        );
        assert!(info.done > Cycles(0));
        match kind {
            SchemeKind::Uni => assert_eq!(info.faults, 0, "one-sided, pinned: no faults"),
            SchemeKind::Iso => assert!(info.faults > 0, "destination faults"),
        }
        // Victim: child finishes, pop is empty, region drains.
        if let Some((owner, slot)) = mgrs[0].complete(2, &cfg) {
            assert_eq!(owner, WorkerId(0));
            mgrs[0].reclaim_slot(slot);
        }
        mgrs[0].on_pop_empty();
        // Thief: parent suspends at a join, then resumes, then finishes.
        let (h, _) = mgrs[3].suspend_current(&mut f, 1, 17, &cost);
        mgrs[3].wait_push(h);
        let h = mgrs[3].wait_pop().unwrap();
        let r = mgrs[3].resume_saved(&mut f, h, &cost);
        assert_eq!((r.task, r.ctx), (1, 17));
        if let Some((owner, slot)) = mgrs[3].complete(1, &cfg) {
            // The slot belongs to worker 0's slab.
            assert_eq!(owner, WorkerId(0));
            mgrs[0].reclaim_slot(slot);
        }
        assert!(mgrs[3].peak_stack_usage() >= 3000);
    }

    #[test]
    fn full_lifecycle_uni() {
        lifecycle(SchemeKind::Uni);
    }

    #[test]
    fn full_lifecycle_iso() {
        lifecycle(SchemeKind::Iso);
    }

    #[test]
    fn uni_reserves_constant_va_iso_reserves_the_world() {
        // Per-worker reserved VA: constant for uni, linear in machine
        // size for iso (Section 4's scalability argument).
        let (_, uni, _) = machine(SchemeKind::Uni);
        let uni_va = uni[0].mem_stats().reserved;

        let cfg = CoreConfig {
            iso_stacks_per_worker: 64,
            ..CoreConfig::default()
        };
        let mut iso_va = Vec::new();
        for total in [4u64, 4096] {
            let mut f = Fabric::new(Topology::new(1, 1), CostModel::fx10());
            let m = StackMgr::new(SchemeKind::Iso, &mut f, WorkerId(0), &cfg, total);
            iso_va.push(m.mem_stats().reserved);
        }
        assert!(
            iso_va[1] >= iso_va[0] * 500,
            "iso VA grows with the machine"
        );
        assert!(iso_va[1] > uni_va * 100);
        assert!(iso_va[0] >= cfg.iso_global_range(4));
        // Uni would be unchanged at any machine size: nothing in UniMgr
        // takes the worker count.
    }

    #[test]
    #[should_panic(expected = "cannot steal from itself")]
    fn self_steal_rejected() {
        let (mut f, mut mgrs, _) = machine(SchemeKind::Uni);
        transfer_stolen(
            &mut f,
            Cycles(0),
            &mut mgrs,
            WorkerId(0),
            WorkerId(0),
            1,
            0,
            64,
        );
    }
}
