//! Uni-address thread management (the paper's contribution) plus the
//! iso-address baseline it is evaluated against.
//!
//! # The uni-address scheme (Section 5)
//!
//! Every worker is a process that reserves **the uni-address region** — a
//! single stack region at the *same* virtual address in every address
//! space — plus a pinned **RDMA region** for the stacks of suspended
//! threads, plus its work-stealing queue. Running threads' stacks are
//! packed linearly in the uni-address region ([`UniRegion`], Figure 3):
//! a new thread's stack is allocated just below the pointer `p`, the
//! running thread always occupies the lowest used addresses, and a
//! suspended thread is copied out to the RDMA region so the thread just
//! above resumes in place. Because a worker only steals when its region is
//! empty, a stolen thread's frames can always be installed at *their
//! original virtual addresses* on the thief — so intra-stack pointers stay
//! valid with no compiler support, using O(region) virtual memory per
//! worker instead of iso-address's O(whole machine).
//!
//! # What lives where
//!
//! - [`UniRegion`]: the address discipline of Figure 3 (segments, `p`,
//!   the running-task-lowest invariant, peak usage for Table 4).
//! - [`RdmaHeap`]: `pinned_malloc` region hosting suspended stacks
//!   (Figure 8) and the wait queue's saved contexts.
//! - [`UniMgr`]: the per-worker uni-address scheme: spawn/complete frames,
//!   suspend/resume with real byte copies through fabric memory, and the
//!   one-sided stack transfer of Figure 6.
//! - [`IsoMgr`]: the iso-address baseline of Section 4: globally unique
//!   stack addresses, full-machine reservations in every address space,
//!   first-touch page faults on migration, victim-assisted transfer.
//! - [`StealBreakdown`]: the Figure 10 phase accounting.
//!
//! Scheduling (child-first execution, the Figure 7 join loop, victim
//! selection) lives in `uat-cluster`, which drives these managers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod breakdown;
pub mod config;
pub mod heap;
pub mod iso;
pub mod mgr;
pub mod region;
pub mod uni;

pub use breakdown::{StealBreakdown, StealPhase};
pub use config::CoreConfig;
pub use heap::{RdmaHeap, SavedContext, SavedHandle};
pub use iso::IsoMgr;
pub use mgr::{transfer_stolen, ResumeInfo, SchemeKind, StackMgr, TransferInfo};
pub use region::{RegionError, Segment, UniRegion};
pub use uni::UniMgr;
