//! Steal-time breakdown accounting (Figure 10 / Table 3).

use serde::{Deserialize, Serialize};
use uat_base::json::{FromJson, Json, JsonError, ToJson};
use uat_base::{Cycles, OnlineStats, Summary};

/// The seven phases of a work steal, in protocol order (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StealPhase {
    /// RDMA READ of (top, bottom): is the victim's queue non-empty?
    EmptyCheck,
    /// Remote fetch-and-add acquiring the queue lock.
    Lock,
    /// Two RDMA READs + one RDMA WRITE taking the queue entry.
    Steal,
    /// Thief-side `suspend()` of whatever it was running.
    Suspend,
    /// RDMA READ of the stolen thread's frames into the thief's
    /// uni-address region.
    StackTransfer,
    /// RDMA WRITE of 0 releasing the queue lock.
    Unlock,
    /// `resume_context` of the stolen thread.
    Resume,
}

impl StealPhase {
    /// All phases in protocol order.
    pub const ALL: [StealPhase; 7] = [
        StealPhase::EmptyCheck,
        StealPhase::Lock,
        StealPhase::Steal,
        StealPhase::Suspend,
        StealPhase::StackTransfer,
        StealPhase::Unlock,
        StealPhase::Resume,
    ];

    /// Human-readable name matching the paper's Figure 10 legend.
    pub fn name(self) -> &'static str {
        match self {
            StealPhase::EmptyCheck => "empty check",
            StealPhase::Lock => "lock",
            StealPhase::Steal => "steal",
            StealPhase::Suspend => "suspend",
            StealPhase::StackTransfer => "stack transfer",
            StealPhase::Unlock => "unlock",
            StealPhase::Resume => "resume",
        }
    }

    fn index(self) -> usize {
        match self {
            StealPhase::EmptyCheck => 0,
            StealPhase::Lock => 1,
            StealPhase::Steal => 2,
            StealPhase::Suspend => 3,
            StealPhase::StackTransfer => 4,
            StealPhase::Unlock => 5,
            StealPhase::Resume => 6,
        }
    }
}

/// Accumulated per-phase timings over many successful steals.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StealBreakdown {
    phases: [OnlineStats; 7],
    /// Completed (successful) steals observed.
    pub completed: u64,
    /// Steal attempts aborted at the empty check.
    pub aborted_empty: u64,
    /// Steal attempts aborted at the lock.
    pub aborted_lock: u64,
    /// Steal attempts that locked but found the queue drained.
    pub aborted_raced: u64,
}

impl StealBreakdown {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one phase of one steal.
    pub fn record(&mut self, phase: StealPhase, elapsed: Cycles) {
        self.phases[phase.index()].push(elapsed.get() as f64);
    }

    /// Per-phase summary.
    pub fn phase(&self, phase: StealPhase) -> Summary {
        self.phases[phase.index()].summary()
    }

    /// Mean total cycles of a successful steal (sum of phase means).
    pub fn total_mean(&self) -> f64 {
        StealPhase::ALL.iter().map(|&p| self.phase(p).mean).sum()
    }

    /// Total cycles recorded for one phase across all observations
    /// (`mean × count`; exact for integer-cycle samples, which is what
    /// the engine feeds in — the tracing layer cross-checks against it).
    pub fn phase_total(&self, phase: StealPhase) -> f64 {
        let s = self.phase(phase);
        s.mean * s.count as f64
    }

    /// Fraction of the total contributed by suspend + resume — the
    /// uni-address scheme's own overhead (the paper reports 7.7%).
    pub fn suspend_resume_fraction(&self) -> f64 {
        let total = self.total_mean();
        if total == 0.0 {
            return 0.0;
        }
        (self.phase(StealPhase::Suspend).mean + self.phase(StealPhase::Resume).mean) / total
    }

    /// Merge another accumulator (e.g. across workers).
    pub fn merge(&mut self, other: &StealBreakdown) {
        for p in StealPhase::ALL {
            let i = p.index();
            self.phases[i].merge(&other.phases[i]);
        }
        self.completed += other.completed;
        self.aborted_empty += other.aborted_empty;
        self.aborted_lock += other.aborted_lock;
        self.aborted_raced += other.aborted_raced;
    }

    /// Render the Figure 10 table.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "{:<16} {:>12} {:>10}", "phase", "mean cycles", "share").unwrap();
        let total = self.total_mean();
        for p in StealPhase::ALL {
            let m = self.phase(p).mean;
            writeln!(
                s,
                "{:<16} {:>12.0} {:>9.1}%",
                p.name(),
                m,
                if total > 0.0 { 100.0 * m / total } else { 0.0 }
            )
            .unwrap();
        }
        writeln!(s, "{:<16} {:>12.0} {:>10}", "total", total, "").unwrap();
        s
    }
}

impl ToJson for StealBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::Obj(
                    StealPhase::ALL
                        .into_iter()
                        .map(|p| (p.name().to_string(), self.phases[p.index()].to_json()))
                        .collect(),
                ),
            ),
            ("completed", Json::UInt(self.completed)),
            ("aborted_empty", Json::UInt(self.aborted_empty)),
            ("aborted_lock", Json::UInt(self.aborted_lock)),
            ("aborted_raced", Json::UInt(self.aborted_raced)),
        ])
    }
}

impl FromJson for StealBreakdown {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut b = StealBreakdown::new();
        let phases = v.field("phases")?;
        for p in StealPhase::ALL {
            b.phases[p.index()] = OnlineStats::from_json(phases.field(p.name())?)?;
        }
        b.completed = v.field("completed")?.as_u64()?;
        b.aborted_empty = v.field("aborted_empty")?.as_u64()?;
        b.aborted_lock = v.field("aborted_lock")?.as_u64()?;
        b.aborted_raced = v.field("aborted_raced")?.as_u64()?;
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut b = StealBreakdown::new();
        for _ in 0..3 {
            b.record(StealPhase::EmptyCheck, Cycles(4_900));
            b.record(StealPhase::Lock, Cycles(9_800));
            b.record(StealPhase::Steal, Cycles(12_000));
            b.record(StealPhase::Suspend, Cycles(1_700));
            b.record(StealPhase::StackTransfer, Cycles(6_400));
            b.record(StealPhase::Unlock, Cycles(3_000));
            b.record(StealPhase::Resume, Cycles(1_800));
            b.completed += 1;
        }
        assert_eq!(b.completed, 3);
        assert!((b.total_mean() - 39_600.0).abs() < 1.0);
        let f = b.suspend_resume_fraction();
        assert!((f - 3_500.0 / 39_600.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = StealBreakdown::new();
        a.record(StealPhase::Lock, Cycles(10_000));
        a.completed = 1;
        a.aborted_lock = 2;
        let mut b = StealBreakdown::new();
        b.record(StealPhase::Lock, Cycles(8_000));
        b.completed = 1;
        b.aborted_empty = 5;
        a.merge(&b);
        assert_eq!(a.completed, 2);
        assert_eq!(a.aborted_lock, 2);
        assert_eq!(a.aborted_empty, 5);
        assert!((a.phase(StealPhase::Lock).mean - 9_000.0).abs() < 1e-9);
    }

    #[test]
    fn report_contains_all_phases() {
        let mut b = StealBreakdown::new();
        b.record(StealPhase::StackTransfer, Cycles(6_000));
        let r = b.report();
        for p in StealPhase::ALL {
            assert!(r.contains(p.name()), "missing {}", p.name());
        }
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StealBreakdown::new();
        assert_eq!(b.total_mean(), 0.0);
        assert_eq!(b.suspend_resume_fraction(), 0.0);
    }

    #[test]
    fn phase_total_is_mean_times_count() {
        let mut b = StealBreakdown::new();
        b.record(StealPhase::Lock, Cycles(10_000));
        b.record(StealPhase::Lock, Cycles(4_000));
        assert!((b.phase_total(StealPhase::Lock) - 14_000.0).abs() < 1e-6);
        assert_eq!(b.phase_total(StealPhase::Resume), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let mut b = StealBreakdown::new();
        b.record(StealPhase::EmptyCheck, Cycles(4_900));
        b.record(StealPhase::Lock, Cycles(9_800));
        b.record(StealPhase::Lock, Cycles(11_000));
        b.completed = 2;
        b.aborted_raced = 1;
        let text = b.to_json().to_string();
        let back = StealBreakdown::from_json(&uat_base::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.completed, 2);
        assert_eq!(back.aborted_raced, 1);
        for p in StealPhase::ALL {
            let (a, z) = (b.phase(p), back.phase(p));
            assert_eq!(a.count, z.count, "{}", p.name());
            assert_eq!(a.mean, z.mean, "{}", p.name());
        }
        assert_eq!(back.to_json().to_string(), text);
    }
}
