//! Loom harness for `NativeDeque` (ISSUE 8 satellite). Compiled and run
//! only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p uat-deque --test loom --release
//! ```
//!
//! With the registry `loom` these are exhaustive bounded explorations of
//! the real atomics under the C11 model. With the offline shim
//! (shims/loom) they are deterministic seeded-schedule stress — every
//! atomic access is a perturbation point — which reliably reproduces
//! known protocol breaks but proves nothing exhaustively; the exhaustive
//! story for this protocol lives in `uat-check` (SC and release/acquire
//! modes). The scenarios mirror the checker's suite so a real-loom
//! upgrade immediately re-verifies the same races on real code.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use uat_deque::NativeDeque;

/// The last-entry race: one entry, owner pop vs thief steal; exactly one
/// side may keep it (the race `uat-check` catches in 12 steps when the
/// owner's fast-path bound is relaxed to `t <= nb`).
#[test]
fn last_entry_exactly_one_winner() {
    loom::model(|| {
        let d = Arc::new(NativeDeque::new(2));
        d.push(7u64);
        let thief = {
            let d = Arc::clone(&d);
            thread::spawn(move || d.steal())
        };
        let popped = d.pop();
        let stolen = thief.join().unwrap();
        assert!(
            popped.is_some() != stolen.is_some(),
            "last entry claimed by both sides or lost: popped={popped:?} stolen={stolen:?}"
        );
        assert_eq!(popped.or(stolen), Some(7));
    });
}

/// The publication edge: a steal racing the pushes must only ever see
/// fully published entries, and conservation holds across pop + steal.
#[test]
fn publish_steal_conservation() {
    loom::model(|| {
        let d = Arc::new(NativeDeque::new(3));
        let thief = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Some(v) = d.steal() {
                        got.push(v);
                    }
                }
                got
            })
        };
        d.push(1u64);
        d.push(2);
        let mut kept = Vec::new();
        while let Some(v) = d.pop() {
            kept.push(v);
        }
        let mut all = thief.join().unwrap();
        all.extend(kept);
        all.sort_unstable();
        assert_eq!(all, [1, 2], "value lost or duplicated: {all:?}");
        for v in &all {
            assert!((1..=2).contains(v), "phantom value {v} (stale slot read)");
        }
    });
}

/// Two thieves contending on the lock while the owner drains: every
/// entry consumed exactly once, lock hand-off included.
#[test]
fn two_thieves_drain() {
    loom::model(|| {
        let d = Arc::new(NativeDeque::new(3));
        d.push(1u64);
        d.push(2);
        let spawn_thief = |d: &Arc<NativeDeque<u64>>| {
            let d = Arc::clone(d);
            thread::spawn(move || d.steal())
        };
        let t1 = spawn_thief(&d);
        let t2 = spawn_thief(&d);
        let mut all: Vec<u64> = [t1.join().unwrap(), t2.join().unwrap(), d.pop(), d.pop()]
            .into_iter()
            .flatten()
            .collect();
        all.sort_unstable();
        assert_eq!(all, [1, 2], "conservation violated: {all:?}");
    });
}

/// Wraparound slot reuse under racing steals: positions recycle through
/// a 2-slot buffer while a thief reads — the scenario where a premature
/// slot reuse (capacity-check bug) would hand the thief a new value at
/// an old position.
#[test]
fn wraparound_reuse_race() {
    loom::model(|| {
        let d = Arc::new(NativeDeque::new(2));
        let thief = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..3 {
                    if let Some(v) = d.steal() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let mut kept = Vec::new();
        for round in 0..3u64 {
            d.push(round + 1);
            if let Some(v) = d.pop() {
                kept.push(v);
            }
        }
        let mut all = thief.join().unwrap();
        all.extend(kept);
        all.sort_unstable();
        assert_eq!(all, [1, 2, 3], "conservation violated: {all:?}");
    });
}
