//! The task-queue entry (`taskq_entry` in Figure 4).
//!
//! An entry describes a stealable parent continuation: where its frames
//! start in the uni-address region, how many bytes they span, and a handle
//! to its saved register context. The simulator additionally carries the
//! task id. The wire format is four little-endian u64s (32 bytes), which
//! is what a thief RDMA-READs out of a victim's queue.

use serde::{Deserialize, Serialize};

/// Size of a serialized entry in bytes.
pub const ENTRY_BYTES: usize = 32;

/// A stealable continuation descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskqEntry {
    /// Simulator task id of the continuation's task.
    pub task: u64,
    /// Opaque handle to the saved context (`ctx` in Figure 4).
    pub ctx: u64,
    /// Lowest address of the continuation's frames in the uni-address
    /// region (`frame_base`).
    pub frame_base: u64,
    /// Bytes of stack the continuation owns (`frame_size`).
    pub frame_size: u64,
}

impl TaskqEntry {
    /// Serialize to the 32-byte wire format.
    pub fn to_bytes(&self) -> [u8; ENTRY_BYTES] {
        let mut b = [0u8; ENTRY_BYTES];
        b[0..8].copy_from_slice(&self.task.to_le_bytes());
        b[8..16].copy_from_slice(&self.ctx.to_le_bytes());
        b[16..24].copy_from_slice(&self.frame_base.to_le_bytes());
        b[24..32].copy_from_slice(&self.frame_size.to_le_bytes());
        b
    }

    /// Deserialize from the 32-byte wire format.
    pub fn from_bytes(b: &[u8; ENTRY_BYTES]) -> Self {
        let u = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        TaskqEntry {
            task: u(0),
            ctx: u(8),
            frame_base: u(16),
            frame_size: u(24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_fixed() {
        let e = TaskqEntry {
            task: 7,
            ctx: 0xdead_beef,
            frame_base: 0x7f00_0000_1000,
            frame_size: 3055,
        };
        assert_eq!(TaskqEntry::from_bytes(&e.to_bytes()), e);
    }

    proptest! {
        #[test]
        fn roundtrip_any(task: u64, ctx: u64, frame_base: u64, frame_size: u64) {
            let e = TaskqEntry { task, ctx, frame_base, frame_size };
            prop_assert_eq!(TaskqEntry::from_bytes(&e.to_bytes()), e);
        }
    }
}
