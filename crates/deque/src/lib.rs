//! THE-protocol work-stealing deques.
//!
//! The paper implements Cilk-5's THE protocol [Frigo et al., PLDI'98] for
//! its task queues because "it eliminates locking from local accesses to a
//! task queue, it reduces tasking overhead and improves scalability of
//! work stealing" (Section 5.3). Two implementations live here:
//!
//! - [`sim`]: the deque's words (`lock`, `top`, `bottom`, entries) are
//!   little-endian u64s in the owner's *registered RDMA memory*
//!   ([`uat_rdma::Fabric`]). The owner pushes and pops with plain local
//!   accesses; a thief performs the exact one-sided sequence of Table 3 —
//!   empty-check (1 RDMA READ), lock (remote fetch-and-add), steal (2
//!   RDMA READs + 1 RDMA WRITE), unlock (1 RDMA WRITE) — each phase
//!   returning its completion instant so the cluster simulator can
//!   interleave other workers in between.
//! - [`native`]: the same protocol on real atomics, used by the native
//!   fiber runtime (`uat-fiber`) for intra-process work stealing.
//! - [`shm`]: the same protocol again, as a *placement* construction
//!   path — a `Copy` handle onto a caller-provided block (entries
//!   inline at `OFF_ENTRIES`) inside a shared mapping, so the
//!   multiprocess backend's thieves operate on a peer process's deque
//!   with plain loads/stores/CAS at `base + OFF_*`.
//!
//! Both sides steal from the **top** (FIFO — oldest, typically
//! coarsest-grained task) while the owner works at the **bottom** (LIFO),
//! the Mohr/Kranz/Halstead discipline the paper adopts.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod entry;
pub mod layout;
pub mod native;
pub mod shm;
pub mod sim;

pub use entry::TaskqEntry;
pub use native::{NativeDeque, StealAttemptOutcome, StealPhases};
pub use shm::ShmDeque;
pub use sim::{DequeSnapshot, PopOutcome, SimDeque, StealOutcome};
