//! Process-shared THE-protocol deque placed in mapped memory.
//!
//! The multiprocess backend (`uat-fiber`'s `mpruntime`) maps one shared
//! region at the same virtual address in every worker *process* and
//! carves each worker's deque out of it. This module is the placement
//! construction path [`NativeDeque`](crate::NativeDeque) cannot offer:
//! instead of owning heap storage, a [`ShmDeque`] is a thin `Copy`
//! handle onto a caller-provided block laid out exactly as
//! [`crate::layout`] specifies — control words at `OFF_LOCK`/`OFF_TOP`/
//! `OFF_BOTTOM`, and (unlike the native deque, whose entries hide
//! behind a `Box` pointer) the entries **inline** at `OFF_ENTRIES`, so
//! a remote peer can compute every word's address from the block base
//! alone, the property the paper's one-sided thieves rely on.
//!
//! Entries are bare `u64`s: in the multiprocess runtime an entry is the
//! shared-region address of a suspended continuation, meaningful in
//! every process because the region is uni-address.
//!
//! # Protocol
//!
//! The protocol and its memory orderings are copied **verbatim** from
//! [`NativeDeque`](crate::NativeDeque) — same THE fast paths, same
//! strict `t < nb` pop bound, same locked last-entry arbitration, same
//! orderings at every access site (all within
//! [`crate::layout::ORDERING_ALLOWLIST`], which `uat-lint` checks for
//! this file exactly as it does for `native.rs`). Process-shared use
//! adds nothing to the protocol itself: an `AtomicU64` in a
//! `MAP_SHARED` mapping is lock-free on every supported target, so the
//! same atomics that arbitrate threads arbitrate processes.
//!
//! # Safety
//!
//! All `unsafe` here is the placement itself: dereferencing the block
//! the caller promised via [`ShmDeque::from_raw`] (invariant [I14] in
//! DESIGN.md §7.6). Slot access soundness is then the THE argument from
//! `native.rs`, unchanged: the lock-free paths only touch positions
//! provably nobody else targets, and last-entry arbitration is locked.

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::layout::{OFF_BOTTOM, OFF_ENTRIES, OFF_LOCK, OFF_TOP};

/// The three THE control words, at the canonical layout offsets.
#[repr(C)]
struct Hdr {
    lock: AtomicU64,
    top: AtomicU64,
    bottom: AtomicU64,
}

const _: () = {
    assert!(std::mem::offset_of!(Hdr, lock) as u64 == OFF_LOCK);
    assert!(std::mem::offset_of!(Hdr, top) as u64 == OFF_TOP);
    assert!(std::mem::offset_of!(Hdr, bottom) as u64 == OFF_BOTTOM);
    assert!(std::mem::size_of::<Hdr>() as u64 == OFF_ENTRIES);
};

/// A `Copy` handle onto a THE deque living in caller-provided memory.
///
/// The handle stores the block base and the entry capacity; the block
/// itself holds only the three control words plus the inline entries,
/// so blocks are position-independent data that any process mapping
/// the region at the same address can operate on. A **zeroed block is
/// a valid empty, unlocked deque** — freshly mapped `memfd` pages need
/// no initialisation, which is what keeps the multiprocess bootstrap
/// free of pre-fork ordering subtleties.
///
/// Owner/thief discipline is by convention, exactly as for
/// [`NativeDeque`](crate::NativeDeque): only the owning worker calls
/// [`push`](Self::push)/[`pop`](Self::pop); any process may call
/// [`steal`](Self::steal).
#[derive(Clone, Copy, Debug)]
pub struct ShmDeque {
    base: *mut u8,
    capacity: u64,
}

// SAFETY: [I14] the handle is two plain words; all shared access to the
// block it designates is mediated by the THE protocol (same argument as
// `NativeDeque`'s [I1][I2][I3]), and `from_raw`'s contract makes the
// block valid in every thread/process that maps the region.
unsafe impl Send for ShmDeque {}
// SAFETY: [I14] same argument as `Send`: `&ShmDeque` only hands out the
// base/capacity words; concurrent block access is protocol-mediated.
unsafe impl Sync for ShmDeque {}

impl ShmDeque {
    /// Bytes occupied by a block with room for `capacity` entries.
    pub const fn block_size(capacity: usize) -> usize {
        OFF_ENTRIES as usize + capacity * 8
    }

    /// Wrap a raw block.
    ///
    /// # Safety
    ///
    /// [I14] `base` must point to at least [`block_size`](Self::block_size)
    /// bytes, 8-byte aligned, zero-initialised (or left exactly as a
    /// previous `ShmDeque` over the same block left it), valid for reads
    /// and writes for the handle's whole lifetime, and — when shared
    /// across processes — mapped `MAP_SHARED` at this same virtual
    /// address in every participating process. No memory in the block
    /// may be accessed except through THE-protocol operations.
    pub unsafe fn from_raw(base: *mut u8, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            (base as usize).is_multiple_of(8),
            "deque block must be 8-byte aligned"
        );
        ShmDeque {
            base,
            capacity: capacity as u64,
        }
    }

    #[inline]
    fn hdr(&self) -> &Hdr {
        // SAFETY: [I14] `from_raw` guarantees the block covers the
        // header, aligned and valid for the handle's lifetime; `Hdr` is
        // three atomics, so shared references race-freely by design.
        unsafe { &*(self.base as *const Hdr) }
    }

    #[inline]
    fn slot(&self, position: u64) -> *mut u64 {
        let off = OFF_ENTRIES + (position % self.capacity) * 8;
        // SAFETY: [I14] `position % capacity` keeps the offset inside the
        // block `from_raw` vouched for.
        unsafe { self.base.add(off as usize) as *mut u64 }
    }

    #[inline]
    fn acquire_lock(&self) {
        // Test-and-test-and-set spin lock, as in `NativeDeque`.
        let h = self.hdr();
        loop {
            if h.lock.load(Ordering::Relaxed) == 0
                && h.lock
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn release_lock(&self) {
        self.hdr().lock.store(0, Ordering::Release);
    }

    /// Owner-only: push an entry at the bottom.
    ///
    /// Panics on overflow (the runtime sizes queues for the maximum
    /// outstanding task count, as the paper sizes the uni-address
    /// region).
    pub fn push(&self, value: u64) {
        let h = self.hdr();
        let b = h.bottom.load(Ordering::Relaxed);
        let t = h.top.load(Ordering::Acquire);
        assert!(
            b - t < self.capacity,
            "shared task queue overflow (capacity {})",
            self.capacity
        );
        // SAFETY: [I1][I2] position `b` is invisible to thieves until the
        // bottom store below publishes it, and the capacity check keeps
        // the slot's previous occupant consumed before reuse — the same
        // argument as `NativeDeque::push`, with a plain u64 slot in
        // place of the `UnsafeCell`.
        unsafe { self.slot(b).write(value) };
        // Publish: Release orders the slot write before the bump (see
        // the proof note in `NativeDeque::push`; uat-check's RA explorer
        // covers this site through the shared ordering table).
        h.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pop the youngest entry (THE protocol).
    pub fn pop(&self) -> Option<u64> {
        let h = self.hdr();
        let b = h.bottom.load(Ordering::Relaxed);
        let t = h.top.load(Ordering::Relaxed);
        if t >= b {
            return None;
        }
        let nb = b - 1;
        // T--; fence; read H — the SeqCst store/load Dekker pair.
        h.bottom.store(nb, Ordering::SeqCst);
        let t = h.top.load(Ordering::SeqCst);
        if t < nb {
            // Fast path: strictly more than one entry beyond top, so no
            // thief targets position nb. The bound must be strict —
            // `t <= nb` reintroduces the double claim uat-check finds in
            // 12 steps (see `NativeDeque::pop`).
            //
            // SAFETY: [I3] position nb is exclusively ours (above), and
            // slot reuse requires consumption first.
            return Some(unsafe { self.slot(nb).read() });
        }
        // Last entry or an overtaking thief: restore and arbitrate
        // under the lock.
        h.bottom.store(b, Ordering::SeqCst);
        self.acquire_lock();
        let t = h.top.load(Ordering::Relaxed);
        let result = if t >= b {
            None
        } else {
            h.bottom.store(b - 1, Ordering::Relaxed);
            // SAFETY: [I3][I4] under the lock with top < b, position b-1
            // is ours.
            Some(unsafe { self.slot(b - 1).read() })
        };
        self.release_lock();
        result
    }

    /// Thief: steal the oldest entry. Returns `None` if the deque is
    /// empty or another thief holds the lock (abort rather than queue,
    /// as the paper's RDMA thieves do). Safe to call from any process
    /// mapping the region.
    pub fn steal(&self) -> Option<u64> {
        let h = self.hdr();
        // Empty pre-check (the RDMA protocol's phase 1).
        let t = h.top.load(Ordering::Acquire);
        let b = h.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        if h.lock
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let t = h.top.load(Ordering::Relaxed);
        // SeqCst pairs with the pop's bottom store.
        let b = h.bottom.load(Ordering::SeqCst);
        let result = if t >= b {
            None
        } else {
            // SAFETY: [I2][I3][I4] while we hold the lock, top is static
            // at t, so position t is live and cannot be consumed or its
            // slot reused under us — the full proof is the comment in
            // `NativeDeque::steal` and applies verbatim.
            let v = unsafe { self.slot(t).read() };
            h.top.store(t + 1, Ordering::SeqCst);
            Some(v)
        };
        self.release_lock();
        result
    }

    /// Entries currently in the deque (racy snapshot).
    pub fn len(&self) -> u64 {
        let h = self.hdr();
        let t = h.top.load(Ordering::Acquire);
        let b = h.bottom.load(Ordering::Acquire);
        b.saturating_sub(t)
    }

    /// Whether the deque appears empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum simultaneous entries.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An owned, zeroed, 8-byte-aligned block for in-process tests.
    /// (Cross-process placement is exercised by `uat-fiber`'s
    /// multiprocess runtime tests; the protocol is address-space
    /// agnostic, so threads over one block cover the same interleavings.)
    struct Block(Box<[u64]>);

    impl Block {
        fn new(capacity: usize) -> Self {
            Block(vec![0u64; ShmDeque::block_size(capacity) / 8].into_boxed_slice())
        }

        fn deque(&self, capacity: usize) -> ShmDeque {
            // SAFETY: [I14] the boxed slice is 8-byte aligned, zeroed,
            // big enough by construction, and outlives every handle the
            // tests create from it.
            unsafe { ShmDeque::from_raw(self.0.as_ptr() as *mut u8, capacity) }
        }
    }

    #[test]
    fn zeroed_block_is_valid_and_empty() {
        let blk = Block::new(4);
        let d = blk.deque(4);
        assert!(d.is_empty());
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert_eq!(d.capacity(), 4);
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let blk = Block::new(16);
        let d = blk.deque(16);
        for i in 0..6u64 {
            d.push(i);
        }
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(5));
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn wraparound() {
        let blk = Block::new(3);
        let d = blk.deque(3);
        for round in 0..10u64 {
            d.push(round * 2);
            d.push(round * 2 + 1);
            assert_eq!(d.steal(), Some(round * 2));
            assert_eq!(d.pop(), Some(round * 2 + 1));
        }
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let blk = Block::new(2);
        let d = blk.deque(2);
        d.push(1);
        d.push(2);
        d.push(3);
    }

    /// Conservation under one owner and several thieves: every pushed
    /// value consumed exactly once. Same harness as the native deque's,
    /// over a placement block.
    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicU64 as Counter, Ordering as O};
        const PER_ROUND: u64 = 64;
        const ROUNDS: u64 = if cfg!(miri) { 4 } else { 200 };
        const THIEVES: usize = 3;
        let blk = Block::new(PER_ROUND as usize + 1);
        let d = blk.deque(PER_ROUND as usize + 1);
        let consumed = Counter::new(0);
        let sum = Counter::new(0);
        let done = Counter::new(0);

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| {
                    while done.load(O::Acquire) == 0 || !d.is_empty() {
                        if let Some(v) = d.steal() {
                            consumed.fetch_add(1, O::Relaxed);
                            sum.fetch_add(v, O::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }

            // Values are 1..=ROUNDS*PER_ROUND, so the expected sum is
            // closed-form and checkable after the scope joins.
            let mut next: u64 = 1;
            for _ in 0..ROUNDS {
                for _ in 0..PER_ROUND {
                    d.push(next);
                    next += 1;
                }
                while let Some(v) = d.pop() {
                    consumed.fetch_add(1, O::Relaxed);
                    sum.fetch_add(v, O::Relaxed);
                }
            }
            done.store(1, O::Release);
        });

        let n = ROUNDS * PER_ROUND;
        assert_eq!(consumed.load(O::Acquire), n);
        assert_eq!(sum.load(O::Acquire), n * (n + 1) / 2);
        assert!(d.is_empty());
    }

    /// The last-entry race: owner pop vs thief steal for a single entry;
    /// exactly one side may keep each value.
    #[test]
    fn last_entry_race_exactly_one_winner() {
        use std::sync::atomic::{AtomicU64 as Counter, Ordering as O};
        const ROUNDS: usize = if cfg!(miri) { 50 } else { 20_000 };
        let blk = Block::new(2);
        let d = blk.deque(2);
        let claims: Vec<Counter> = (0..ROUNDS).map(|_| Counter::new(0)).collect();
        let done = Counter::new(0);

        std::thread::scope(|s| {
            s.spawn(|| {
                while done.load(O::Acquire) == 0 {
                    if let Some(v) = d.steal() {
                        claims[v as usize].fetch_add(1, O::Relaxed);
                    }
                }
            });
            for r in 0..ROUNDS {
                d.push(r as u64);
                if let Some(v) = d.pop() {
                    claims[v as usize].fetch_add(1, O::Relaxed);
                }
            }
            done.store(1, O::Release);
        });

        assert!(d.is_empty());
        for (r, c) in claims.iter().enumerate() {
            assert_eq!(c.load(O::Acquire), 1, "round {r} claimed twice or lost");
        }
    }
}
