//! Native THE-protocol deque on real atomics.
//!
//! Used by the `uat-fiber` runtime for intra-process work stealing. The
//! protocol is the Cilk-5 THE protocol verbatim: the owner pushes/pops at
//! the bottom without locks; thieves steal at the top under a spin lock;
//! the owner takes the lock only when it races a thief for the last entry.
//!
//! # Safety
//!
//! This module (with its placement twin [`crate::shm`]) contains the
//! crate's only `unsafe` code: entries live in
//! `UnsafeCell<MaybeUninit<T>>` slots. The THE protocol is what makes the
//! accesses sound:
//!
//! - slot `i % cap` is written only by the owner in `push` at position
//!   `i = bottom`, while no reader can observe position `i` until the
//!   bottom store publishes it, and reuse of the slot (position
//!   `i + cap`) is blocked by the capacity check until `top > i`, i.e.
//!   until every reader of position `i` is done with the slot;
//! - a position is *read* by exactly one side: a thief only ever reads
//!   the position it loaded as `top` inside its locked critical section
//!   (where `top` cannot move under it), and the owner's pop takes the
//!   lock whenever the position it wants could be that one (`top ==
//!   bottom - 1` after the decrement). The arbitration for the last
//!   entry therefore always happens under the lock — the lock-free
//!   paths only ever touch positions provably nobody else targets.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

// Under `RUSTFLAGS="--cfg loom"` the control words become loom atomics
// (real loom: exhaustively explored; the offline shim: schedule-stress
// wrappers — see shims/loom). Both are `repr(transparent)` over the std
// atomic, so the layout contract below keeps holding.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity THE-protocol work-stealing deque.
///
/// `T` must be `Copy`: entries are small continuation descriptors
/// (pointers + sizes), mirroring the 32-byte `taskq_entry`.
///
/// The three control words sit at the canonical [`crate::layout`]
/// offsets (`repr(C)`, asserted below), so a native deque's header is
/// byte-compatible with the simulated RDMA-resident one; only the
/// entries differ, living behind a pointer rather than inline (fine
/// intra-process, where no thief computes remote addresses).
#[repr(C)]
pub struct NativeDeque<T: Copy> {
    lock: AtomicU64,
    top: AtomicU64,
    bottom: AtomicU64,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// The layout contract: control words at `base + OFF_*`, exactly as the
// simulated deque lays them out in fabric memory.
const _: () = {
    assert!(std::mem::offset_of!(NativeDeque<u64>, lock) as u64 == crate::layout::OFF_LOCK);
    assert!(std::mem::offset_of!(NativeDeque<u64>, top) as u64 == crate::layout::OFF_TOP);
    assert!(std::mem::offset_of!(NativeDeque<u64>, bottom) as u64 == crate::layout::OFF_BOTTOM);
};

// SAFETY: [I1][I2][I3] all shared access to `slots` is mediated by the THE protocol as
// documented in the module header; T itself crosses threads by copy.
unsafe impl<T: Copy + Send> Sync for NativeDeque<T> {}
// SAFETY: [I3] same argument as `Sync`; the deque owns its slot storage, so
// moving it to another thread moves only `Send` data.
unsafe impl<T: Copy + Send> Send for NativeDeque<T> {}

impl<T: Copy> NativeDeque<T> {
    /// A deque with room for `capacity` simultaneous entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        NativeDeque {
            lock: AtomicU64::new(0),
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            slots,
        }
    }

    #[inline]
    fn slot(&self, position: u64) -> *mut MaybeUninit<T> {
        self.slots[(position % self.slots.len() as u64) as usize].get()
    }

    #[inline]
    fn acquire_lock(&self) {
        // Test-and-test-and-set spin lock; critical sections are a handful
        // of loads/stores so spinning is appropriate.
        loop {
            if self.lock.load(Ordering::Relaxed) == 0
                && self
                    .lock
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn release_lock(&self) {
        self.lock.store(0, Ordering::Release);
    }

    /// Owner-only: push an entry at the bottom.
    ///
    /// Panics on overflow (the runtime sizes queues for the maximum task
    /// depth, as the paper does for the uni-address region).
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        // `t <= b` whenever the owner is between ops: a thief only
        // advances top over an entry it may keep (t < bottom, and the
        // owner's last-entry pops go through the lock), and the owner's
        // own pops restore bottom before returning.
        let t = self.top.load(Ordering::Acquire);
        assert!(
            b - t < self.slots.len() as u64,
            "native task queue overflow (capacity {})",
            self.slots.len()
        );
        // SAFETY: [I1][I2] position `b` is not visible to thieves until the bottom
        // store below, and the capacity check guarantees the slot's
        // previous occupant was consumed: reuse of a slot a thief is
        // reading (position `t + cap`) would need the loaded top to
        // exceed `t`, which cannot happen while that thief's critical
        // section holds top static at `t`.
        unsafe { (*self.slot(b)).write(value) };
        // Publish: entry write happens-before the bottom bump. Release
        // (not SeqCst) suffices: the only reader that must see the slot
        // write is a thief whose Acquire `bottom` load (pre-check) or
        // SeqCst locked load pairs with this store, and push is not a
        // side of the pop/steal Dekker handshake (only pop's decrement
        // and the thief's locked bottom load need the SC order).
        // uat-check's RA mode proves both directions: the clean suite
        // passes with Release, and the `push-publish-weak` mutation
        // (Relaxed) yields a stale-slot counterexample. See DESIGN.md
        // section 11.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pop the youngest entry (THE protocol).
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        if t >= b {
            return None;
        }
        let nb = b - 1;
        // T--; fence; read H — SeqCst gives the store-load ordering the
        // protocol's proof needs.
        self.bottom.store(nb, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t < nb {
            // Fast path — strictly more than one entry beyond top, so
            // position nb cannot be any thief's target: a thief in its
            // critical section steals exactly the position it loaded as
            // top, which is <= t < nb.
            //
            // The bound must be strict. With `t <= nb` (the original
            // code) the owner could take position nb == t lock-free
            // while a thief that had already read `top = t, bottom > t`
            // under the lock went on to steal the same entry — both
            // sides kept it. `uat-check`'s op-granularity model finds
            // that double claim in a 12-step interleaving (see
            // DESIGN.md section 7); the simulator's SimDeque keeps the
            // relaxed bound soundly only because engine events make the
            // whole pop atomic against whole steal phases.
            //
            // SAFETY: [I3] no thief can consume or claim position nb (above),
            // and slot reuse requires the position to be consumed first;
            // we own position nb exclusively.
            return Some(unsafe { (*self.slot(nb)).assume_init_read() });
        }
        // Last entry (t == nb) or a thief already overtook the
        // decrement: restore and arbitrate under the lock (victim
        // spins, exactly as Cilk's victim does).
        self.bottom.store(b, Ordering::SeqCst);
        self.acquire_lock();
        let t = self.top.load(Ordering::Relaxed);
        let result = if t >= b {
            // The thief won the last entry.
            None
        } else {
            self.bottom.store(b - 1, Ordering::Relaxed);
            // SAFETY: [I3][I4] under the lock with top < b, position b-1 is ours.
            Some(unsafe { (*self.slot(b - 1)).assume_init_read() })
        };
        self.release_lock();
        result
    }

    /// Thief: steal the oldest entry (FIFO end). Returns `None` if the
    /// deque is empty or another thief holds the lock (abort, as the
    /// paper's RDMA thieves do, rather than queue up).
    pub fn steal(&self) -> Option<T> {
        // Empty pre-check (the RDMA protocol's phase 1).
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        if self
            .lock
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let t = self.top.load(Ordering::Relaxed);
        // SeqCst pairs with the pop's bottom store.
        let b = self.bottom.load(Ordering::SeqCst);
        let result = if t >= b {
            None
        } else {
            // While we hold the lock, `top` is static at t: only thieves
            // write top, and they are locked out. The owner can
            // therefore never consume position t concurrently —
            // its fast-path pop requires `top < new_bottom`, i.e. it only
            // takes positions strictly above t, and its last-entry path
            // arbitrates under this same lock. Claiming after the read is
            // safe for exactly that reason; no Dekker validation of
            // bottom is needed (and validating on bottom would be
            // ABA-broken anyway: a pop + re-push during our critical
            // section restores bottom while recycling the slot).
            //
            // SAFETY: [I2][I3][I4] position t is live (t < b) and cannot be consumed
            // or its slot reused while top == t (push at position t+cap
            // fails the capacity check until top advances), so the read
            // observes a fully initialised entry that only we will keep.
            let v = unsafe { (*self.slot(t)).assume_init_read() };
            self.top.store(t + 1, Ordering::SeqCst);
            Some(v)
        };
        self.release_lock();
        result
    }

    /// [`steal`](Self::steal) with phase-boundary timestamps from
    /// `clock`, for tracing thieves: the returned [`StealPhases`] brackets
    /// the empty pre-check, the lock acquisition, and the entry take the
    /// same way the paper's Table 3 brackets the RDMA protocol's phases.
    /// The protocol itself is identical to the untimed path (which stays
    /// clock-free so untraced runs pay nothing).
    pub fn steal_phased<C: FnMut() -> u64>(&self, mut clock: C) -> (Option<T>, StealPhases) {
        let start = clock();
        // Empty pre-check (the RDMA protocol's phase 1).
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            let checked = clock();
            return (
                None,
                StealPhases {
                    start,
                    checked,
                    locked: checked,
                    end: checked,
                    outcome: StealAttemptOutcome::Empty,
                },
            );
        }
        let checked = clock();
        if self
            .lock
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            let locked = clock();
            return (
                None,
                StealPhases {
                    start,
                    checked,
                    locked,
                    end: locked,
                    outcome: StealAttemptOutcome::LockBusy,
                },
            );
        }
        let locked = clock();
        let t = self.top.load(Ordering::Relaxed);
        // SeqCst pairs with the pop's bottom store.
        let b = self.bottom.load(Ordering::SeqCst);
        let (result, outcome) = if t >= b {
            (None, StealAttemptOutcome::Raced)
        } else {
            // SAFETY: [I2][I3][I4] identical critical section to `steal` — position t
            // is live and held static by the lock we own (see the proof
            // comment there).
            let v = unsafe { (*self.slot(t)).assume_init_read() };
            self.top.store(t + 1, Ordering::SeqCst);
            (Some(v), StealAttemptOutcome::Taken)
        };
        self.release_lock();
        let end = clock();
        (
            result,
            StealPhases {
                start,
                checked,
                locked,
                end,
                outcome,
            },
        )
    }

    /// Entries currently in the deque (racy snapshot).
    pub fn len(&self) -> u64 {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        b.saturating_sub(t)
    }

    /// Whether the deque appears empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum simultaneous entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// How an instrumented steal attempt ended (the native analogue of the
/// trace layer's `StealOutcome`, kept local so `uat-deque` stays at the
/// bottom of the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealAttemptOutcome {
    /// An entry was taken.
    Taken,
    /// The pre-check saw an empty deque.
    Empty,
    /// Another thief held the lock; aborted without queuing.
    LockBusy,
    /// Locked successfully but the deque had drained (lost the race).
    Raced,
}

/// Clock readings bracketing the phases of one [`NativeDeque::steal_phased`]
/// attempt: `[start, checked)` is the empty pre-check, `[checked, locked)`
/// the lock acquisition, `[locked, end)` the entry take and unlock. On an
/// abort the later boundaries collapse onto the point the attempt ended.
#[derive(Clone, Copy, Debug)]
pub struct StealPhases {
    /// Clock at attempt start.
    pub start: u64,
    /// Clock after the empty pre-check.
    pub checked: u64,
    /// Clock after the lock CAS resolved.
    pub locked: u64,
    /// Clock after the entry was taken (or the attempt aborted) and the
    /// lock released.
    pub end: u64,
    /// How the attempt ended.
    pub outcome: StealAttemptOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner() {
        let d = NativeDeque::new(16);
        for i in 0..5u64 {
            d.push(i);
        }
        for i in (0..5).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let d = NativeDeque::new(16);
        for i in 0..5u64 {
            d.push(i);
        }
        for i in 0..5 {
            assert_eq!(d.steal(), Some(i));
        }
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn wraparound() {
        let d = NativeDeque::new(3);
        for round in 0..10u64 {
            d.push(round * 2);
            d.push(round * 2 + 1);
            assert_eq!(d.steal(), Some(round * 2));
            assert_eq!(d.pop(), Some(round * 2 + 1));
        }
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let d = NativeDeque::new(2);
        d.push(1u64);
        d.push(2);
        d.push(3);
    }

    #[test]
    fn len_tracks() {
        let d = NativeDeque::new(8);
        assert!(d.is_empty());
        d.push(1u64);
        d.push(2);
        assert_eq!(d.len(), 2);
        d.pop();
        assert_eq!(d.len(), 1);
        assert_eq!(d.capacity(), 8);
    }

    /// One owner and several thieves hammer the deque; every pushed value
    /// must be consumed exactly once (conservation), which is the property
    /// the THE proof guarantees.
    #[test]
    fn concurrent_conservation() {
        const PER_ROUND: u64 = 64;
        // Miri executes this orders of magnitude slower; a few rounds
        // still cross every protocol path under its race detector.
        const ROUNDS: u64 = if cfg!(miri) { 4 } else { 200 };
        const THIEVES: usize = 3;
        let d = Arc::new(NativeDeque::new(PER_ROUND as usize + 1));
        let consumed = Arc::new(Counter::new(0));
        let sum = Arc::new(Counter::new(0));
        let done = Arc::new(Counter::new(0));

        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                while done.load(Ordering::Acquire) == 0 || !d.is_empty() {
                    if let Some(v) = d.steal() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }

        let mut expected_sum: u64 = 0;
        let mut next: u64 = 1;
        for _ in 0..ROUNDS {
            for _ in 0..PER_ROUND {
                d.push(next);
                expected_sum += next;
                next += 1;
            }
            // Owner pops about half back (LIFO), racing the thieves.
            for _ in 0..PER_ROUND / 2 {
                if let Some(v) = d.pop() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(v, Ordering::Relaxed);
                }
            }
            // Drain the rest ourselves or let thieves take them.
            while let Some(v) = d.pop() {
                consumed.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(v, Ordering::Relaxed);
            }
        }
        done.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Acquire), ROUNDS * PER_ROUND);
        assert_eq!(sum.load(Ordering::Acquire), expected_sum);
        assert!(d.is_empty());
    }

    /// The last-entry race distilled: each round pushes one entry and the
    /// owner's pop races a thief's steal for it; exactly one side may keep
    /// it. The speculative-read/claim/validate handshake in `steal` is
    /// what makes this hold — the earlier read-then-claim order let both
    /// sides keep the entry (see the op-granularity model in `uat-check`).
    #[test]
    fn last_entry_race_exactly_one_winner() {
        const ROUNDS: usize = if cfg!(miri) { 50 } else { 20_000 };
        let d = Arc::new(NativeDeque::new(2));
        let claims: Arc<Vec<Counter>> = Arc::new((0..ROUNDS).map(|_| Counter::new(0)).collect());
        let done = Arc::new(Counter::new(0));

        let thief = {
            let d = Arc::clone(&d);
            let claims = Arc::clone(&claims);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while done.load(Ordering::Acquire) == 0 {
                    if let Some(v) = d.steal() {
                        claims[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        for r in 0..ROUNDS {
            d.push(r as u64);
            // Owner pop returning None means the thief resolved the race
            // in its favour and records the value itself.
            if let Some(v) = d.pop() {
                claims[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        done.store(1, Ordering::Release);
        thief.join().unwrap();

        assert!(d.is_empty());
        for (r, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Acquire),
                1,
                "round {r} claimed twice or lost"
            );
        }
    }

    /// The instrumented steal is protocol-identical to the plain one and
    /// its phase stamps are ordered by construction.
    #[test]
    fn steal_phased_matches_steal_semantics() {
        let d = NativeDeque::new(8);
        let mut clk = 0u64;
        let mut clock = || {
            clk += 1;
            clk
        };
        let (got, ph) = d.steal_phased(&mut clock);
        assert_eq!(got, None);
        assert_eq!(ph.outcome, StealAttemptOutcome::Empty);
        assert!(ph.start <= ph.checked && ph.checked == ph.end);

        d.push(7u64);
        d.push(8);
        let (got, ph) = d.steal_phased(&mut clock);
        assert_eq!(got, Some(7));
        assert_eq!(ph.outcome, StealAttemptOutcome::Taken);
        assert!(ph.start <= ph.checked && ph.checked <= ph.locked && ph.locked <= ph.end);
        assert_eq!(d.pop(), Some(8));

        // A held lock aborts instead of queuing.
        d.push(9);
        d.lock.store(1, Ordering::Release);
        let (got, ph) = d.steal_phased(&mut clock);
        assert_eq!(got, None);
        assert_eq!(ph.outcome, StealAttemptOutcome::LockBusy);
        d.lock.store(0, Ordering::Release);
        assert_eq!(d.steal(), Some(9));
    }

    /// Two thieves only (owner quiescent): all entries stolen exactly once.
    #[test]
    fn thieves_only_race() {
        let n: u64 = if cfg!(miri) { 64 } else { 1000 };
        let d = Arc::new(NativeDeque::new(1024));
        for i in 0..n {
            d.push(i);
        }
        let taken = Arc::new(Counter::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let d = Arc::clone(&d);
                let taken = Arc::clone(&taken);
                std::thread::spawn(move || {
                    let mut local = 0u64;
                    while !d.is_empty() {
                        if d.steal().is_some() {
                            local += 1;
                        }
                    }
                    taken.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Acquire), n);
    }
}
