//! The canonical THE-deque memory layout, shared by every component
//! that addresses a deque's words.
//!
//! A deque occupies one contiguous block of the owner's memory:
//!
//! ```text
//! base + OFF_LOCK     lock     0 = free; acquired with fetch-and-add
//! base + OFF_TOP      top      steal end (H in the Cilk-5 THE paper)
//! base + OFF_BOTTOM   bottom   owner end (T); entries in [top, bottom)
//! base + OFF_ENTRIES  entries  capacity × 32-byte TaskqEntry
//! ```
//!
//! [`SimDeque`](crate::SimDeque) realises this layout in simulated
//! registered RDMA memory (every thief access is `base + OFF_*`);
//! [`NativeDeque`](crate::NativeDeque) realises the three control words
//! as `#[repr(C)]` atomics at the same offsets (asserted at compile
//! time; its entries live behind a pointer rather than inline, which is
//! fine intra-process where nothing computes remote addresses); and the
//! `uat-check` interleaving model derives its location bit-masks from
//! these offsets via [`loc_bit`]. Change the layout here and every
//! consumer moves together — or fails to compile.

/// Byte offset of the lock word.
pub const OFF_LOCK: u64 = 0;
/// Byte offset of `top`, the steal end.
pub const OFF_TOP: u64 = 8;
/// Byte offset of `bottom`, the owner end.
pub const OFF_BOTTOM: u64 = 16;
/// Byte offset of the first task-queue entry.
pub const OFF_ENTRIES: u64 = 24;

/// Bytes per control word (all fields are little-endian u64).
pub const WORD_BYTES: u64 = 8;

/// Bit index identifying the control word at byte offset `off` in a
/// location bit-mask (as used by the `uat-check` interleaving checker):
/// one bit per word, in layout order.
pub const fn loc_bit(off: u64) -> u32 {
    (off / WORD_BYTES) as u32
}

/// Memory orderings permitted on each control word, per operation:
/// `(field, operation, allowed orderings)`.
///
/// This is the static face of the memory-model catalogue (DESIGN.md
/// §11): the union, over every access site in `NativeDeque`, of the
/// orderings the `uat-check` release/acquire explorer proved sufficient
/// (clean RA suite) and necessary (each seeded downgrade outside this
/// table produces a counterexample trace). The `uat-lint` tool scans
/// `native.rs` and flags any atomic access on a THE-layout word whose
/// ordering is not listed here; `uat-check` cross-checks its model's
/// `OrdSpec::native()` against the same table, so the model, the code,
/// and the lint cannot drift apart silently.
///
/// The table is per *(field, operation)*, not per call site: an ordering
/// listed here is allowed anywhere that operation appears. Site-level
/// sufficiency (e.g. that the *publishing* bottom store specifically
/// must be at least `Release`, even though the locked take may be
/// `Relaxed`) is the explorer's job, not the lint's.
///
/// `compare_exchange` lists both the success and failure orderings.
pub const ORDERING_ALLOWLIST: &[(&str, &str, &[&str])] = &[
    // TTAS spin probe only; the CAS carries the synchronization.
    ("lock", "load", &["Relaxed"]),
    // Acquire on success heads the lock hand-off chain (pairs with the
    // previous holder's Release unlock); failure needs nothing.
    ("lock", "compare_exchange", &["Acquire", "Relaxed"]),
    // Release unlock: makes the critical section's writes visible to
    // the next holder's Acquire CAS.
    ("lock", "store", &["Release"]),
    // Loads: Relaxed under the lock (writers locked out) and for the
    // owner's advisory first read; Acquire for the thief pre-check and
    // the owner's push capacity check; SeqCst for the owner's
    // post-decrement re-read (the claim/re-read Dekker pair).
    ("top", "load", &["Relaxed", "Acquire", "SeqCst"]),
    // The thief's claim is the only top store and must stay SeqCst: it
    // pairs with the owner's SeqCst re-read.
    ("top", "store", &["SeqCst"]),
    // Relaxed for the owner's own reads (single writer); Acquire for
    // thief pre-checks and `len`; SeqCst for the locked thief's re-read
    // (the dip/locked-bottom Dekker pair).
    ("bottom", "load", &["Relaxed", "Acquire", "SeqCst"]),
    // Relaxed for the locked take (lock orders it); Release for the
    // push publish (carries the slot write); SeqCst for the pop's dip
    // and restore (the dip side of the Dekker pair).
    ("bottom", "store", &["Relaxed", "Release", "SeqCst"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_dense_and_ordered() {
        assert_eq!(OFF_LOCK, 0);
        assert_eq!(OFF_TOP, OFF_LOCK + WORD_BYTES);
        assert_eq!(OFF_BOTTOM, OFF_TOP + WORD_BYTES);
        assert_eq!(OFF_ENTRIES, OFF_BOTTOM + WORD_BYTES);
        assert_eq!(loc_bit(OFF_LOCK), 0);
        assert_eq!(loc_bit(OFF_TOP), 1);
        assert_eq!(loc_bit(OFF_BOTTOM), 2);
    }

    #[test]
    fn allowlist_covers_exactly_the_control_words() {
        let fields: std::collections::BTreeSet<&str> =
            ORDERING_ALLOWLIST.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(
            fields.into_iter().collect::<Vec<_>>(),
            ["bottom", "lock", "top"]
        );
        for (field, op, allowed) in ORDERING_ALLOWLIST {
            assert!(
                matches!(*op, "load" | "store" | "compare_exchange"),
                "{field}: unknown operation {op}"
            );
            assert!(!allowed.is_empty());
            for ord in *allowed {
                assert!(
                    matches!(
                        *ord,
                        "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                    ),
                    "{field}.{op}: unknown ordering {ord}"
                );
            }
        }
    }
}
