//! The canonical THE-deque memory layout, shared by every component
//! that addresses a deque's words.
//!
//! A deque occupies one contiguous block of the owner's memory:
//!
//! ```text
//! base + OFF_LOCK     lock     0 = free; acquired with fetch-and-add
//! base + OFF_TOP      top      steal end (H in the Cilk-5 THE paper)
//! base + OFF_BOTTOM   bottom   owner end (T); entries in [top, bottom)
//! base + OFF_ENTRIES  entries  capacity × 32-byte TaskqEntry
//! ```
//!
//! [`SimDeque`](crate::SimDeque) realises this layout in simulated
//! registered RDMA memory (every thief access is `base + OFF_*`);
//! [`NativeDeque`](crate::NativeDeque) realises the three control words
//! as `#[repr(C)]` atomics at the same offsets (asserted at compile
//! time; its entries live behind a pointer rather than inline, which is
//! fine intra-process where nothing computes remote addresses); and the
//! `uat-check` interleaving model derives its location bit-masks from
//! these offsets via [`loc_bit`]. Change the layout here and every
//! consumer moves together — or fails to compile.

/// Byte offset of the lock word.
pub const OFF_LOCK: u64 = 0;
/// Byte offset of `top`, the steal end.
pub const OFF_TOP: u64 = 8;
/// Byte offset of `bottom`, the owner end.
pub const OFF_BOTTOM: u64 = 16;
/// Byte offset of the first task-queue entry.
pub const OFF_ENTRIES: u64 = 24;

/// Bytes per control word (all fields are little-endian u64).
pub const WORD_BYTES: u64 = 8;

/// Bit index identifying the control word at byte offset `off` in a
/// location bit-mask (as used by the `uat-check` interleaving checker):
/// one bit per word, in layout order.
pub const fn loc_bit(off: u64) -> u32 {
    (off / WORD_BYTES) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_dense_and_ordered() {
        assert_eq!(OFF_LOCK, 0);
        assert_eq!(OFF_TOP, OFF_LOCK + WORD_BYTES);
        assert_eq!(OFF_BOTTOM, OFF_TOP + WORD_BYTES);
        assert_eq!(OFF_ENTRIES, OFF_BOTTOM + WORD_BYTES);
        assert_eq!(loc_bit(OFF_LOCK), 0);
        assert_eq!(loc_bit(OFF_TOP), 1);
        assert_eq!(loc_bit(OFF_BOTTOM), 2);
    }
}
