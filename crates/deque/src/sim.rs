//! THE-protocol deque over simulated RDMA memory.
//!
//! The deque lives in the owner's registered region with the canonical
//! layout of [`crate::layout`] (all fields little-endian u64):
//!
//! ```text
//! base + 0   lock     0 = free; acquired with fetch-and-add(+1), old==0
//! base + 8   top      steal end (H in the Cilk-5 THE paper)
//! base + 16  bottom   owner end (T); entries valid in [top, bottom)
//! base + 24  entries  capacity × 32-byte TaskqEntry, direct-indexed
//! ```
//!
//! Indices grow monotonically (they are "positions", not slots); slot =
//! `position % capacity`. The owner's push/pop are local memory accesses
//! (plus a local atomic in the pop conflict path); a thief runs the exact
//! Figure 6 phase sequence with one-sided operations only.

use crate::entry::{TaskqEntry, ENTRY_BYTES};
use crate::layout::{OFF_BOTTOM, OFF_ENTRIES, OFF_LOCK, OFF_TOP};
use uat_base::{Cycles, WorkerId};
use uat_rdma::{Fabric, RdmaError};

/// Result of an owner-side pop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopOutcome {
    /// Got the youngest entry (the parent was not stolen).
    Entry(TaskqEntry),
    /// Deque empty — the parent was stolen (Figure 4 line 15 `!ok`).
    Empty,
    /// Lost the last-entry race to a thief holding the lock; the caller
    /// must retry after the thief's critical section (a real victim would
    /// spin here — the simulator reschedules instead).
    ///
    /// This fires when the owner drains its queue while a thief is inside
    /// its multi-event critical section (lock → steal → stack transfer →
    /// unlock). It is also the protocol's protection against the victim
    /// reusing uni-address-region bytes that a thief is still RDMA-READing
    /// — the victim cannot conclude "my parent was stolen" (and therefore
    /// cannot drain/reuse the region) until the thief unlocks, which
    /// happens only *after* the stack transfer (Figure 6's ordering).
    Contended,
}

/// Result of one thief steal phase. The phase's RDMA latency is paid
/// whether or not it succeeds, so every variant carries the completion
/// instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealOutcome<T> {
    /// Phase succeeded.
    Ok(T),
    /// Queue empty — abort the steal.
    Empty(Cycles),
    /// Lock already held — abort the steal (Figure 6 line 11-12).
    LockBusy(Cycles),
}

/// Handle to a deque resident in `owner`'s registered memory at `base`.
///
/// The handle carries no deque state: everything lives in fabric memory,
/// which is what makes the remote path genuinely one-sided.
#[derive(Clone, Copy, Debug)]
pub struct SimDeque {
    owner: WorkerId,
    base: u64,
    capacity: u64,
}

impl SimDeque {
    /// Bytes of registered memory a deque of `capacity` entries needs.
    pub fn footprint(capacity: u64) -> u64 {
        OFF_ENTRIES + capacity * ENTRY_BYTES as u64
    }

    /// Bind a deque at `base` in `owner`'s memory and zero its words.
    /// The caller must already have registered at least
    /// [`footprint`](Self::footprint) bytes there.
    pub fn init(
        fabric: &mut Fabric,
        owner: WorkerId,
        base: u64,
        capacity: u64,
    ) -> Result<Self, RdmaError> {
        assert!(capacity > 0, "capacity must be positive");
        let mem = fabric.mem_mut(owner);
        mem.write_u64_local(base + OFF_LOCK, 0)?;
        mem.write_u64_local(base + OFF_TOP, 0)?;
        mem.write_u64_local(base + OFF_BOTTOM, 0)?;
        Ok(SimDeque {
            owner,
            base,
            capacity,
        })
    }

    /// The owning worker.
    pub fn owner(&self) -> WorkerId {
        self.owner
    }

    /// Address of the entry at `position`.
    fn entry_addr(&self, position: u64) -> u64 {
        self.base + OFF_ENTRIES + (position % self.capacity) * ENTRY_BYTES as u64
    }

    // ------------------------------------------------------------------
    // Owner-side operations (local memory; Figure 4's TASK_QUEUE_PUSH/POP)
    // ------------------------------------------------------------------

    /// Push an entry at the bottom. Errors if the deque is full, which in
    /// the real runtime would mean the task tree outgrew the queue.
    pub fn push(&self, fabric: &mut Fabric, entry: TaskqEntry) -> Result<(), RdmaError> {
        let mem = fabric.mem_mut(self.owner);
        let top = mem.read_u64_local(self.base + OFF_TOP)?;
        let bottom = mem.read_u64_local(self.base + OFF_BOTTOM)?;
        assert!(
            bottom - top < self.capacity,
            "task queue overflow: {} live entries (capacity {}); deepen the queue",
            bottom - top,
            self.capacity
        );
        mem.write_local(self.entry_addr(bottom), &entry.to_bytes())?;
        // Store-store order: entry visible before the bottom bump.
        mem.write_u64_local(self.base + OFF_BOTTOM, bottom + 1)?;
        Ok(())
    }

    /// Owner pop from the bottom (THE protocol, Cilk-5 Figure 5 shape).
    pub fn pop(&self, fabric: &mut Fabric) -> Result<PopOutcome, RdmaError> {
        let mem = fabric.mem_mut(self.owner);
        let bottom = mem.read_u64_local(self.base + OFF_BOTTOM)?;
        if bottom == mem.read_u64_local(self.base + OFF_TOP)? {
            // Looks empty — but "my last entry was stolen" may only be
            // concluded under the lock: a thief that took the entry is
            // still RDMA-READing the frames until it unlocks, and the
            // owner must not reuse them before that (Figure 6's
            // unlock-after-transfer ordering).
            if mem.read_u64_local(self.base + OFF_LOCK)? != 0 {
                return Ok(PopOutcome::Contended);
            }
            return Ok(PopOutcome::Empty);
        }
        // T--; fence; read H.
        let new_bottom = bottom - 1;
        mem.write_u64_local(self.base + OFF_BOTTOM, new_bottom)?;
        let top = mem.read_u64_local(self.base + OFF_TOP)?;
        if top > new_bottom {
            // Deque seen empty: the thief won or is winning. Restore and
            // resolve under the lock.
            mem.write_u64_local(self.base + OFF_BOTTOM, bottom)?;
            let lock = mem.read_u64_local(self.base + OFF_LOCK)?;
            if lock != 0 {
                // A thief is mid-steal; retry after its critical section.
                return Ok(PopOutcome::Contended);
            }
            // Lock free: take it locally and re-examine.
            mem.write_u64_local(self.base + OFF_LOCK, 1)?;
            let top = mem.read_u64_local(self.base + OFF_TOP)?;
            let outcome = if top >= bottom {
                // The last entry is gone.
                PopOutcome::Empty
            } else {
                mem.write_u64_local(self.base + OFF_BOTTOM, bottom - 1)?;
                let mut b = [0u8; ENTRY_BYTES];
                mem.read_local(self.entry_addr(bottom - 1), &mut b)?;
                PopOutcome::Entry(TaskqEntry::from_bytes(&b))
            };
            let mem = fabric.mem_mut(self.owner);
            mem.write_u64_local(self.base + OFF_LOCK, 0)?;
            return Ok(outcome);
        }
        let mut b = [0u8; ENTRY_BYTES];
        mem.read_local(self.entry_addr(new_bottom), &mut b)?;
        Ok(PopOutcome::Entry(TaskqEntry::from_bytes(&b)))
    }

    /// Number of entries currently in the deque (owner-side view).
    pub fn len(&self, fabric: &Fabric) -> u64 {
        let mem = fabric.mem(self.owner);
        let top = mem.read_u64_local(self.base + OFF_TOP).unwrap_or(0);
        let bottom = mem.read_u64_local(self.base + OFF_BOTTOM).unwrap_or(0);
        bottom.saturating_sub(top)
    }

    /// Whether the deque is empty (owner-side view).
    pub fn is_empty(&self, fabric: &Fabric) -> bool {
        self.len(fabric) == 0
    }

    // ------------------------------------------------------------------
    // Thief-side phases (one-sided RDMA; Figure 6 / Table 3)
    // ------------------------------------------------------------------

    /// Phase 1 — *empty check*: one RDMA READ of (top, bottom).
    /// Returns `Empty` to abort, or the completion instant to continue.
    pub fn remote_empty_check(
        &self,
        fabric: &mut Fabric,
        now: Cycles,
        thief: WorkerId,
    ) -> Result<StealOutcome<Cycles>, RdmaError> {
        let mut b = [0u8; 16];
        let done = fabric.read(now, thief, self.owner, self.base + OFF_TOP, &mut b)?;
        let top = u64::from_le_bytes(b[0..8].try_into().expect("8"));
        let bottom = u64::from_le_bytes(b[8..16].try_into().expect("8"));
        Ok(if top >= bottom {
            StealOutcome::Empty(done)
        } else {
            StealOutcome::Ok(done)
        })
    }

    /// Phase 2 — *lock*: remote fetch-and-add on the lock word.
    /// `LockBusy` aborts the steal attempt (the failed increment is erased
    /// by the holder's unlock WRITE of 0).
    pub fn remote_try_lock(
        &self,
        fabric: &mut Fabric,
        now: Cycles,
        thief: WorkerId,
    ) -> Result<StealOutcome<Cycles>, RdmaError> {
        let (old, done) = fabric.fetch_add_u64(now, thief, self.owner, self.base + OFF_LOCK, 1)?;
        Ok(if old == 0 {
            StealOutcome::Ok(done)
        } else {
            StealOutcome::LockBusy(done)
        })
    }

    /// Phase 3 — *steal*: with the lock held, two RDMA READs (indices,
    /// then the top entry) and one RDMA WRITE (top+1). `Empty` means the
    /// owner drained the queue since the empty check; the caller must
    /// still unlock.
    pub fn remote_steal_entry(
        &self,
        fabric: &mut Fabric,
        now: Cycles,
        thief: WorkerId,
    ) -> Result<StealOutcome<(TaskqEntry, Cycles)>, RdmaError> {
        let mut idx = [0u8; 16];
        let t1 = fabric.read(now, thief, self.owner, self.base + OFF_TOP, &mut idx)?;
        let top = u64::from_le_bytes(idx[0..8].try_into().expect("8"));
        let bottom = u64::from_le_bytes(idx[8..16].try_into().expect("8"));
        if top >= bottom {
            return Ok(StealOutcome::Empty(t1));
        }
        let mut eb = [0u8; ENTRY_BYTES];
        let t2 = fabric.read(t1, thief, self.owner, self.entry_addr(top), &mut eb)?;
        let t3 = fabric.write_u64(t2, thief, self.owner, self.base + OFF_TOP, top + 1)?;
        Ok(StealOutcome::Ok((TaskqEntry::from_bytes(&eb), t3)))
    }

    /// Phase 4 — *unlock*: one RDMA WRITE of 0 to the lock word.
    pub fn remote_unlock(
        &self,
        fabric: &mut Fabric,
        now: Cycles,
        thief: WorkerId,
    ) -> Result<Cycles, RdmaError> {
        fabric.write_u64(now, thief, self.owner, self.base + OFF_LOCK, 0)
    }

    /// Whether the lock word is currently held (test/diagnostic helper).
    pub fn lock_held(&self, fabric: &Fabric) -> bool {
        fabric
            .mem(self.owner)
            .read_u64_local(self.base + OFF_LOCK)
            .map(|v| v != 0)
            .unwrap_or(false)
    }

    /// Maximum simultaneous entries.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Diagnostic snapshot of the full shared state: lock word, indices,
    /// and the live entries in `[top, bottom)` oldest-first. Reads
    /// owner-side without cost accounting; used by the engine's `audit`
    /// feature and by `uat-check`'s differential replay.
    pub fn snapshot(&self, fabric: &Fabric) -> Result<DequeSnapshot, RdmaError> {
        let mem = fabric.mem(self.owner);
        let lock = mem.read_u64_local(self.base + OFF_LOCK)?;
        let top = mem.read_u64_local(self.base + OFF_TOP)?;
        let bottom = mem.read_u64_local(self.base + OFF_BOTTOM)?;
        let mut entries = Vec::new();
        if top < bottom {
            for pos in top..bottom {
                let mut eb = [0u8; ENTRY_BYTES];
                mem.read_local(self.entry_addr(pos), &mut eb)?;
                entries.push(TaskqEntry::from_bytes(&eb));
            }
        }
        Ok(DequeSnapshot {
            lock,
            top,
            bottom,
            entries,
        })
    }
}

/// Point-in-time view of a [`SimDeque`]'s shared words, for invariant
/// auditing and model-checker replay (see [`SimDeque::snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DequeSnapshot {
    /// Lock word (0 = free; >0 while a thief holds it, counting any
    /// failed fetch-and-add increments not yet erased by the unlock).
    pub lock: u64,
    /// Steal end (H): position of the oldest live entry.
    pub top: u64,
    /// Owner end (T): one past the youngest live entry.
    pub bottom: u64,
    /// Live entries in `[top, bottom)`, oldest first.
    pub entries: Vec<TaskqEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uat_base::{CostModel, Topology};

    const OWNER: WorkerId = WorkerId(0);
    const THIEF: WorkerId = WorkerId(1);
    const BASE: u64 = 0x10_000;

    fn setup(capacity: u64) -> (Fabric, SimDeque) {
        let mut f = Fabric::new(Topology::new(2, 1), CostModel::fx10());
        f.register(OWNER, BASE, SimDeque::footprint(capacity) as usize)
            .unwrap();
        let d = SimDeque::init(&mut f, OWNER, BASE, capacity).unwrap();
        (f, d)
    }

    fn entry(task: u64) -> TaskqEntry {
        TaskqEntry {
            task,
            ctx: task * 10,
            frame_base: 0x7000 + task,
            frame_size: 100 + task,
        }
    }

    fn full_steal(f: &mut Fabric, d: &SimDeque, now: Cycles) -> Option<TaskqEntry> {
        match d.remote_empty_check(f, now, THIEF).unwrap() {
            StealOutcome::Ok(t) => match d.remote_try_lock(f, t, THIEF).unwrap() {
                StealOutcome::Ok(t) => {
                    let r = d.remote_steal_entry(f, t, THIEF).unwrap();
                    match r {
                        StealOutcome::Ok((e, t)) => {
                            d.remote_unlock(f, t, THIEF).unwrap();
                            Some(e)
                        }
                        _ => {
                            d.remote_unlock(f, t, THIEF).unwrap();
                            None
                        }
                    }
                }
                _ => None,
            },
            _ => None,
        }
    }

    #[test]
    fn owner_lifo_order() {
        let (mut f, d) = setup(16);
        for i in 0..5 {
            d.push(&mut f, entry(i)).unwrap();
        }
        assert_eq!(d.len(&f), 5);
        for i in (0..5).rev() {
            match d.pop(&mut f).unwrap() {
                PopOutcome::Entry(e) => assert_eq!(e, entry(i)),
                other => panic!("expected entry, got {other:?}"),
            }
        }
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Empty);
    }

    #[test]
    fn thief_fifo_order() {
        let (mut f, d) = setup(16);
        for i in 0..4 {
            d.push(&mut f, entry(i)).unwrap();
        }
        for i in 0..4 {
            let e = full_steal(&mut f, &d, Cycles(i * 100_000)).unwrap();
            assert_eq!(e, entry(i), "steals take the oldest entry");
        }
        assert!(full_steal(&mut f, &d, Cycles(0)).is_none());
        assert!(d.is_empty(&f));
    }

    #[test]
    fn mixed_pop_and_steal_conserve_entries() {
        let (mut f, d) = setup(64);
        let mut got = Vec::new();
        for i in 0..10 {
            d.push(&mut f, entry(i)).unwrap();
        }
        // Alternate: owner pops one, thief steals one.
        loop {
            let mut progressed = false;
            if let PopOutcome::Entry(e) = d.pop(&mut f).unwrap() {
                got.push(e.task);
                progressed = true;
            }
            if let Some(e) = full_steal(&mut f, &d, Cycles(0)) {
                got.push(e.task);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_check_aborts_cheaply() {
        let (mut f, d) = setup(8);
        let r = d.remote_empty_check(&mut f, Cycles(0), THIEF).unwrap();
        assert!(matches!(r, StealOutcome::Empty(_)));
        // An aborted steal never touched the lock.
        assert!(!d.lock_held(&f));
        assert_eq!(f.stats().faas, 0);
    }

    #[test]
    fn lock_busy_aborts_second_thief() {
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(1)).unwrap();
        d.push(&mut f, entry(2)).unwrap();
        // Thief A acquires the lock...
        let t = match d.remote_try_lock(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        // ...thief B (same worker id is fine for the protocol) fails.
        let r = d.remote_try_lock(&mut f, Cycles(10), THIEF).unwrap();
        assert!(matches!(r, StealOutcome::LockBusy(_)));
        // A completes and unlocks; the failed increment is erased.
        let (e, t2) = match d.remote_steal_entry(&mut f, t, THIEF).unwrap() {
            StealOutcome::Ok(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(e, entry(1));
        d.remote_unlock(&mut f, t2, THIEF).unwrap();
        assert!(!d.lock_held(&f));
        // Lock is usable again.
        assert!(matches!(
            d.remote_try_lock(&mut f, Cycles(20), THIEF).unwrap(),
            StealOutcome::Ok(_)
        ));
    }

    #[test]
    fn owner_wins_last_entry_race_on_fast_path() {
        // THE's defining property: the owner's pop never takes the lock
        // on the fast path, so a thief that has locked but not yet
        // advanced `top` loses the last entry to the owner (the same
        // outcome Cilk-5 guarantees).
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(1)).unwrap();
        let t = match d.remote_try_lock(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Entry(entry(1)));
        // The thief, still holding the lock, finds the queue drained.
        assert!(matches!(
            d.remote_steal_entry(&mut f, t, THIEF).unwrap(),
            StealOutcome::Empty(_)
        ));
        d.remote_unlock(&mut f, t, THIEF).unwrap();
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Empty);
    }

    #[test]
    fn steal_entry_empty_after_owner_drains() {
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(1)).unwrap();
        // Thief passes the empty check...
        let t = match d.remote_empty_check(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        // ...owner pops the last entry meanwhile...
        assert!(matches!(d.pop(&mut f).unwrap(), PopOutcome::Entry(_)));
        // ...thief locks and finds nothing.
        let t = match d.remote_try_lock(&mut f, t, THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            d.remote_steal_entry(&mut f, t, THIEF).unwrap(),
            StealOutcome::Empty(_)
        ));
        d.remote_unlock(&mut f, t, THIEF).unwrap();
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut f, d) = setup(4);
        // Push/pop 20 entries through a 4-slot queue.
        for i in 0..20 {
            d.push(&mut f, entry(i)).unwrap();
            match d.pop(&mut f).unwrap() {
                PopOutcome::Entry(e) => assert_eq!(e.task, i),
                other => panic!("{other:?}"),
            }
        }
        // And interleaved with steals past the wrap point.
        for round in 0..6 {
            d.push(&mut f, entry(100 + round * 2)).unwrap();
            d.push(&mut f, entry(101 + round * 2)).unwrap();
            let stolen = full_steal(&mut f, &d, Cycles(0)).unwrap();
            assert_eq!(stolen.task, 100 + round * 2, "FIFO across wraparound");
            match d.pop(&mut f).unwrap() {
                PopOutcome::Entry(e) => assert_eq!(e.task, 101 + round * 2),
                other => panic!("{other:?}"),
            }
        }
        assert!(d.is_empty(&f));
    }

    #[test]
    #[should_panic(expected = "task queue overflow")]
    fn overflow_panics() {
        let (mut f, d) = setup(2);
        for i in 0..3 {
            d.push(&mut f, entry(i)).unwrap();
        }
    }

    #[test]
    fn thief_wins_last_entry_owner_sees_contended_then_empty() {
        // The complement of `owner_wins_last_entry_race_on_fast_path`,
        // found by enumerating one-entry interleavings in `uat-check`:
        // the thief completes phase 3 first, so the owner's pop lands on
        // an empty deque while the lock is still held and must observe
        // `Contended` (not `Empty`) — concluding "stolen" before the
        // unlock would let the owner reuse region bytes the thief is
        // still transferring.
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(7)).unwrap();
        let t = match d.remote_try_lock(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        let (e, t2) = match d.remote_steal_entry(&mut f, t, THIEF).unwrap() {
            StealOutcome::Ok(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(e, entry(7));
        // Owner pops while the thief is between phase 3 and phase 4.
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Contended);
        d.remote_unlock(&mut f, t2, THIEF).unwrap();
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Empty);
    }

    #[test]
    fn steal_from_full_deque_across_wraparound() {
        // Fill to capacity with positions already past the wrap point, so
        // every slot is live and `position % capacity` has wrapped; the
        // thief must still drain in exact FIFO order.
        let (mut f, d) = setup(3);
        for i in 0..5 {
            // Advance positions to 5 (slot index wraps at 3).
            d.push(&mut f, entry(i)).unwrap();
            assert!(matches!(d.pop(&mut f).unwrap(), PopOutcome::Entry(_)));
        }
        for i in 10..13 {
            d.push(&mut f, entry(i)).unwrap();
        }
        assert_eq!(d.len(&f), 3, "deque is at capacity");
        for i in 10..13 {
            let e = full_steal(&mut f, &d, Cycles(i * 1_000_000)).unwrap();
            assert_eq!(e, entry(i), "FIFO across a full wrapped buffer");
        }
        assert!(d.is_empty(&f));
        assert!(!d.lock_held(&f));
    }

    #[test]
    fn unlock_required_after_failed_steal_entry() {
        // Phase 3 returning `Empty` does NOT release the lock — the
        // protocol obliges the thief to run phase 4 regardless. Verify
        // the lock stays held after the failure and that releasing it
        // restores the deque for both sides.
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(1)).unwrap();
        let t = match d.remote_try_lock(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Entry(entry(1)));
        let t = match d.remote_steal_entry(&mut f, t, THIEF).unwrap() {
            StealOutcome::Empty(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(d.lock_held(&f), "failed phase 3 must leave the lock held");
        // While held, other thieves bounce and an empty-deque owner pop
        // reports Contended rather than Empty.
        assert!(matches!(
            d.remote_try_lock(&mut f, t, THIEF).unwrap(),
            StealOutcome::LockBusy(_)
        ));
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Contended);
        let t = d.remote_unlock(&mut f, t, THIEF).unwrap();
        assert!(!d.lock_held(&f));
        assert_eq!(d.pop(&mut f).unwrap(), PopOutcome::Empty);
        // And the full steal path works again end to end.
        d.push(&mut f, entry(2)).unwrap();
        assert_eq!(full_steal(&mut f, &d, t).unwrap(), entry(2));
    }

    #[test]
    fn snapshot_reflects_shared_words() {
        let (mut f, d) = setup(4);
        for i in 0..3 {
            d.push(&mut f, entry(i)).unwrap();
        }
        assert!(matches!(d.pop(&mut f).unwrap(), PopOutcome::Entry(_)));
        let s = d.snapshot(&f).unwrap();
        assert_eq!((s.lock, s.top, s.bottom), (0, 0, 2));
        assert_eq!(s.entries, vec![entry(0), entry(1)]);
        let t = match d.remote_try_lock(&mut f, Cycles(0), THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(d.snapshot(&f).unwrap().lock, 1);
        d.remote_unlock(&mut f, t, THIEF).unwrap();
        assert_eq!(d.snapshot(&f).unwrap().lock, 0);
    }

    #[test]
    fn phase_costs_follow_table3() {
        // The four phases' unloaded costs match the Table 3 op inventory:
        // empty check = small READ; lock = FAA (9.8K); steal = 2 READ + 1
        // WRITE; unlock = small WRITE.
        let (mut f, d) = setup(8);
        d.push(&mut f, entry(1)).unwrap();
        let c = CostModel::fx10();
        let t0 = Cycles(0);
        let t1 = match d.remote_empty_check(&mut f, t0, THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t1, c.rdma_read(16, false));
        let t2 = match d.remote_try_lock(&mut f, t1, THIEF).unwrap() {
            StealOutcome::Ok(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t2.since(t1), Cycles(9_800));
        let (_, t3) = match d.remote_steal_entry(&mut f, t2, THIEF).unwrap() {
            StealOutcome::Ok(v) => v,
            other => panic!("{other:?}"),
        };
        let expect =
            c.rdma_read(16, false) + c.rdma_read(ENTRY_BYTES, false) + c.rdma_write(8, false);
        assert_eq!(t3.since(t2), expect);
        let t4 = d.remote_unlock(&mut f, t3, THIEF).unwrap();
        assert_eq!(t4.since(t3), c.rdma_write(8, false));
    }
}
