//! Simulated virtual memory.
//!
//! Section 4 of the paper argues that iso-address thread migration is
//! unscalable because of how it uses *virtual memory*: every node must
//! reserve the stack addresses of every worker in the system (2^49 bytes in
//! the paper's example — more than x86-64's 2^48 VA space), physical pages
//! are committed on first touch as stacks migrate, and RDMA requires pinned
//! pages which cannot cover such a reservation. To *quantify* those claims
//! we model an OS-level address space per simulated process:
//!
//! - [`AddressSpace::reserve`] / [`AddressSpace::reserve_at`] create
//!   reservations (like `mmap(PROT_NONE)`), consuming VA space only;
//! - [`AddressSpace::touch`] simulates access: each first touch of a page
//!   commits a physical page and counts a page fault (21K cycles on
//!   SPARC64IXfx, charged by the caller via the cost model);
//! - [`AddressSpace::pin`] commits and pins pages for RDMA registration;
//! - accounting reports reserved / committed / pinned bytes and fault
//!   counts, which the `iso_vs_uni` experiment turns into the paper's
//!   Section 4 numbers.
//!
//! The [`RegionAllocator`] provides the `pinned_malloc`-style variable-size
//! allocator (Figure 8) used for the RDMA region that hosts suspended
//! stacks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod space;

pub use alloc::RegionAllocator;
pub use space::{AddressSpace, MemStats, Reservation, VmemError, PAGE_SIZE};
