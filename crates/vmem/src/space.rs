//! Per-process simulated address spaces.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Simulated page size in bytes. FX10's XTCOS uses 8 KiB base pages on
/// SPARC64IXfx, but the paper's arithmetic (and x86-64) uses 4 KiB; the
/// experiments that depend on it take the size from here.
pub const PAGE_SIZE: u64 = 4096;

/// Virtual-address-space size limit of current x86-64 processors (2^48),
/// the bound the paper's Section 4 example exceeds.
pub const X86_64_VA_LIMIT: u64 = 1 << 48;

/// Errors from address-space operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmemError {
    /// The requested range overlaps an existing reservation.
    Overlap {
        /// Requested base address.
        addr: u64,
        /// Requested length.
        len: u64,
    },
    /// An access or pin touched memory with no reservation behind it.
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Reservation would exceed the address-space size limit.
    OutOfAddressSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// Zero-length reservation or access.
    ZeroLength,
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::Overlap { addr, len } => {
                write!(f, "reservation [{addr:#x}, +{len:#x}) overlaps an existing one")
            }
            VmemError::Unmapped { addr } => write!(f, "access to unmapped address {addr:#x}"),
            VmemError::OutOfAddressSpace {
                requested,
                available,
            } => write!(
                f,
                "out of virtual address space: requested {requested:#x} bytes, {available:#x} available"
            ),
            VmemError::ZeroLength => write!(f, "zero-length operation"),
        }
    }
}

impl std::error::Error for VmemError {}

/// A contiguous reserved range of virtual addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// First address of the range (page aligned).
    pub base: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
}

impl Reservation {
    /// One past the last address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether `addr` falls inside the reservation.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Memory accounting snapshot for one address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Bytes of virtual address space currently reserved.
    pub reserved: u64,
    /// Peak reserved bytes over the space's lifetime.
    pub peak_reserved: u64,
    /// Bytes of physical memory committed (touched or pinned pages).
    pub committed: u64,
    /// Peak committed bytes.
    pub peak_committed: u64,
    /// Bytes currently pinned (registered for RDMA).
    pub pinned: u64,
    /// Total page faults taken (first touches of reserved pages).
    pub faults: u64,
}

/// A simulated process address space.
///
/// Tracks reservations exactly and committed/pinned state at page
/// granularity, *sparsely*: a 2^49-byte iso-address reservation costs a few
/// words here, while its touched pages are recorded one by one — which is
/// precisely the asymmetry the paper exploits in its analysis.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    /// Reservations keyed by base address.
    reservations: BTreeMap<u64, Reservation>,
    /// Committed (physically backed) pages, by page index.
    committed: HashSet<u64>,
    /// Pinned pages, by page index (subset of committed).
    pinned: HashSet<u64>,
    /// Bump pointer for address assignment of non-fixed reservations.
    next_free: u64,
    /// Size limit of this address space.
    va_limit: u64,
    stats: MemStats,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Fresh address space with the x86-64 2^48 VA limit.
    pub fn new() -> Self {
        Self::with_limit(X86_64_VA_LIMIT)
    }

    /// Fresh address space with an explicit VA size limit (the Section 4
    /// experiment uses this to show iso-address exhausting 2^48).
    pub fn with_limit(va_limit: u64) -> Self {
        AddressSpace {
            reservations: BTreeMap::new(),
            committed: HashSet::new(),
            pinned: HashSet::new(),
            // Leave the low 64 MiB unused, like a real process image would
            // (scaled down for artificially small spaces).
            next_free: (0x0400_0000u64).min(va_limit / 4).max(PAGE_SIZE),
            va_limit,
            stats: MemStats::default(),
        }
    }

    /// Round `len` up to a whole number of pages.
    #[inline]
    pub fn page_align(len: u64) -> u64 {
        len.div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    /// Reserve `len` bytes at a system-chosen address.
    pub fn reserve(&mut self, len: u64) -> Result<Reservation, VmemError> {
        if len == 0 {
            return Err(VmemError::ZeroLength);
        }
        let len = Self::page_align(len);
        // First-fit from the bump pointer; skip over existing reservations.
        let mut base = self.next_free;
        loop {
            match self.conflicting(base, len) {
                None => break,
                Some(r) => base = r.end(),
            }
            if base.checked_add(len).is_none() {
                return Err(VmemError::OutOfAddressSpace {
                    requested: len,
                    available: 0,
                });
            }
        }
        let r = self.insert(base, len)?;
        self.next_free = r.end();
        Ok(r)
    }

    /// Reserve `[addr, addr+len)` exactly (like `mmap(MAP_FIXED_NOREPLACE)`).
    ///
    /// This is how every uni-address process maps *the* uni-address region
    /// at the same virtual address, and how iso-address reserves the global
    /// stack range on every node.
    pub fn reserve_at(&mut self, addr: u64, len: u64) -> Result<Reservation, VmemError> {
        if len == 0 {
            return Err(VmemError::ZeroLength);
        }
        assert_eq!(
            addr % PAGE_SIZE,
            0,
            "fixed reservations must be page aligned"
        );
        let len = Self::page_align(len);
        if self.conflicting(addr, len).is_some() {
            return Err(VmemError::Overlap { addr, len });
        }
        self.insert(addr, len)
    }

    fn insert(&mut self, base: u64, len: u64) -> Result<Reservation, VmemError> {
        let end = base.checked_add(len).ok_or(VmemError::OutOfAddressSpace {
            requested: len,
            available: 0,
        })?;
        if end > self.va_limit || self.stats.reserved.saturating_add(len) > self.va_limit {
            return Err(VmemError::OutOfAddressSpace {
                requested: len,
                available: self.va_limit.saturating_sub(self.stats.reserved),
            });
        }
        let r = Reservation { base, len };
        self.reservations.insert(base, r);
        self.stats.reserved += len;
        self.stats.peak_reserved = self.stats.peak_reserved.max(self.stats.reserved);
        Ok(r)
    }

    fn conflicting(&self, base: u64, len: u64) -> Option<Reservation> {
        let end = base.saturating_add(len);
        // Candidate: the last reservation starting at or before `end`.
        self.reservations
            .range(..end)
            .next_back()
            .map(|(_, r)| *r)
            .filter(|r| r.end() > base)
    }

    /// Release a reservation, decommitting and unpinning its pages.
    pub fn release(&mut self, r: Reservation) -> Result<(), VmemError> {
        match self.reservations.remove(&r.base) {
            Some(found) if found == r => {}
            Some(found) => {
                // Put it back; caller passed a stale handle.
                self.reservations.insert(found.base, found);
                return Err(VmemError::Unmapped { addr: r.base });
            }
            None => return Err(VmemError::Unmapped { addr: r.base }),
        }
        self.stats.reserved -= r.len;
        for p in page_range(r.base, r.len) {
            if self.committed.remove(&p) {
                self.stats.committed -= PAGE_SIZE;
            }
            if self.pinned.remove(&p) {
                self.stats.pinned -= PAGE_SIZE;
            }
        }
        Ok(())
    }

    /// Simulate an access to `[addr, addr+len)`.
    ///
    /// Returns the number of page faults taken (pages committed by this
    /// access); the caller converts that to cycles via the cost model.
    pub fn touch(&mut self, addr: u64, len: u64) -> Result<u64, VmemError> {
        if len == 0 {
            return Err(VmemError::ZeroLength);
        }
        self.check_mapped(addr, len)?;
        let mut faults = 0;
        for p in page_range(addr, len) {
            if self.committed.insert(p) {
                faults += 1;
                self.stats.committed += PAGE_SIZE;
            }
        }
        self.stats.faults += faults;
        self.stats.peak_committed = self.stats.peak_committed.max(self.stats.committed);
        Ok(faults)
    }

    /// Pin `[addr, addr+len)` for RDMA: commits (without counting faults —
    /// registration pre-faults pages) and marks pages pinned.
    pub fn pin(&mut self, addr: u64, len: u64) -> Result<(), VmemError> {
        if len == 0 {
            return Err(VmemError::ZeroLength);
        }
        self.check_mapped(addr, len)?;
        for p in page_range(addr, len) {
            if self.committed.insert(p) {
                self.stats.committed += PAGE_SIZE;
            }
            if self.pinned.insert(p) {
                self.stats.pinned += PAGE_SIZE;
            }
        }
        self.stats.peak_committed = self.stats.peak_committed.max(self.stats.committed);
        Ok(())
    }

    /// Whether every page of `[addr, addr+len)` is pinned (an RDMA
    /// operation targeting the range is legal).
    pub fn is_pinned(&self, addr: u64, len: u64) -> bool {
        len > 0 && page_range(addr, len).all(|p| self.pinned.contains(&p))
    }

    /// Whether a page has been committed (touched or pinned).
    pub fn is_committed(&self, addr: u64) -> bool {
        self.committed.contains(&(addr / PAGE_SIZE))
    }

    /// The reservation containing `addr`, if any.
    pub fn reservation_of(&self, addr: u64) -> Option<Reservation> {
        self.reservations
            .range(..=addr)
            .next_back()
            .map(|(_, r)| *r)
            .filter(|r| r.contains(addr))
    }

    fn check_mapped(&self, addr: u64, len: u64) -> Result<(), VmemError> {
        // The whole range must lie in one reservation (stacks never span
        // reservations in either scheme).
        match self.reservation_of(addr) {
            Some(r) if addr + len <= r.end() => Ok(()),
            Some(_) | None => Err(VmemError::Unmapped { addr }),
        }
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Remaining unreserved virtual address space.
    pub fn va_available(&self) -> u64 {
        self.va_limit - self.stats.reserved
    }
}

fn page_range(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / PAGE_SIZE;
    let last = (addr + len - 1) / PAGE_SIZE;
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_assigns_distinct_ranges() {
        let mut a = AddressSpace::new();
        let r1 = a.reserve(10_000).unwrap();
        let r2 = a.reserve(10_000).unwrap();
        assert_eq!(r1.len % PAGE_SIZE, 0);
        assert!(r1.end() <= r2.base || r2.end() <= r1.base);
        assert_eq!(a.stats().reserved, r1.len + r2.len);
    }

    #[test]
    fn reserve_at_fixed_address() {
        let mut a = AddressSpace::new();
        let r = a.reserve_at(0x7000_0000, 4096).unwrap();
        assert_eq!(r.base, 0x7000_0000);
        assert!(a.reserve_at(0x7000_0000, 4096).is_err(), "overlap rejected");
    }

    #[test]
    fn overlap_detection_edges() {
        let mut a = AddressSpace::new();
        a.reserve_at(0x10000, 2 * PAGE_SIZE).unwrap();
        // Abutting on both sides is fine.
        a.reserve_at(0x10000 - PAGE_SIZE, PAGE_SIZE).unwrap();
        a.reserve_at(0x10000 + 2 * PAGE_SIZE, PAGE_SIZE).unwrap();
        // One byte of overlap (page-granular) is not.
        assert!(matches!(
            a.reserve_at(0x10000 + PAGE_SIZE, 2 * PAGE_SIZE),
            Err(VmemError::Overlap { .. })
        ));
    }

    #[test]
    fn touch_commits_once_per_page() {
        let mut a = AddressSpace::new();
        let r = a.reserve(8 * PAGE_SIZE).unwrap();
        let f1 = a.touch(r.base, 3 * PAGE_SIZE).unwrap();
        assert_eq!(f1, 3);
        let f2 = a.touch(r.base, 3 * PAGE_SIZE).unwrap();
        assert_eq!(f2, 0, "second touch faults nothing");
        let f3 = a.touch(r.base + 2 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(f3, 1, "only the new page faults");
        assert_eq!(a.stats().faults, 4);
        assert_eq!(a.stats().committed, 4 * PAGE_SIZE);
    }

    #[test]
    fn touch_subpage_ranges() {
        let mut a = AddressSpace::new();
        let r = a.reserve(4 * PAGE_SIZE).unwrap();
        // A 10-byte access straddling a page boundary faults two pages.
        let f = a.touch(r.base + PAGE_SIZE - 5, 10).unwrap();
        assert_eq!(f, 2);
    }

    #[test]
    fn touch_unmapped_is_error() {
        let mut a = AddressSpace::new();
        assert!(matches!(
            a.touch(0xdead_0000, 8),
            Err(VmemError::Unmapped { .. })
        ));
        let r = a.reserve(PAGE_SIZE).unwrap();
        // Runs off the end of the reservation.
        assert!(a.touch(r.base + PAGE_SIZE - 4, 8).is_err());
    }

    #[test]
    fn pin_commits_without_faults() {
        let mut a = AddressSpace::new();
        let r = a.reserve(4 * PAGE_SIZE).unwrap();
        a.pin(r.base, 2 * PAGE_SIZE).unwrap();
        assert_eq!(a.stats().faults, 0);
        assert_eq!(a.stats().pinned, 2 * PAGE_SIZE);
        assert!(a.is_pinned(r.base, 2 * PAGE_SIZE));
        assert!(!a.is_pinned(r.base, 3 * PAGE_SIZE));
        // Pinned pages never fault on touch.
        assert_eq!(a.touch(r.base, PAGE_SIZE).unwrap(), 0);
    }

    #[test]
    fn release_returns_memory() {
        let mut a = AddressSpace::new();
        let r = a.reserve(4 * PAGE_SIZE).unwrap();
        a.touch(r.base, 4 * PAGE_SIZE).unwrap();
        a.pin(r.base, PAGE_SIZE).unwrap();
        a.release(r).unwrap();
        let s = a.stats();
        assert_eq!(s.reserved, 0);
        assert_eq!(s.committed, 0);
        assert_eq!(s.pinned, 0);
        assert_eq!(s.peak_committed, 4 * PAGE_SIZE, "peak persists");
        assert!(a.release(r).is_err(), "double release rejected");
    }

    #[test]
    fn va_limit_enforced() {
        let mut a = AddressSpace::with_limit(1 << 20);
        assert!(a.reserve(1 << 21).is_err());
        let got = a.reserve(1 << 19).unwrap();
        assert_eq!(got.len, 1 << 19);
        // Section 4's point: many modest reservations exhaust the space.
        let err = a.reserve(1 << 20).unwrap_err();
        assert!(matches!(err, VmemError::OutOfAddressSpace { .. }));
    }

    #[test]
    fn iso_address_example_exceeds_x86_64() {
        // The paper's arithmetic: 2^22 workers x 2^13 depth x 2^14 bytes
        // = 2^49 > 2^48.
        let mut a = AddressSpace::new();
        let per_stack = 1u64 << 14;
        let stacks = (1u64 << 22) * (1u64 << 13);
        let total = stacks.checked_mul(per_stack).unwrap();
        assert_eq!(total, 1 << 49);
        assert!(a.reserve(total).is_err());
    }

    #[test]
    fn reservation_lookup() {
        let mut a = AddressSpace::new();
        let r = a.reserve_at(0x50000, 2 * PAGE_SIZE).unwrap();
        assert_eq!(a.reservation_of(0x50000), Some(r));
        assert_eq!(a.reservation_of(0x50000 + 2 * PAGE_SIZE - 1), Some(r));
        assert_eq!(a.reservation_of(0x50000 + 2 * PAGE_SIZE), None);
        assert_eq!(a.reservation_of(0x4ffff), None);
    }

    #[test]
    fn zero_length_rejected() {
        let mut a = AddressSpace::new();
        assert_eq!(a.reserve(0), Err(VmemError::ZeroLength));
        let r = a.reserve(PAGE_SIZE).unwrap();
        assert_eq!(a.touch(r.base, 0), Err(VmemError::ZeroLength));
        assert_eq!(a.pin(r.base, 0), Err(VmemError::ZeroLength));
    }

    #[test]
    fn reserve_skips_fixed_reservations() {
        let mut a = AddressSpace::new();
        // Plant a fixed reservation right where the bump pointer starts.
        a.reserve_at(0x0400_0000, 16 * PAGE_SIZE).unwrap();
        let r = a.reserve(PAGE_SIZE).unwrap();
        assert!(r.base >= 0x0400_0000 + 16 * PAGE_SIZE);
    }
}
