//! `pinned_malloc`-style allocator for the RDMA region.
//!
//! Suspended stacks are copied "into any free address in the RDMA region"
//! (Section 5.1) via `pinned_malloc` (Figure 8). This is a first-fit
//! free-list allocator with coalescing over one contiguous, pre-pinned
//! range. It allocates *simulated* addresses only; the bytes live wherever
//! the caller keeps them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Allocation failure: the region cannot satisfy the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfRegion {
    /// Bytes requested.
    pub requested: u64,
    /// Largest contiguous free block available.
    pub largest_free: u64,
}

impl std::fmt::Display for OutOfRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RDMA region exhausted: requested {} bytes, largest free block {}",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OutOfRegion {}

/// First-fit allocator over `[base, base+len)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionAllocator {
    base: u64,
    len: u64,
    align: u64,
    /// Free blocks: base -> len. Invariant: non-empty blocks, no two
    /// adjacent (always coalesced), sorted by construction.
    free: BTreeMap<u64, u64>,
    /// Live allocations: base -> len.
    live: BTreeMap<u64, u64>,
    used: u64,
    peak_used: u64,
}

impl RegionAllocator {
    /// Allocator over `[base, base+len)` with allocation alignment `align`
    /// (power of two; 16 matches the ABI stack alignment the runtime needs).
    pub fn new(base: u64, len: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "empty region");
        assert_eq!(base % align, 0, "region base must be aligned");
        let mut free = BTreeMap::new();
        free.insert(base, len);
        RegionAllocator {
            base,
            len,
            align,
            free,
            live: BTreeMap::new(),
            used: 0,
            peak_used: 0,
        }
    }

    /// Allocate `size` bytes; returns the block's base address.
    pub fn alloc(&mut self, size: u64) -> Result<u64, OutOfRegion> {
        let size = self.round(size.max(1));
        let candidate = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= size)
            .map(|(&fbase, &flen)| (fbase, flen));
        let (fbase, flen) = candidate.ok_or_else(|| OutOfRegion {
            requested: size,
            largest_free: self.free.values().copied().max().unwrap_or(0),
        })?;
        self.free.remove(&fbase);
        if flen > size {
            self.free.insert(fbase + size, flen - size);
        }
        self.live.insert(fbase, size);
        self.used += size;
        self.peak_used = self.peak_used.max(self.used);
        Ok(fbase)
    }

    /// Free a block previously returned by [`alloc`](Self::alloc).
    ///
    /// Panics on a double free or foreign pointer — in the real runtime
    /// that is heap corruption, and the simulator treats it as a bug.
    pub fn free(&mut self, addr: u64) {
        let len = self
            .live
            .remove(&addr)
            .unwrap_or_else(|| panic!("free of untracked block {addr:#x}"));
        self.used -= len;
        // Coalesce with the previous free block if adjacent.
        let mut base = addr;
        let mut size = len;
        if let Some((&pbase, &plen)) = self.free.range(..addr).next_back() {
            if pbase + plen == addr {
                self.free.remove(&pbase);
                base = pbase;
                size += plen;
            }
        }
        // Coalesce with the next free block if adjacent.
        if let Some(&nlen) = self.free.get(&(addr + len)) {
            self.free.remove(&(addr + len));
            size += nlen;
        }
        self.free.insert(base, size);
    }

    /// Size of the live block at `addr`, if any.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Total region capacity.
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    #[inline]
    fn round(&self, size: u64) -> u64 {
        size.div_ceil(self.align) * self.align
    }

    /// Internal consistency check used by tests: free + live blocks tile
    /// the region exactly, with no overlaps and full coalescing.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut blocks: Vec<(u64, u64, bool)> = self
            .free
            .iter()
            .map(|(&b, &l)| (b, l, true))
            .chain(self.live.iter().map(|(&b, &l)| (b, l, false)))
            .collect();
        blocks.sort_by_key(|&(b, _, _)| b);
        let mut cursor = self.base;
        let mut prev_free = false;
        for (b, l, is_free) in blocks {
            assert_eq!(b, cursor, "gap or overlap at {cursor:#x}");
            assert!(l > 0);
            assert!(
                !(prev_free && is_free),
                "two adjacent free blocks were not coalesced at {b:#x}"
            );
            prev_free = is_free;
            cursor = b + l;
        }
        assert_eq!(cursor, self.base + self.len, "blocks must tile the region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = RegionAllocator::new(0x1000, 4096, 16);
        let p = a.alloc(100).unwrap();
        assert_eq!(p % 16, 0);
        assert_eq!(a.size_of(p), Some(112)); // rounded to 16
        assert_eq!(a.used(), 112);
        a.free(p);
        assert_eq!(a.used(), 0);
        assert_eq!(a.peak_used(), 112);
        a.check_invariants();
    }

    #[test]
    fn exhaustion_reports_largest_block() {
        let mut a = RegionAllocator::new(0, 256, 16);
        let p1 = a.alloc(96).unwrap();
        let _p2 = a.alloc(96).unwrap();
        a.free(p1);
        // 96 free at front, 64 free at back, not adjacent.
        let err = a.alloc(128).unwrap_err();
        assert_eq!(err.largest_free, 96);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = RegionAllocator::new(0, 4096, 16);
        let p1 = a.alloc(512).unwrap();
        let p2 = a.alloc(512).unwrap();
        let p3 = a.alloc(512).unwrap();
        a.free(p1);
        a.free(p3);
        a.check_invariants();
        // Freeing the middle block must fuse all three with the tail.
        a.free(p2);
        a.check_invariants();
        let p = a.alloc(4096).unwrap();
        assert_eq!(p, 0, "whole region available again");
    }

    #[test]
    #[should_panic(expected = "untracked block")]
    fn double_free_panics() {
        let mut a = RegionAllocator::new(0, 4096, 16);
        let p = a.alloc(64).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn zero_sized_alloc_gets_min_block() {
        let mut a = RegionAllocator::new(0, 4096, 16);
        let p = a.alloc(0).unwrap();
        assert_eq!(a.size_of(p), Some(16));
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let mut a = RegionAllocator::new(0, 4096, 16);
        let p1 = a.alloc(256).unwrap();
        let _p2 = a.alloc(256).unwrap();
        a.free(p1);
        let p3 = a.alloc(128).unwrap();
        assert_eq!(p3, p1, "first fit should fill the first hole");
        a.check_invariants();
    }

    proptest! {
        /// Random alloc/free interleavings keep the allocator consistent
        /// and never lose bytes.
        #[test]
        fn random_ops_preserve_invariants(ops in proptest::collection::vec((0u8..2, 1u64..2048), 1..200)) {
            let mut a = RegionAllocator::new(0x10000, 1 << 20, 16);
            let mut live: Vec<u64> = Vec::new();
            for (kind, arg) in ops {
                if kind == 0 {
                    if let Ok(p) = a.alloc(arg) {
                        live.push(p);
                    }
                } else if !live.is_empty() {
                    let idx = (arg as usize) % live.len();
                    a.free(live.swap_remove(idx));
                }
                a.check_invariants();
            }
            let total: u64 = live.iter().map(|&p| a.size_of(p).unwrap()).sum();
            prop_assert_eq!(total, a.used());
            for p in live { a.free(p); }
            prop_assert_eq!(a.used(), 0);
            a.check_invariants();
        }
    }
}
