//! Property tests: the simulated address space against a flat reference
//! model of page states.

use proptest::prelude::*;
use std::collections::HashMap;
use uat_vmem::{AddressSpace, VmemError, PAGE_SIZE};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Page {
    Reserved,
    Committed,
    Pinned,
}

proptest! {
    /// Random reserve/touch/pin sequences agree with a naive page map on
    /// fault counts and accounting totals.
    #[test]
    fn matches_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u64..64, 1u64..5), 1..120)
    ) {
        let mut space = AddressSpace::new();
        let base_region = space.reserve(64 * PAGE_SIZE).unwrap();
        let mut model: HashMap<u64, Page> = (0..64)
            .map(|i| (base_region.base / PAGE_SIZE + i, Page::Reserved))
            .collect();
        let mut model_faults = 0u64;

        for (kind, page, pages) in ops {
            let page = page.min(63);
            let pages = pages.min(64 - page);
            let addr = base_region.base + page * PAGE_SIZE;
            let len = pages * PAGE_SIZE;
            match kind {
                0 => {
                    let faults = space.touch(addr, len).unwrap();
                    let mut expect = 0;
                    for p in 0..pages {
                        let key = addr / PAGE_SIZE + p;
                        if model[&key] == Page::Reserved {
                            expect += 1;
                            model.insert(key, Page::Committed);
                        }
                    }
                    prop_assert_eq!(faults, expect);
                    model_faults += expect;
                }
                1 => {
                    space.pin(addr, len).unwrap();
                    for p in 0..pages {
                        model.insert(addr / PAGE_SIZE + p, Page::Pinned);
                    }
                }
                _ => {
                    let pinned = space.is_pinned(addr, len);
                    let expect = (0..pages)
                        .all(|p| model[&(addr / PAGE_SIZE + p)] == Page::Pinned);
                    prop_assert_eq!(pinned, expect);
                }
            }
            let s = space.stats();
            let committed = model.values().filter(|&&p| p != Page::Reserved).count() as u64;
            let pinned = model.values().filter(|&&p| p == Page::Pinned).count() as u64;
            prop_assert_eq!(s.committed, committed * PAGE_SIZE);
            prop_assert_eq!(s.pinned, pinned * PAGE_SIZE);
            prop_assert_eq!(s.faults, model_faults);
        }
    }

    /// Reservations never overlap and releases return every byte.
    #[test]
    fn reservations_partition_space(sizes in proptest::collection::vec(1u64..(1 << 20), 1..40)) {
        let mut space = AddressSpace::new();
        let mut held = Vec::new();
        for sz in &sizes {
            let r = space.reserve(*sz).unwrap();
            for other in &held {
                let o: &uat_vmem::Reservation = other;
                prop_assert!(r.end() <= o.base || o.end() <= r.base, "overlap");
            }
            held.push(r);
        }
        let total: u64 = held.iter().map(|r| r.len).sum();
        prop_assert_eq!(space.stats().reserved, total);
        for r in held {
            space.release(r).unwrap();
        }
        prop_assert_eq!(space.stats().reserved, 0);
        prop_assert_eq!(space.stats().committed, 0);
    }

    /// Touching unreserved space is always an error and changes nothing.
    #[test]
    fn unmapped_touch_rejected(addr in (1u64 << 40)..(1u64 << 41), len in 1u64..4096) {
        let mut space = AddressSpace::new();
        space.reserve(PAGE_SIZE).unwrap();
        let before = space.stats();
        let r = space.touch(addr, len);
        let unmapped = matches!(r, Err(VmemError::Unmapped { .. }));
        prop_assert!(unmapped);
        prop_assert_eq!(space.stats(), before);
    }
}
