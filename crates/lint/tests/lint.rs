//! Integration tests: the lint suite flags the seeded-bad fixture and
//! passes the real tree (the CI contract, pinned here so a lint
//! regression in either direction fails `cargo test`).

use std::path::{Path, PathBuf};
use uat_lint::{lint_paths, Rule, RuleSet};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn real_tree() -> Vec<PathBuf> {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    vec![
        crates.join("fiber").join("src"),
        crates.join("deque").join("src"),
        crates.join("rdma").join("src"),
    ]
}

#[test]
fn seeded_tls_fixture_is_flagged_by_both_tls_rules() {
    let findings = lint_paths(&[fixture("tls_across_switch.rs")], RuleSet::all()).unwrap();
    // The crossing function touches the thread-local directly.
    assert!(
        findings.iter().any(|f| f.rule == Rule::TlsInCrossingFn
            && f.message.contains("suspend_and_touch_tls")),
        "missing tls-in-crossing-fn for suspend_and_touch_tls: {findings:#?}"
    );
    // The inlinable helper is reachable from the crossing function.
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::TlsHelperInlinable && f.message.contains("current")),
        "missing tls-helper-inlinable for current(): {findings:#?}"
    );
    // The fixture's SAFETY comment is tagged, so rule C stays quiet —
    // every finding must be a TLS finding.
    assert!(
        findings
            .iter()
            .all(|f| matches!(f.rule, Rule::TlsInCrossingFn | Rule::TlsHelperInlinable)),
        "unexpected non-TLS findings: {findings:#?}"
    );
}

#[test]
fn real_fiber_and_deque_trees_are_clean() {
    let findings = lint_paths(&real_tree(), RuleSet::all()).unwrap();
    assert!(
        findings.is_empty(),
        "uat-fiber/uat-deque sources must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_fork_fixture_is_flagged_in_root_and_callee() {
    let findings = lint_paths(&[fixture("fork_unsafe_bootstrap.rs")], RuleSet::all()).unwrap();
    assert!(
        findings.iter().all(|f| f.rule == Rule::ForkSafety),
        "only rule D should fire on this fixture: {findings:#?}"
    );
    // The root body: format! + .lock() + Mutex (in the signature's span
    // the type does not appear; the banned `Mutex` ident is in the
    // parameter list, outside the body — so expect format! and .lock()).
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`mp_bootstrap_bad`") && f.message.contains("format!")),
        "missing format! finding in the bootstrap root: {findings:#?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`mp_bootstrap_bad`") && f.message.contains(".lock()")),
        "missing .lock() finding in the bootstrap root: {findings:#?}"
    );
    // The one-level callee's allocation is attributed to the window.
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("`alloc_helper` is called from `mp_bootstrap_bad`")
            && f.message.contains("Vec::with_capacity")),
        "missing callee allocation finding: {findings:#?}"
    );
    // `after_the_window` is unreachable from a bootstrap root: quiet.
    assert!(
        !findings
            .iter()
            .any(|f| f.message.contains("after_the_window")),
        "vec! outside the window must not fire: {findings:#?}"
    );
}

#[test]
fn rule_selection_flags_are_honored() {
    let only_safety = RuleSet {
        tls: false,
        ordering: false,
        safety: true,
        fork_safety: false,
    };
    let findings = lint_paths(&[fixture("tls_across_switch.rs")], only_safety).unwrap();
    assert!(
        findings.is_empty(),
        "TLS rules disabled, fixture's SAFETY comment is tagged: {findings:#?}"
    );
}
