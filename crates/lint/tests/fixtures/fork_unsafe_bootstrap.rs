//! Seeded-bad fixture for rule D: a multiprocess bootstrap function
//! that allocates and locks inside the fork→worker-loop window ([I15]),
//! plus an inlinable helper it calls that allocates. Never compiled —
//! scanned by the lint integration tests.

fn alloc_helper(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

fn mp_bootstrap_bad(id: usize, m: &std::sync::Mutex<u32>) -> ! {
    let scratch = alloc_helper(64);
    let label = format!("worker {id}");
    let _g = m.lock();
    enter_worker_loop(id, scratch, label)
}

fn after_the_window() {
    // Allocation is fine once the worker loop has been entered; this
    // function is not reachable from a bootstrap root.
    let _v = vec![1, 2, 3];
}
