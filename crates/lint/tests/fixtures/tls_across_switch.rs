//! Seeded-bad fixture for the TLS-across-suspension lint (rule A).
//!
//! This file reproduces the PR 6 bug class in miniature: a function
//! touches a thread-local on both sides of a suspension point
//! (`save_context_and_call`), and its TLS helper is inlinable. On a
//! resume that lands on a different OS thread, LLVM's CSE of the TLS
//! address hands the code the *previous* thread's state. The lint must
//! flag both the direct access (tls-in-crossing-fn) and the inlinable
//! helper (tls-helper-inlinable).
//!
//! NOT compiled into the crate — parsed by tests/lint.rs only.

use std::cell::Cell;

thread_local! {
    static CURRENT_WORKER: Cell<*mut u8> = const { Cell::new(std::ptr::null_mut()) };
}

// BAD: no #[inline(never)] — the TLS access can be inlined into a
// frame that survives a context switch.
fn current() -> *mut u8 {
    CURRENT_WORKER.with(|c| c.get())
}

unsafe extern "C" {
    fn save_context_and_call(ctx: *mut u8, f: extern "C" fn(*mut u8), arg: *mut u8);
}

extern "C" fn tramp(_arg: *mut u8) {}

/// BAD twice over: reads the thread-local directly before and after the
/// suspension point, and also goes through the inlinable helper.
pub fn suspend_and_touch_tls() {
    let before = CURRENT_WORKER.with(|c| c.get());
    let mut ctx = 0u8;
    // SAFETY: [I5] fixture only; never executed.
    unsafe { save_context_and_call(&mut ctx, tramp, before) };
    // May run on a different OS thread now — both lookups below can be
    // CSE'd into the pre-switch address.
    let after = current();
    let direct = CURRENT_WORKER.with(|c| c.get());
    assert_eq!(after, direct);
}
