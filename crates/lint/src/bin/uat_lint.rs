//! CLI for the fiber-hazard lint suite.
//!
//! ```text
//! uat_lint crates/fiber/src crates/deque/src     # lint these trees
//! uat_lint --no-safety crates/check/src          # skip rule C
//! ```
//!
//! Exit 0 when clean, 1 when any finding fires (CI gates on this).

use std::path::PathBuf;
use std::process::ExitCode;
use uat_lint::{lint_paths, RuleSet};

fn main() -> ExitCode {
    let mut rules = RuleSet::all();
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--no-tls" => rules.tls = false,
            "--no-ordering" => rules.ordering = false,
            "--no-safety" => rules.safety = false,
            "--no-fork-safety" => rules.fork_safety = false,
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: uat_lint [--no-tls|--no-ordering|--no-safety|--no-fork-safety] <path>..."
        );
        return ExitCode::FAILURE;
    }
    match lint_paths(&paths, rules) {
        Err(e) => {
            eprintln!("uat_lint: {e}");
            ExitCode::FAILURE
        }
        Ok(findings) if findings.is_empty() => {
            println!("uat_lint: clean ({} path roots)", paths.len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("uat_lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
    }
}
