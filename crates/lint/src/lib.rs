//! Fiber-hazard lints for the uni-address runtime (ISSUE 8).
//!
//! Three rule families, all source-level (a hand-rolled scanner — the
//! offline build has no `syn`; the grammar subset we need is small and
//! the scanner is deliberately conservative in what it claims):
//!
//! - **Rule A — TLS across context switches** (the PR 6 bug class). A
//!   fiber may suspend inside `save_context_and_call` and resume on a
//!   *different OS thread* (steal migration), so a thread-local address
//!   computed before the switch is a dangling worker's after it. The
//!   compiler caches TLS addresses when it can see both accesses in one
//!   function body, so the safe pattern is to confine every TLS access
//!   to an `#[inline(never)]` accessor (`Runtime::current`). Flagged:
//!   - `tls-in-crossing-fn`: a function body that both accesses a
//!     `thread_local!` static directly and calls the suspension
//!     primitive — the cache window is right there in one body;
//!   - `tls-helper-inlinable`: a TLS-accessing helper without
//!     `#[inline(never)]` that a suspension-crossing function calls —
//!     inlining re-creates the window the helper was meant to close.
//!
//! - **Rule B — THE-word ordering allowlist**. Every atomic access to a
//!   THE-layout control word (`lock` / `top` / `bottom`) must use an
//!   ordering listed in [`uat_deque::layout::ORDERING_ALLOWLIST`] — the
//!   table distilled from what the `uat-check` release/acquire explorer
//!   proved sufficient. An access outside the table is either a
//!   downgrade the explorer would catch (run it!) or an upgrade that
//!   silently re-pessimizes a hot path; both deserve a human look.
//!
//! - **Rule C — SAFETY invariant references**. Workspace policy already
//!   denies undocumented unsafe (`clippy::undocumented_unsafe_blocks`);
//!   this rule additionally requires each `// SAFETY:` comment on an
//!   `unsafe` block or impl to cite at least one tagged invariant
//!   `[I<n>]` from the DESIGN.md §7.6 catalogue, so every proof
//!   obligation is traceable to a named, centrally documented invariant
//!   rather than a local plausibility argument.
//!
//! - **Rule D — fork-safety of the multiprocess bootstrap window**. A
//!   forked child inherits the parent's memory but only the forking
//!   thread survives, so a lock another thread held at `fork()` is held
//!   *forever* in the child — and the allocator's internal locks are the
//!   classic victim. The multiprocess backend therefore requires the
//!   window between `fork()` and worker-loop entry (invariant [I15]) to
//!   perform no heap allocation and take no lock. The window is exactly
//!   the bodies of functions named `mp_bootstrap*` plus their one-level
//!   callees, and this rule scans those bodies for allocating or
//!   locking constructs (`Box::new`, `vec!`, `format!`, `Mutex`,
//!   `.lock()`, `println!`, …). The dynamic half of the check is the
//!   counting-allocator regression test in `tests/mp_fork_safety.rs`;
//!   this rule is the static half, and also covers locks, which the
//!   allocation probe cannot see.
//!
//! The scanner masks out comments and string/char literals before
//! matching (so `unsafe` in a doc comment or `top` in a string never
//! fires), attributes lines to functions by brace matching, and builds
//! a one-level call map by function name. Known limits: function
//! extraction keys on `fn name` at code level (closures are attributed
//! to their enclosing function, which is the right scope for the TLS
//! rules), and the call map is name-based, not path-resolved — good
//! enough for a codebase this size, and false *negatives* from a missed
//! edge are backstopped by the runtime regression test in `uat-fiber`.

use std::fmt;
use std::path::{Path, PathBuf};

/// Function names whose call transfers control off the current stack in
/// a way that may resume on a different OS thread (fiber suspension).
/// `resume_context` / `switch_stack_and_call` are *worker-side* entry
/// points (the worker's own stack stays put and never migrates), so
/// they are deliberately not listed.
pub const CROSSING_MARKERS: &[&str] = &["save_context_and_call"];

/// Atomic methods whose call sites rule B inspects.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A1/A2: direct TLS access in a function that also suspends.
    TlsInCrossingFn,
    /// A4: an inlinable TLS helper reachable from a suspending function.
    TlsHelperInlinable,
    /// B: control-word atomic access outside the layout allowlist.
    OrderingAllowlist,
    /// C: SAFETY comment without a `[I<n>]` invariant reference.
    SafetyInvariantRef,
    /// D: allocation or lock inside the fork→worker-loop window ([I15]).
    ForkSafety,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::TlsInCrossingFn => "tls-in-crossing-fn",
            Rule::TlsHelperInlinable => "tls-helper-inlinable",
            Rule::OrderingAllowlist => "ordering-allowlist",
            Rule::SafetyInvariantRef => "safety-invariant-ref",
            Rule::ForkSafety => "fork-safety",
        }
    }
}

// ---------------------------------------------------------------------
// Source masking: classify every byte as code / comment / literal.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Class {
    Code,
    Comment,
    Literal,
}

/// Byte-classify Rust source. Handles line + nested block comments,
/// string/char/byte literals (including `\"` escapes and raw strings
/// `r#"…"#`), which is the full set the scanned crates use. Lifetimes
/// (`'a`) are disambiguated from char literals by length-checking the
/// closing quote.
fn classify(src: &str) -> Vec<Class> {
    let b = src.as_bytes();
    let mut cls = vec![Class::Code; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    cls[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0;
                loop {
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        cls[i] = Class::Comment;
                        cls[i + 1] = Class::Comment;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        cls[i] = Class::Comment;
                        cls[i + 1] = Class::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else if i < b.len() {
                        cls[i] = Class::Comment;
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Possible raw string r"…" / r#"…"#.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let close: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut k = j + 1;
                    while k < b.len() && !b[k..].starts_with(&close) {
                        k += 1;
                    }
                    let end = (k + close.len()).min(b.len());
                    for c in cls.iter_mut().take(end).skip(i) {
                        *c = Class::Literal;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                cls[i] = Class::Literal;
                i += 1;
                while i < b.len() {
                    cls[i] = Class::Literal;
                    if b[i] == b'\\' && i + 1 < b.len() {
                        cls[i + 1] = Class::Literal;
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{…}') vs lifetime ('a).
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                } else if j < b.len() {
                    j += 1;
                }
                if j < b.len() && b[j] == b'\'' {
                    for c in cls.iter_mut().take(j + 1).skip(i) {
                        *c = Class::Literal;
                    }
                    i = j + 1;
                } else {
                    i += 1; // lifetime; leave as code
                }
            }
            _ => i += 1,
        }
    }
    cls
}

/// The source with comments and literals blanked to spaces: safe to
/// regex-scan for code tokens. Newlines survive so line numbers hold.
fn code_only(src: &str, cls: &[Class]) -> String {
    src.bytes()
        .zip(cls.iter())
        .map(|(c, k)| match (c, k) {
            (b'\n', _) => '\n',
            (c, Class::Code) => c as char,
            _ => ' ',
        })
        .collect()
}

fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// All positions where `word` occurs as a standalone identifier in
/// `code` (which must be comment/literal-blanked).
fn ident_positions(code: &str, word: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(word) {
        let start = from + off;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(b[start - 1]);
        let right_ok = end >= b.len() || !is_ident(b[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

// ---------------------------------------------------------------------
// Function extraction.
// ---------------------------------------------------------------------

struct Func {
    name: String,
    /// Body span in byte offsets (inclusive of braces).
    body: (usize, usize),
    inline_never: bool,
}

fn extract_functions(src: &str, code: &str) -> Vec<Func> {
    let b = code.as_bytes();
    let mut funcs = Vec::new();
    for pos in ident_positions(code, "fn") {
        // Name follows the keyword.
        let mut i = pos + 2;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in `impl Fn(...)`-like position
        }
        let name = code[name_start..i].to_string();
        // Find the body's opening brace at angle-bracket depth 0; a `;`
        // first means a declaration (trait method, extern block).
        let mut angle = 0i32;
        let mut open = None;
        while i < b.len() {
            match b[i] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b';' if angle <= 0 => break,
                b'{' if angle <= 0 => {
                    open = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        // Matching close brace.
        let mut depth = 0i32;
        let mut close = None;
        for (j, &c) in b.iter().enumerate().skip(open) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        // Attributes: walk source lines directly above the `fn` line
        // (skipping doc comments) looking for #[inline(never)].
        let fn_line = line_of(code, pos);
        let mut inline_never = false;
        let lines: Vec<&str> = src.lines().collect();
        let mut l = fn_line.saturating_sub(2); // 0-based index of line above
        while let Some(text) = lines.get(l).map(|t| t.trim()) {
            if text.starts_with("#[") || text.starts_with("///") || text.starts_with("//") {
                // Only real attribute lines count — a comment *mentioning*
                // the attribute (e.g. "// BAD: no #[inline(never)]") must not.
                if text.starts_with("#[") && text.replace(' ', "").contains("#[inline(never)]") {
                    inline_never = true;
                }
                if l == 0 {
                    break;
                }
                l -= 1;
            } else {
                break;
            }
        }
        funcs.push(Func {
            name,
            body: (open, close),
            inline_never,
        });
    }
    funcs
}

/// Innermost function containing `pos` (functions nest via closures and
/// test modules; innermost is the scope the compiler inlines within).
fn enclosing(funcs: &[Func], pos: usize) -> Option<&Func> {
    funcs
        .iter()
        .filter(|f| f.body.0 <= pos && pos <= f.body.1)
        .min_by_key(|f| f.body.1 - f.body.0)
}

// ---------------------------------------------------------------------
// Per-file scan state shared by the rules.
// ---------------------------------------------------------------------

struct FileScan {
    path: PathBuf,
    src: String,
    code: String,
    funcs: Vec<Func>,
    /// Names declared inside `thread_local! { … }` in this file, with
    /// the macro span (accesses inside the declaration don't count).
    tls: Vec<(String, (usize, usize))>,
}

fn scan_file_state(path: &Path, src: String) -> FileScan {
    let cls = classify(&src);
    let code = code_only(&src, &cls);
    let funcs = extract_functions(&src, &code);
    let mut tls = Vec::new();
    for pos in ident_positions(&code, "thread_local") {
        let b = code.as_bytes();
        let Some(open_rel) = code[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        let mut depth = 0i32;
        let mut close = open;
        for (j, &c) in b.iter().enumerate().skip(open) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        for sp in ident_positions(&code[open..close], "static") {
            let after = &code[open + sp + 6..close];
            let name: String = after
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                tls.push((name, (pos, close)));
            }
        }
    }
    FileScan {
        path: path.to_path_buf(),
        src,
        code,
        funcs,
        tls,
    }
}

// ---------------------------------------------------------------------
// Rule A: TLS across suspension points.
// ---------------------------------------------------------------------

fn rule_tls(files: &[FileScan], findings: &mut Vec<Finding>) {
    // Global TLS name set (cross-file accesses are rare but cheap to
    // cover: `runtime::CURRENT` would still contain the ident).
    let tls_names: Vec<&str> = files
        .iter()
        .flat_map(|f| f.tls.iter().map(|(n, _)| n.as_str()))
        .collect();
    if tls_names.is_empty() {
        return;
    }

    // Per function: does it directly access TLS / directly suspend?
    struct Info<'a> {
        file: &'a FileScan,
        func: &'a Func,
        tls_access: Option<usize>,
        crossing: bool,
    }
    let mut infos: Vec<Info> = Vec::new();
    for file in files {
        for func in &file.funcs {
            let body = &file.code[func.body.0..func.body.1];
            let mut tls_access = None;
            for name in &tls_names {
                for p in ident_positions(body, name) {
                    let abs = func.body.0 + p;
                    // Skip the declaration span itself.
                    let in_decl = file
                        .tls
                        .iter()
                        .any(|(n, span)| n == name && span.0 <= abs && abs <= span.1);
                    // Skip positions inside *nested* functions (they get
                    // their own entry).
                    let innermost = enclosing(&file.funcs, abs)
                        .map(|f| std::ptr::eq(f, func))
                        .unwrap_or(false);
                    if !in_decl && innermost {
                        tls_access = Some(abs);
                        break;
                    }
                }
            }
            let crossing = CROSSING_MARKERS.iter().any(|m| {
                ident_positions(body, m).iter().any(|&p| {
                    enclosing(&file.funcs, func.body.0 + p)
                        .map(|f| std::ptr::eq(f, func))
                        .unwrap_or(false)
                })
            });
            infos.push(Info {
                file,
                func,
                tls_access,
                crossing,
            });
        }
    }

    // A2: both in one body.
    for i in &infos {
        if let (Some(pos), true) = (i.tls_access, i.crossing) {
            findings.push(Finding {
                rule: Rule::TlsInCrossingFn,
                file: i.file.path.clone(),
                line: line_of(&i.file.code, pos),
                message: format!(
                    "`{}` accesses a thread-local directly and also suspends \
                     (calls {}); the TLS address can be cached across the \
                     switch and the fiber may resume on another thread — \
                     route the access through an #[inline(never)] accessor",
                    i.func.name, CROSSING_MARKERS[0],
                ),
            });
        }
    }

    // A4: inlinable TLS helper called from a crossing function.
    let crossing_bodies: Vec<(&FileScan, &Func)> = infos
        .iter()
        .filter(|i| i.crossing)
        .map(|i| (i.file, i.func))
        .collect();
    for i in &infos {
        let Some(pos) = i.tls_access else { continue };
        if i.func.inline_never || i.crossing {
            continue; // crossing case already reported above
        }
        let called_by: Vec<&str> = crossing_bodies
            .iter()
            .filter(|(file, cf)| {
                let body = &file.code[cf.body.0..cf.body.1];
                ident_positions(body, &i.func.name)
                    .iter()
                    .any(|&p| body[p + i.func.name.len()..].trim_start().starts_with('('))
            })
            .map(|(_, cf)| cf.name.as_str())
            .collect();
        if !called_by.is_empty() {
            findings.push(Finding {
                rule: Rule::TlsHelperInlinable,
                file: i.file.path.clone(),
                line: line_of(&i.file.code, pos),
                message: format!(
                    "`{}` accesses a thread-local and is called from \
                     suspension-crossing {:?} but is not #[inline(never)]; \
                     inlining would cache the TLS address across the switch",
                    i.func.name, called_by,
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule B: THE-word ordering allowlist.
// ---------------------------------------------------------------------

fn allowed_orderings(field: &str, op: &str) -> Option<&'static [&'static str]> {
    // compare_exchange_weak shares compare_exchange's row.
    let op = if op == "compare_exchange_weak" {
        "compare_exchange"
    } else {
        op
    };
    uat_deque::layout::ORDERING_ALLOWLIST
        .iter()
        .find(|(f, o, _)| *f == field && *o == op)
        .map(|(_, _, a)| *a)
}

fn rule_ordering(files: &[FileScan], findings: &mut Vec<Finding>) {
    let fields: std::collections::BTreeSet<&str> = uat_deque::layout::ORDERING_ALLOWLIST
        .iter()
        .map(|(f, _, _)| *f)
        .collect();
    for file in files {
        let code = &file.code;
        let b = code.as_bytes();
        for field in &fields {
            for pos in ident_positions(code, field) {
                // Must be a field access: `.field.method(`.
                if pos == 0 || b[pos - 1] != b'.' {
                    continue;
                }
                let after = &code[pos + field.len()..];
                if !after.starts_with('.') {
                    continue;
                }
                let method: String = after[1..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !ATOMIC_METHODS.contains(&method.as_str()) {
                    continue;
                }
                // Argument span: matching parens after the method name.
                let open_rel = pos + field.len() + 1 + method.len();
                let Some(paren_rel) = code[open_rel..].find('(') else {
                    continue;
                };
                let open = open_rel + paren_rel;
                let mut depth = 0i32;
                let mut close = open;
                for (j, &c) in b.iter().enumerate().skip(open) {
                    match c {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                close = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let args = &code[open..close];
                let allowed = allowed_orderings(field, &method);
                let mut from = 0;
                while let Some(off) = args[from..].find("Ordering::") {
                    let start = from + off + "Ordering::".len();
                    let ord: String = args[start..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric())
                        .collect();
                    from = start;
                    let ok = allowed.map(|a| a.contains(&ord.as_str())).unwrap_or(false);
                    if !ok {
                        findings.push(Finding {
                            rule: Rule::OrderingAllowlist,
                            file: file.path.clone(),
                            line: line_of(code, pos),
                            message: format!(
                                "`{field}.{method}` with Ordering::{ord} is not in the \
                                 layout allowlist ({}); if intentional, prove it with \
                                 `uat_check --memory-model ra` and extend \
                                 uat_deque::layout::ORDERING_ALLOWLIST",
                                allowed
                                    .map(|a| a.join("/"))
                                    .unwrap_or_else(|| "no entry for this op".into()),
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule C: SAFETY comments must cite a §7.6 invariant tag.
// ---------------------------------------------------------------------

fn has_invariant_tag(text: &str) -> bool {
    let b = text.as_bytes();
    for p in 0..b.len().saturating_sub(3) {
        if b[p] == b'[' && b[p + 1] == b'I' && b[p + 2].is_ascii_digit() {
            let mut q = p + 3;
            while q < b.len() && b[q].is_ascii_digit() {
                q += 1;
            }
            if q < b.len() && b[q] == b']' {
                return true;
            }
        }
    }
    false
}

fn rule_safety(files: &[FileScan], findings: &mut Vec<Finding>) {
    for file in files {
        let code = &file.code;
        let src_lines: Vec<&str> = file.src.lines().collect();
        for pos in ident_positions(code, "unsafe") {
            let rest = code[pos + "unsafe".len()..].trim_start();
            // Only block/impl forms carry SAFETY comments (an `unsafe
            // fn`'s contract lives in its doc; extern blocks have none).
            if !(rest.starts_with('{') || rest.starts_with("impl")) {
                continue;
            }
            let line = line_of(code, pos);
            // Contiguous comment block directly above (attributes may
            // sit between for impls).
            let mut l = line.saturating_sub(2); // 0-based line above
            let mut comment = String::new();
            while let Some(text) = src_lines.get(l).map(|t| t.trim()) {
                if text.starts_with("//") {
                    comment.push_str(text);
                    comment.push('\n');
                } else if !(text.starts_with("#[") || text.starts_with("#![")) {
                    break;
                }
                if l == 0 {
                    break;
                }
                l -= 1;
            }
            if !comment.contains("SAFETY") {
                findings.push(Finding {
                    rule: Rule::SafetyInvariantRef,
                    file: file.path.clone(),
                    line,
                    message: "unsafe without a `// SAFETY:` comment directly above".into(),
                });
            } else if !has_invariant_tag(&comment) {
                findings.push(Finding {
                    rule: Rule::SafetyInvariantRef,
                    file: file.path.clone(),
                    line,
                    message: "SAFETY comment cites no invariant tag [I<n>] \
                              from the DESIGN.md §7.6 catalogue"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule D: fork-safety of the multiprocess bootstrap window.
// ---------------------------------------------------------------------

/// Constructs banned inside the fork→worker-loop window, with the
/// hazard each one carries. Substring patterns with punctuation match
/// literally; bare identifiers match at ident boundaries.
const FORK_BANNED: &[(&str, &str)] = &[
    ("Box::new", "heap allocation"),
    ("vec!", "heap allocation"),
    ("Vec::new", "heap allocation"),
    ("Vec::with_capacity", "heap allocation"),
    ("format!", "heap allocation"),
    ("String::from", "heap allocation"),
    (".to_string(", "heap allocation"),
    (".to_vec(", "heap allocation"),
    (".to_owned(", "heap allocation"),
    (
        "Mutex",
        "pthread lock — may be held forever by a thread that did not survive fork",
    ),
    (
        "RwLock",
        "pthread lock — may be held forever by a thread that did not survive fork",
    ),
    (".lock()", "lock acquisition"),
    ("println!", "stdio lock and possible allocation"),
    ("eprintln!", "stdio lock and possible allocation"),
];

/// Positions where `pat` occurs in `code`. Pure-ident patterns are
/// matched at ident boundaries; patterns with punctuation are matched
/// as literal substrings.
fn banned_positions(code: &str, pat: &str) -> Vec<usize> {
    if pat.bytes().all(is_ident) {
        return ident_positions(code, pat);
    }
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(pat) {
        out.push(from + off);
        from = from + off + 1;
    }
    out
}

fn rule_fork_safety(files: &[FileScan], findings: &mut Vec<Finding>) {
    // Roots: every function named `mp_bootstrap*` — the code that runs
    // between fork() and worker-loop entry ([I15]).
    let roots: Vec<(&FileScan, &Func)> = files
        .iter()
        .flat_map(|f| {
            f.funcs
                .iter()
                .filter(|fun| fun.name.starts_with("mp_bootstrap"))
                .map(move |fun| (f, fun))
        })
        .collect();
    if roots.is_empty() {
        return;
    }

    // One-level callees: functions *defined in the scanned set* whose
    // name a root body calls. Name-based resolution, so skip ambiguous
    // names (two definitions — `new`, `default`, …): a false edge to
    // the wrong body would fire on code outside the window.
    let mut def_count = std::collections::BTreeMap::<&str, usize>::new();
    for f in files {
        for fun in &f.funcs {
            *def_count.entry(fun.name.as_str()).or_insert(0) += 1;
        }
    }
    // (file, func, how-it-is-in-the-window)
    let mut window: Vec<(&FileScan, &Func, String)> = roots
        .iter()
        .map(|&(f, fun)| (f, fun, "runs in the bootstrap window".to_string()))
        .collect();
    for &(rf, root) in &roots {
        let body = &rf.code[root.body.0..root.body.1];
        for file in files {
            for fun in &file.funcs {
                if fun.name.starts_with("mp_bootstrap") || def_count[fun.name.as_str()] != 1 {
                    continue;
                }
                let called = ident_positions(body, &fun.name)
                    .iter()
                    .any(|&p| body[p + fun.name.len()..].trim_start().starts_with('('));
                if called {
                    window.push((file, fun, format!("is called from `{}`", root.name)));
                }
            }
        }
    }

    for (file, fun, how) in window {
        let body = &file.code[fun.body.0..fun.body.1];
        for (pat, why) in FORK_BANNED {
            for p in banned_positions(body, pat) {
                let abs = fun.body.0 + p;
                // Nested functions get their own entry only if they are
                // themselves in the window; a closure stays attributed
                // here, which is the scope that executes in the window.
                let innermost = enclosing(&file.funcs, abs)
                    .map(|f| std::ptr::eq(f, fun))
                    .unwrap_or(false);
                if !innermost {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::ForkSafety,
                    file: file.path.clone(),
                    line: line_of(&file.code, abs),
                    message: format!(
                        "`{}` {how} (fork→worker-loop, [I15]) but contains \
                         `{pat}` ({why}); a forked child inherits locks held \
                         by threads that no longer exist, so this window must \
                         not allocate or lock",
                        fun.name,
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Which rule families to run (rule C only applies to the two unsafe
/// crates; running it over fixture directories is the tests' business).
#[derive(Clone, Copy)]
pub struct RuleSet {
    pub tls: bool,
    pub ordering: bool,
    pub safety: bool,
    pub fork_safety: bool,
}

impl RuleSet {
    pub fn all() -> Self {
        RuleSet {
            tls: true,
            ordering: true,
            safety: true,
            fork_safety: true,
        }
    }
}

/// Lint in-memory sources (used by the fixture tests).
pub fn lint_sources(sources: &[(&Path, &str)], rules: RuleSet) -> Vec<Finding> {
    let files: Vec<FileScan> = sources
        .iter()
        .map(|(p, s)| scan_file_state(p, (*s).to_string()))
        .collect();
    let mut findings = Vec::new();
    if rules.tls {
        rule_tls(&files, &mut findings);
    }
    if rules.ordering {
        rule_ordering(&files, &mut findings);
    }
    if rules.safety {
        rule_safety(&files, &mut findings);
    }
    if rules.fork_safety {
        rule_fork_safety(&files, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Recursively collect `.rs` files under each path (a file path is
/// taken as-is), lint them all as one unit (the TLS call map is built
/// across the whole set), and return the findings.
pub fn lint_paths(paths: &[PathBuf], rules: RuleSet) -> std::io::Result<Vec<Finding>> {
    let mut rs_files = Vec::new();
    for p in paths {
        collect_rs(p, &mut rs_files)?;
    }
    rs_files.sort();
    let mut loaded = Vec::new();
    for f in &rs_files {
        loaded.push((f.clone(), std::fs::read_to_string(f)?));
    }
    let refs: Vec<(&Path, &str)> = loaded
        .iter()
        .map(|(p, s)| (p.as_path(), s.as_str()))
        .collect();
    Ok(lint_sources(&refs, rules))
}

fn collect_rs(p: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if p.is_dir() {
        for entry in std::fs::read_dir(p)? {
            collect_rs(&entry?.path(), out)?;
        }
    } else if p.extension().is_some_and(|e| e == "rs") {
        out.push(p.to_path_buf());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint_one(src: &str, rules: RuleSet) -> Vec<Finding> {
        lint_sources(&[(Path::new("t.rs"), src)], rules)
    }

    #[test]
    fn masking_ignores_comments_and_strings() {
        let src = r#"
// unsafe { } in a comment
fn f() { let s = "unsafe { tricky }"; let c = '"'; }
"#;
        assert!(lint_one(src, RuleSet::all()).is_empty());
    }

    #[test]
    fn tls_in_crossing_fn_is_flagged() {
        let src = r#"
thread_local! { static CURRENT: usize = 0; }
fn suspends() {
    let x = CURRENT.with(|c| *c);
    save_context_and_call(p, f, a);
    use_it(x);
}
"#;
        let f = lint_one(src, RuleSet::all());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TlsInCrossingFn);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn inline_never_accessor_passes_and_inlinable_is_flagged() {
        let good = r#"
thread_local! { static CURRENT: usize = 0; }
#[inline(never)]
fn current() -> usize { CURRENT.with(|c| *c) }
fn suspends() { let x = current(); save_context_and_call(p, f, a); use_it(x); }
"#;
        assert!(lint_one(good, RuleSet::all()).is_empty());

        let bad = good.replace("#[inline(never)]\n", "");
        let f = lint_one(&bad, RuleSet::all());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TlsHelperInlinable);
    }

    #[test]
    fn tls_access_without_suspension_passes() {
        // worker_loop-style: direct TLS use on the worker's own stack,
        // no suspension primitive in the body.
        let src = r#"
thread_local! { static CURRENT: usize = 0; }
fn worker_loop() { CURRENT.with(|c| *c); resume_context(p); }
"#;
        assert!(lint_one(src, RuleSet::all()).is_empty());
    }

    #[test]
    fn disallowed_ordering_is_flagged_and_allowed_passes() {
        let src = r#"
fn f(d: &D) {
    d.top.store(1, Ordering::SeqCst);
    d.bottom.store(2, Ordering::Release);
}
"#;
        assert!(lint_one(src, RuleSet::all()).is_empty());
        let bad = src.replace("Ordering::Release", "Ordering::Relaxed");
        // bottom.store Relaxed is allowed (locked take) — use top instead.
        assert!(lint_one(&bad, RuleSet::all()).is_empty());
        let worse = src.replace(
            "d.top.store(1, Ordering::SeqCst)",
            "d.top.store(1, Ordering::Release)",
        );
        let f = lint_one(&worse, RuleSet::all());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::OrderingAllowlist);
        assert!(f[0].message.contains("top.store"));
    }

    #[test]
    fn cas_failure_ordering_is_checked_too() {
        let src = r#"
fn f(d: &D) {
    d.lock.compare_exchange(0, 1, Ordering::Acquire, Ordering::SeqCst).ok();
}
"#;
        let f = lint_one(src, RuleSet::all());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SeqCst"));
    }

    #[test]
    fn safety_tag_required() {
        let tagged = r#"
fn f() {
    // SAFETY: [I1] the slot is unpublished.
    unsafe { g() };
}
"#;
        assert!(lint_one(tagged, RuleSet::all()).is_empty());
        let untagged = tagged.replace("[I1] ", "");
        let f = lint_one(&untagged, RuleSet::all());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SafetyInvariantRef);
        let undocumented = "fn f() {\n    unsafe { g() };\n}\n";
        let f = lint_one(undocumented, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without"));
    }

    #[test]
    fn fork_safety_flags_bootstrap_and_one_level_callees() {
        let src = r#"
fn helper(n: usize) -> usize { let v = Vec::with_capacity(n); v.len() }
fn mp_bootstrap_x(n: usize) {
    let b = Box::new(n);
    helper(n);
    enter_loop();
}
fn unrelated() { let s = String::from("fine outside the window"); }
"#;
        let f = lint_one(src, RuleSet::all());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::ForkSafety));
        assert!(f.iter().any(|x| x
            .message
            .contains("`mp_bootstrap_x` runs in the bootstrap window")
            && x.message.contains("Box::new")));
        assert!(f.iter().any(|x| x
            .message
            .contains("`helper` is called from `mp_bootstrap_x`")
            && x.message.contains("Vec::with_capacity")));
    }

    #[test]
    fn fork_safety_skips_ambiguous_callee_names_and_locks_are_banned() {
        let src = r#"
struct A; impl A { fn new() -> A { let _ = vec![1]; A } }
struct B; impl B { fn new() -> B { B } }
fn mp_bootstrap_y(m: &M) {
    let a = new();
    let local = std::sync::Mutex::new(0u32);
    let g = m.lock();
}
"#;
        let f = lint_one(src, RuleSet::all());
        // `new` is ambiguous (two defs) so its vec! is NOT attributed to
        // the window; Mutex + .lock() in the root body both fire.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("Mutex")));
        assert!(f.iter().any(|x| x.message.contains(".lock()")));
    }

    #[test]
    fn fork_safety_quiet_without_bootstrap_fns() {
        let src = "fn f() { let v = vec![1, 2]; let s = format!(\"x\"); }\n";
        assert!(lint_one(src, RuleSet::all()).is_empty());
    }

    #[test]
    fn unsafe_impl_with_tagged_safety_passes() {
        let src = r#"
// SAFETY: [I4] the lock serializes all access.
unsafe impl Sync for D {}
"#;
        assert!(lint_one(src, RuleSet::all()).is_empty());
    }
}
