//! Cycle-exact timeline accounting.
//!
//! Every simulated cycle of every worker is charged to exactly one
//! [`Bucket`], so per-worker bucket totals sum to the run's makespan —
//! an invariant the test suite checks. This is the data behind
//! "where did the time go" reports: how much of the run was useful
//! work, how much was spent inside each steal phase, how much waiting
//! in the comm server's FAA queue, and how much idling.

use serde::{Deserialize, Serialize};
use uat_base::json::{FromJson, Json, JsonError, ToJson};
use uat_base::Cycles;

/// Where a span of simulated time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bucket {
    /// Executing task work.
    Work,
    /// Creating tasks (deque push, child setup) and popping local work.
    Spawn,
    /// Suspending or resuming continuations (the uni-address scheme's
    /// own overhead).
    SuspendResume,
    /// Steal phase: remote empty check.
    StealEmpty,
    /// Steal phase: acquiring the victim's queue lock.
    StealLock,
    /// Steal phase: taking the queue entry.
    StealEntry,
    /// Steal phase: transferring the stolen stack.
    StealTransfer,
    /// Steal phase: releasing the queue lock.
    StealUnlock,
    /// Waiting in line at a comm server's software-FAA queue.
    FaaQueue,
    /// Nothing to do: backoff, contention waits, scheduler polls.
    Idle,
}

impl Bucket {
    /// Every bucket, in report order.
    pub const ALL: [Bucket; 10] = [
        Bucket::Work,
        Bucket::Spawn,
        Bucket::SuspendResume,
        Bucket::StealEmpty,
        Bucket::StealLock,
        Bucket::StealEntry,
        Bucket::StealTransfer,
        Bucket::StealUnlock,
        Bucket::FaaQueue,
        Bucket::Idle,
    ];

    /// Number of buckets.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable display / serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Work => "work",
            Bucket::Spawn => "spawn",
            Bucket::SuspendResume => "suspend-resume",
            Bucket::StealEmpty => "steal:empty",
            Bucket::StealLock => "steal:lock",
            Bucket::StealEntry => "steal:entry",
            Bucket::StealTransfer => "steal:transfer",
            Bucket::StealUnlock => "steal:unlock",
            Bucket::FaaQueue => "faa-queue",
            Bucket::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&b| b == self).unwrap()
    }

    fn from_name(name: &str) -> Option<Bucket> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }
}

/// Per-worker ledger: simulated cycles by [`Bucket`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeAccount {
    cycles: [u64; Bucket::COUNT],
}

impl TimeAccount {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `span` to `bucket`.
    pub fn charge(&mut self, bucket: Bucket, span: Cycles) {
        self.cycles[bucket.index()] += span.get();
    }

    /// Cycles charged to one bucket.
    pub fn get(&self, bucket: Bucket) -> Cycles {
        Cycles(self.cycles[bucket.index()])
    }

    /// Sum over all buckets. For a finalized per-worker account this
    /// equals the run's makespan.
    pub fn total(&self) -> Cycles {
        Cycles(self.cycles.iter().sum())
    }

    /// Fraction of accounted time spent idle (0 when nothing charged).
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total().get();
        if total == 0 {
            return 0.0;
        }
        self.get(Bucket::Idle).get() as f64 / total as f64
    }

    /// Fraction of accounted time spent in the five steal phases.
    pub fn steal_fraction(&self) -> f64 {
        let total = self.total().get();
        if total == 0 {
            return 0.0;
        }
        let steal: u64 = [
            Bucket::StealEmpty,
            Bucket::StealLock,
            Bucket::StealEntry,
            Bucket::StealTransfer,
            Bucket::StealUnlock,
        ]
        .into_iter()
        .map(|b| self.get(b).get())
        .sum();
        steal as f64 / total as f64
    }

    /// Add another ledger into this one.
    pub fn merge(&mut self, other: &TimeAccount) {
        for (dst, src) in self.cycles.iter_mut().zip(&other.cycles) {
            *dst += src;
        }
    }

    /// Human-readable per-bucket table.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let total = self.total().get().max(1);
        let mut s = String::new();
        writeln!(s, "{:<16} {:>14} {:>8}", "bucket", "cycles", "share").unwrap();
        for b in Bucket::ALL {
            let c = self.get(b).get();
            writeln!(
                s,
                "{:<16} {:>14} {:>7.1}%",
                b.name(),
                c,
                100.0 * c as f64 / total as f64
            )
            .unwrap();
        }
        s
    }
}

impl ToJson for TimeAccount {
    fn to_json(&self) -> Json {
        Json::Obj(
            Bucket::ALL
                .into_iter()
                .map(|b| (b.name().to_string(), Json::UInt(self.get(b).get())))
                .collect(),
        )
    }
}

impl FromJson for TimeAccount {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let members = match v {
            Json::Obj(m) => m,
            _ => {
                return Err(JsonError {
                    msg: "expected time-account object".into(),
                })
            }
        };
        let mut acct = TimeAccount::new();
        for (name, val) in members {
            let bucket = Bucket::from_name(name).ok_or_else(|| JsonError {
                msg: format!("unknown bucket `{name}`"),
            })?;
            acct.charge(bucket, Cycles(val.as_u64()?));
        }
        Ok(acct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_total() {
        let mut a = TimeAccount::new();
        a.charge(Bucket::Work, Cycles(100));
        a.charge(Bucket::Work, Cycles(50));
        a.charge(Bucket::Idle, Cycles(25));
        assert_eq!(a.get(Bucket::Work), Cycles(150));
        assert_eq!(a.total(), Cycles(175));
        assert!((a.idle_fraction() - 25.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn steal_fraction_counts_only_steal_buckets() {
        let mut a = TimeAccount::new();
        a.charge(Bucket::StealLock, Cycles(30));
        a.charge(Bucket::StealTransfer, Cycles(20));
        a.charge(Bucket::Work, Cycles(50));
        assert!((a.steal_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = TimeAccount::new();
        a.charge(Bucket::Spawn, Cycles(10));
        let mut b = TimeAccount::new();
        b.charge(Bucket::Spawn, Cycles(5));
        b.charge(Bucket::FaaQueue, Cycles(7));
        a.merge(&b);
        assert_eq!(a.get(Bucket::Spawn), Cycles(15));
        assert_eq!(a.get(Bucket::FaaQueue), Cycles(7));
    }

    #[test]
    fn json_round_trip() {
        let mut a = TimeAccount::new();
        for (i, b) in Bucket::ALL.into_iter().enumerate() {
            a.charge(b, Cycles(i as u64 * 11 + 1));
        }
        let back = TimeAccount::from_json(&Json::parse(&a.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn empty_account_reports_zero_fractions() {
        let a = TimeAccount::new();
        assert_eq!(a.idle_fraction(), 0.0);
        assert_eq!(a.steal_fraction(), 0.0);
        assert_eq!(a.total(), Cycles::ZERO);
    }

    #[test]
    fn report_lists_every_bucket() {
        let r = TimeAccount::new().report();
        for b in Bucket::ALL {
            assert!(r.contains(b.name()), "missing {}", b.name());
        }
    }
}
